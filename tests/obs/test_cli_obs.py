"""CLI observability surface: ``--trace``, ``-v``/``-q``, ``obs`` commands."""

from __future__ import annotations

import json

from repro.cli import build_parser, main
from repro.obs import validate_chrome_trace


class TestGlobalFlags:
    def test_trace_and_verbosity_parse(self):
        args = build_parser().parse_args(
            ["--trace", "out.json", "-vv", "chips"]
        )
        assert args.trace == "out.json"
        assert args.verbose == 2
        assert args.quiet == 0

    def test_quiet_flag(self):
        args = build_parser().parse_args(["-q", "chips"])
        assert args.quiet == 1


class TestTraceExport:
    def test_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(
            ["--trace", str(trace),
             "experiment", "-c", "A", "-s", "xy-shift", "--epochs", "6"]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().err
        assert validate_chrome_trace(trace) == []
        document = json.loads(trace.read_text())
        names = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        assert "experiment.run" in names
        assert "thermal.steady_batch" in names
        assert document["telemetry"]["counters"]["thermal.steady_solves"] >= 1

    def test_trace_disabled_by_default(self, tmp_path):
        assert main(["chips"]) == 0  # no --trace: nothing written, no error


class TestObsSummary:
    def test_summary_from_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        main(["--trace", str(trace),
              "experiment", "-c", "A", "-s", "xy-shift", "--epochs", "6"])
        capsys.readouterr()
        assert main(["obs", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "thermal.steady_solves" in out
        assert "counter" in out

    def test_summary_csv(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        main(["--trace", str(trace),
              "experiment", "-c", "A", "-s", "xy-shift", "--epochs", "6"])
        capsys.readouterr()
        assert main(["--csv", "obs", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("name,")

    def test_summary_of_bare_snapshot_document(self, tmp_path, capsys):
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps({"counters": {"x": 3}}))
        assert main(["obs", "summary", str(path)]) == 0
        assert "x" in capsys.readouterr().out

    def test_summary_of_empty_snapshot_is_graceful(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"telemetry": {"counters": {}}}))
        assert main(["obs", "summary", str(path)]) == 0
        assert "empty" in capsys.readouterr().err

    def test_summary_rejects_document_without_telemetry(self, tmp_path, capsys):
        path = tmp_path / "trace-only.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["obs", "summary", str(path)]) == 1
        assert "no telemetry" in capsys.readouterr().err

    def test_summary_rejects_non_object_document(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps([1, 2, 3]))
        assert main(["obs", "summary", str(path)]) == 1
        assert "expected a JSON object" in capsys.readouterr().err


class TestObsValidate:
    def test_valid_trace_passes(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        main(["--trace", str(trace), "chips"])
        capsys.readouterr()
        assert main(["obs", "validate", str(trace)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_trace_fails_with_errors(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main(["obs", "validate", str(path)]) == 1
        assert "unsupported phase" in capsys.readouterr().err
