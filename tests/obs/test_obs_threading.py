"""Telemetry under concurrency: persistent pools, scopes, span tracks.

The registry and tracer are process-wide singletons shared by the persistent
worker pools in :mod:`repro.analysis.runner`; these tests drive them from
many threads at once and demand exact totals (lost updates would show up as
undercounts) and correct per-thread attribution (scopes and span stacks are
thread-local).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.analysis.runner import run_parallel


class TestConcurrentCounters:
    def test_no_lost_updates_across_threads(self, enabled):
        counter = obs.counter("test.thread.count")
        increments, workers = 2000, 8

        def hammer():
            for _ in range(increments):
                counter.add()

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(lambda _: hammer(), range(workers)))
        assert counter.value == increments * workers

    def test_timer_counts_are_exact(self, enabled):
        timer = obs.timer("test.thread.timer")
        records, workers = 500, 6

        def hammer():
            for _ in range(records):
                timer.record(0.001)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(lambda _: hammer(), range(workers)))
        assert timer.count == records * workers
        assert abs(timer.total_s - 0.001 * records * workers) < 1e-6


class TestThreadLocalScopes:
    def test_concurrent_scopes_do_not_bleed(self, enabled):
        counter = obs.counter("test.thread.scope")
        registry = obs.get_registry()
        barrier = threading.Barrier(4)

        def job(amount):
            with registry.scoped() as scope:
                barrier.wait()  # every scope is open simultaneously
                for _ in range(amount):
                    counter.add()
            return scope.counters.get("test.thread.scope", 0)

        amounts = [10, 20, 30, 40]
        with ThreadPoolExecutor(max_workers=4) as pool:
            deltas = list(pool.map(job, amounts))
        assert deltas == amounts
        assert counter.value == sum(amounts)


class TestSpansFromPools:
    def test_span_stacks_are_per_thread(self, enabled):
        barrier = threading.Barrier(3)

        def job(index):
            with obs.span("outer", index=index):
                barrier.wait()
                with obs.span("inner", index=index):
                    pass
            return True

        with ThreadPoolExecutor(max_workers=3) as pool:
            assert all(pool.map(job, range(3)))
        events = obs.get_tracer().events()
        inner = [e for e in events if e.name == "inner"]
        assert len(events) == 6
        # Every inner span names "outer" as parent — never a sibling thread's.
        assert all(e.args["parent"] == "outer" for e in inner)
        assert len({e.tid for e in events}) == 3

    def test_persistent_runner_pool_produces_distinct_tracks(self, enabled):
        def job(index):
            def run():
                with obs.span("test.thread.task", index=index):
                    obs.counter("test.thread.pool").add()
                    threading.Event().wait(0.02)
                return index

            return run

        results = run_parallel([job(i) for i in range(6)], n_jobs=3,
                               executor="thread")
        assert results == list(range(6))
        assert obs.counter("test.thread.pool").value == 6
        spans = [
            e for e in obs.get_tracer().events() if e.name == "test.thread.task"
        ]
        assert sorted(e.args["index"] for e in spans) == list(range(6))
        assert len({e.tid for e in spans}) > 1  # genuinely parallel tracks

    def test_runner_pool_telemetry_instruments(self, enabled):
        def task():
            threading.Event().wait(0.01)
            return 1

        results = run_parallel([task] * 4, n_jobs=2, executor="thread")
        assert results == [1] * 4
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters.get("runner.tasks") == 4
        assert snapshot.gauges.get("runner.pool_workers") == 2
        assert snapshot.timers["runner.task"]["count"] == 4
        assert snapshot.timers["runner.queue_wait"]["count"] == 4
        tracks = [
            e for e in obs.get_tracer().events() if e.name == "runner.task"
        ]
        assert len(tracks) == 4
        assert all("queue_wait_ms" in e.args for e in tracks)
