"""Span recording, nesting, Chrome-trace export and schema validation."""

from __future__ import annotations

import json
import os
import threading

from repro import obs
from repro.obs import (
    SpanEvent,
    chrome_trace_payload,
    current_span,
    export_chrome_trace,
    now_us,
    validate_chrome_trace,
)


class TestSpanRecording:
    def test_disabled_span_records_nothing(self):
        with obs.span("test.trace.dark", attr=1):
            pass
        assert len(obs.get_tracer()) == 0

    def test_span_records_one_event(self, enabled):
        with obs.span("test.trace.one", rows=16):
            pass
        events = obs.get_tracer().events()
        assert len(events) == 1
        event = events[0]
        assert event.name == "test.trace.one"
        assert event.args == {"rows": 16}
        assert event.pid == os.getpid()
        assert event.tid == threading.get_native_id()
        assert event.dur_us >= 0.0

    def test_nested_span_gets_parent_attribute(self, enabled):
        with obs.span("test.trace.outer"):
            assert current_span() == "test.trace.outer"
            with obs.span("test.trace.inner"):
                assert current_span() == "test.trace.inner"
        assert current_span() is None
        by_name = {event.name: event for event in obs.get_tracer().events()}
        assert by_name["test.trace.inner"].args == {"parent": "test.trace.outer"}
        assert by_name["test.trace.outer"].args is None

    def test_span_survives_exception(self, enabled):
        try:
            with obs.span("test.trace.raises"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert current_span() is None
        assert [e.name for e in obs.get_tracer().events()] == ["test.trace.raises"]

    def test_span_args_mutable_until_exit(self, enabled):
        with obs.span("test.trace.late") as active:
            active.args["cycles"] = 42
        (event,) = obs.get_tracer().events()
        assert event.args["cycles"] == 42

    def test_timestamps_are_epoch_microseconds(self, enabled):
        before = now_us()
        with obs.span("test.trace.clock"):
            pass
        (event,) = obs.get_tracer().events()
        assert before <= event.ts_us <= now_us()
        # Epoch microseconds: the year is > 2020 in any sane environment.
        assert event.ts_us > 1.5e15


class TestTracerBuffer:
    def test_mark_and_events_since(self, enabled):
        with obs.span("test.trace.a"):
            pass
        mark = obs.get_tracer().mark()
        with obs.span("test.trace.b"):
            pass
        fresh = obs.get_tracer().events_since(mark)
        assert [e.name for e in fresh] == ["test.trace.b"]

    def test_serialized_round_trip(self, enabled):
        with obs.span("test.trace.rt", k=1):
            pass
        (event,) = obs.get_tracer().events()
        clone = SpanEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert clone == event

    def test_add_serialized_merges_foreign_events(self, enabled):
        payload = {
            "name": "worker.span",
            "ts_us": now_us(),
            "dur_us": 5.0,
            "pid": 99999,
            "tid": 7,
            "args": {"job": "j1"},
        }
        obs.get_tracer().add_serialized([payload])
        (event,) = obs.get_tracer().events()
        assert (event.pid, event.tid) == (99999, 7)

    def test_start_tracing_clear(self, enabled):
        with obs.span("test.trace.old"):
            pass
        obs.start_tracing(clear=True)
        assert len(obs.get_tracer()) == 0


class TestChromeExport:
    def test_payload_has_metadata_per_process_and_thread(self, enabled):
        with obs.span("test.trace.meta"):
            pass
        obs.get_tracer().add_raw(
            "worker.task", ts_us=now_us(), dur_us=3.0, pid=4242, tid=11
        )
        payload = chrome_trace_payload()
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        process_names = [e for e in meta if e["name"] == "process_name"]
        thread_names = [e for e in meta if e["name"] == "thread_name"]
        assert {e["pid"] for e in process_names} == {os.getpid(), 4242}
        assert len(thread_names) == 2  # one per distinct (pid, tid)

    def test_export_writes_valid_json(self, enabled, tmp_path):
        with obs.span("test.trace.file", snr=3.5):
            pass
        path = tmp_path / "trace.json"
        count = export_chrome_trace(path, telemetry={"counters": {"x": 1}})
        assert count == 1
        document = json.loads(path.read_text())
        assert document["telemetry"] == {"counters": {"x": 1}}
        assert validate_chrome_trace(document) == []
        assert validate_chrome_trace(path) == []

    def test_export_without_events_is_still_valid(self, tmp_path):
        path = tmp_path / "empty.json"
        assert export_chrome_trace(path) == 0
        assert validate_chrome_trace(path) == []


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"foo": 1}) == ["traceEvents must be a list"]

    def test_rejects_bad_phase_and_fields(self):
        errors = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "Z"},
                    {"ph": "X", "name": "n", "cat": "c", "ts": -1.0,
                     "dur": 2.0, "pid": 1, "tid": "nope"},
                ]
            }
        )
        assert any("unsupported phase" in error for error in errors)
        assert any("ts must be a non-negative number" in error for error in errors)
        assert any("tid must be an integer" in error for error in errors)

    def test_reports_unreadable_path(self, tmp_path):
        errors = validate_chrome_trace(tmp_path / "missing.json")
        assert len(errors) == 1 and "cannot read trace" in errors[0]
