"""Logger hierarchy and CLI verbosity wiring."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    level_for_verbosity,
)
from repro.obs import log as log_module


@pytest.fixture(autouse=True)
def restore_logging_config():
    """Put the package logger back to its pre-test handler arrangement."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    saved = (list(root.handlers), root.level, root.propagate, log_module._HANDLER)
    yield
    root.handlers[:] = saved[0]
    root.setLevel(saved[1])
    root.propagate = saved[2]
    log_module._HANDLER = saved[3]


class TestHierarchy:
    def test_root_logger(self):
        assert get_logger().name == "repro"

    def test_child_suffix(self):
        assert get_logger("campaign").name == "repro.campaign"

    def test_absolute_dotted_name_passes_through(self):
        assert get_logger("repro.analysis.runner").name == "repro.analysis.runner"

    def test_children_inherit_root_level(self):
        configure_logging(verbosity=1, stream=io.StringIO())
        assert get_logger("campaign").getEffectiveLevel() == logging.INFO


class TestVerbosityMapping:
    @pytest.mark.parametrize(
        "verbosity,level",
        [
            (-2, logging.ERROR),
            (-1, logging.ERROR),
            (0, logging.WARNING),
            (1, logging.INFO),
            (2, logging.DEBUG),
            (5, logging.DEBUG),
        ],
    )
    def test_mapping(self, verbosity, level):
        assert level_for_verbosity(verbosity) == level


class TestConfigureLogging:
    def test_writes_to_given_stream(self):
        stream = io.StringIO()
        configure_logging(verbosity=1, stream=stream)
        get_logger("campaign").info("evaluating %d job(s)", 4)
        assert "repro.campaign" in stream.getvalue()
        assert "evaluating 4 job(s)" in stream.getvalue()

    def test_default_verbosity_silences_info(self):
        stream = io.StringIO()
        configure_logging(verbosity=0, stream=stream)
        get_logger("campaign").info("should not appear")
        get_logger("campaign").warning("should appear")
        output = stream.getvalue()
        assert "should not appear" not in output
        assert "should appear" in output

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging(verbosity=1, stream=first)
        configure_logging(verbosity=1, stream=second)
        get_logger().info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_unconfigured_library_import_is_silent(self):
        # The NullHandler installed at import keeps "no handler" warnings away.
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert any(
            isinstance(handler, logging.NullHandler) for handler in root.handlers
        )
