"""Instrumented subsystems feed the shared registry and tracer.

One test family per instrumented layer: thermal solver, LDPC decoders
(dense and sparse), NoC vector engine, scenario probe cache, scenario
runs, and campaign execution.  Each asserts the *names* other tooling
depends on (``repro obs summary``, the trace exporter, the journal).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.manifest import journal_path, report_path
from repro.ldpc import TannerGraph, array_code_parity_matrix, make_decoder
from repro.noc.schedule import TrafficSchedule
from repro.noc.topology import MeshTopology
from repro.noc.traffic import make_traffic
from repro.noc.vector import VectorNetwork
from repro.scenarios import ScenarioSpec, run_scenario
from repro.scenarios import compile as compile_module
from repro.thermal.floorplan import mesh_floorplan
from repro.thermal.rc_model import build_thermal_network
from repro.thermal.solver import ThermalSolver


def cheap_spec(name="obs-cheap", **overrides):
    params = dict(
        name=name,
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=6,
        settle_epochs=3,
    )
    params.update(overrides)
    return ScenarioSpec(**params)


class TestThermalSolver:
    @pytest.fixture
    def solver(self, mesh4):
        return ThermalSolver(build_thermal_network(mesh_floorplan(mesh4)))

    def _power(self, mesh4):
        return {f"PE_{x}_{y}": 0.5 for (x, y) in mesh4.coordinates()}

    def test_instance_counters_work_with_telemetry_disabled(self, solver, mesh4):
        solver.steady_state(self._power(mesh4))
        assert solver.steady_solve_count == 1
        assert obs.get_registry().snapshot().empty

    def test_registry_mirrors_instance_counters(self, enabled, solver, mesh4):
        solver.steady_state(self._power(mesh4))
        solver.transient(self._power(mesh4), duration_s=1e-5, time_step_s=1e-6)
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters["thermal.steady_solves"] == 1
        assert snapshot.counters["thermal.transients"] == 1
        assert snapshot.counters["thermal.step_factorizations"] >= 1
        assert solver.steady_solve_count == 1
        assert solver.transient_count == 1


class TestLdpcDecoders:
    @pytest.fixture(scope="class")
    def graph(self):
        return TannerGraph(array_code_parity_matrix(p=5, j=3, k=5))

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_decode_batch_counters_and_span(self, enabled, graph, backend):
        decoder = make_decoder("min-sum", graph, max_iterations=5, backend=backend)
        llr = np.full((3, graph.n), 4.0)  # all-zero codeword, high confidence
        batch = decoder.decode_batch(llr)
        assert len(batch) == 3
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters["ldpc.decode_batches"] == 1
        assert snapshot.counters["ldpc.decode_blocks"] == 3
        assert snapshot.counters["ldpc.decode_iterations"] >= 3
        spans = [
            e for e in obs.get_tracer().events() if e.name == "ldpc.decode_batch"
        ]
        assert len(spans) == 1
        assert spans[0].args["blocks"] == 3
        assert spans[0].args["backend"] == backend

    def test_disabled_decode_touches_nothing(self, graph):
        decoder = make_decoder("min-sum", graph, max_iterations=5)
        decoder.decode_batch(np.full((2, graph.n), 4.0))
        assert obs.get_registry().snapshot().empty
        assert len(obs.get_tracer()) == 0


class TestNocVectorEngine:
    def _engine(self, cycles=40):
        topology = MeshTopology(4, 4)
        generator = make_traffic("uniform", topology, injection_rate=0.1, seed=3)
        schedule = TrafficSchedule.from_generator(generator, topology, cycles)
        return VectorNetwork(topology, [schedule, schedule])

    def test_run_and_drain_counters(self, enabled):
        engine = self._engine()
        engine.run(40)
        drained = engine.drain(max_cycles=2000)
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters["noc.vector.runs"] == 1
        assert snapshot.counters["noc.vector.drains"] == 1
        assert snapshot.counters["noc.vector.lane_cycles"] == 2 * (40 + drained)
        by_name = {e.name: e for e in obs.get_tracer().events()}
        assert by_name["noc.vector.run"].args == {"lanes": 2, "cycles": 40}
        assert by_name["noc.vector.drain"].args["cycles"] == drained


class TestProbeCache:
    def test_miss_then_hit(self, enabled):
        graph = TannerGraph(array_code_parity_matrix(p=5, j=3, k=5))
        digest = "test-obs-unique-digest"
        first = compile_module._decode_probe(graph, digest, 4.0)
        second = compile_module._decode_probe(graph, digest, 4.0)
        assert first == second
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters["scenario.probe_misses"] == 1
        assert snapshot.counters["scenario.probe_hits"] == 1
        spans = [
            e
            for e in obs.get_tracer().events()
            if e.name == "scenario.decode_probe"
        ]
        assert len(spans) == 1  # only the miss decodes


class TestScenarioTelemetry:
    def test_result_carries_scope_deltas(self, enabled):
        result = run_scenario(cheap_spec())
        assert result.telemetry is not None
        counters = result.telemetry["counters"]
        assert counters["scenario.runs"] == 1
        assert counters["thermal.steady_solves"] >= 1
        names = {e.name for e in obs.get_tracer().events()}
        assert {"scenario.run", "experiment.run", "thermal.steady_batch"} <= names

    def test_disabled_run_has_no_telemetry(self):
        result = run_scenario(cheap_spec())
        assert result.telemetry is None
        assert obs.get_registry().snapshot().empty


class TestCampaignTelemetry:
    def _spec(self):
        return CampaignSpec(
            name="obs-camp",
            scenarios=(cheap_spec("c1"),),
            configurations=("A",),
            schemes=("xy-shift", "rotation"),
        )

    def test_journal_report_and_run_telemetry(self, enabled, tmp_path):
        run = run_campaign(self._spec(), tmp_path / "camp")
        assert run.evaluated == 2
        assert run.telemetry is not None
        assert run.telemetry["counters"]["campaign.evaluations"] == 2
        assert run.telemetry["timers"]["campaign.job"]["count"] == 2

        entries = [
            json.loads(line)
            for line in journal_path(tmp_path / "camp").read_text().splitlines()
        ]
        assert len(entries) == 2
        for entry in entries:
            assert entry["telemetry"]["counters"]["scenario.runs"] == 1

        report = json.loads(report_path(tmp_path / "camp").read_text())
        assert report["telemetry"]["counters"]["campaign.evaluations"] == 2

        names = [e.name for e in obs.get_tracer().events()]
        assert names.count("campaign.job") == 2
        assert names.count("campaign.run") == 1

    def test_replay_and_cache_hit_counters(self, enabled, tmp_path):
        shared = tmp_path / "cache"
        run_campaign(self._spec(), tmp_path / "one", cache_root=shared)
        obs.get_registry().reset()

        replayed = run_campaign(self._spec(), tmp_path / "one", cache_root=shared)
        assert replayed.evaluated == 0
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters["campaign.journal_replays"] == 2
        assert "campaign.evaluations" not in snapshot.counters

        obs.get_registry().reset()
        warm = run_campaign(self._spec(), tmp_path / "two", cache_root=shared)
        assert warm.evaluated == 0
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters["campaign.cache_hits"] == 2

    def test_disabled_campaign_journal_has_no_telemetry(self, tmp_path):
        run = run_campaign(self._spec(), tmp_path / "camp")
        assert run.telemetry is None
        entries = [
            json.loads(line)
            for line in journal_path(tmp_path / "camp").read_text().splitlines()
        ]
        assert all("telemetry" not in entry for entry in entries)
