"""Registry semantics: instruments, snapshots, scopes, disabled no-ops."""

from __future__ import annotations

import time

from repro import obs
from repro.obs import TelemetryRegistry, TelemetrySummary


class TestDisabledPath:
    def test_counter_add_is_a_noop(self):
        counter = obs.counter("test.core.noop")
        counter.add()
        counter.add(41)
        assert counter.value == 0
        assert obs.get_registry().snapshot().empty

    def test_gauge_set_is_a_noop(self):
        gauge = obs.gauge("test.core.noop_gauge")
        gauge.set(7)
        assert gauge.value is None

    def test_timer_record_and_context_are_noops(self):
        timer = obs.timer("test.core.noop_timer")
        timer.record(1.5)
        with timer.time():
            pass
        assert timer.count == 0
        assert timer.total_s == 0.0

    def test_disabled_timer_context_is_shared_singleton(self):
        timer = obs.timer("test.core.noop_timer")
        assert timer.time() is timer.time()


class TestEnabledInstruments:
    def test_counter_accumulates(self, enabled):
        counter = obs.counter("test.core.count")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_gauge_keeps_last_value(self, enabled):
        gauge = obs.gauge("test.core.gauge")
        gauge.set(3)
        gauge.set(9)
        assert gauge.value == 9

    def test_timer_aggregates_stats(self, enabled):
        timer = obs.timer("test.core.timer")
        timer.record(0.2)
        timer.record(0.4)
        stats = timer.stats()
        assert stats["count"] == 2
        assert abs(stats["total_s"] - 0.6) < 1e-12
        assert abs(stats["mean_s"] - 0.3) < 1e-12
        assert stats["min_s"] == 0.2
        assert stats["max_s"] == 0.4

    def test_timer_context_measures_body(self, enabled):
        timer = obs.timer("test.core.timer_ctx")
        with timer.time():
            time.sleep(0.01)
        assert timer.count == 1
        assert timer.total_s >= 0.005

    def test_instruments_are_get_or_create(self):
        assert obs.counter("test.core.same") is obs.counter("test.core.same")
        assert obs.timer("test.core.same") is obs.timer("test.core.same")
        assert obs.gauge("test.core.same") is obs.gauge("test.core.same")


class TestSnapshotAndReset:
    def test_snapshot_filters_untouched_instruments(self, enabled):
        obs.counter("test.core.zero")
        obs.timer("test.core.zero")
        obs.gauge("test.core.zero")
        obs.counter("test.core.hot").add(2)
        snapshot = obs.get_registry().snapshot()
        assert snapshot.counters == {"test.core.hot": 2}
        assert snapshot.gauges == {}
        assert snapshot.timers == {}

    def test_snapshot_round_trips_through_dict(self, enabled):
        obs.counter("test.core.rt").add(3)
        obs.gauge("test.core.rt").set(1.5)
        obs.timer("test.core.rt").record(0.25)
        snapshot = obs.get_registry().snapshot()
        clone = TelemetrySummary.from_dict(snapshot.to_dict())
        assert clone.to_dict() == snapshot.to_dict()
        assert not clone.empty

    def test_to_rows_covers_every_kind(self, enabled):
        obs.counter("test.core.rows").add(2)
        obs.gauge("test.core.rows").set(4)
        obs.timer("test.core.rows").record(0.5)
        rows = obs.get_registry().snapshot().to_rows()
        kinds = {row["kind"] for row in rows}
        assert kinds == {"counter", "gauge", "timer"}
        timer_row = next(row for row in rows if row["kind"] == "timer")
        assert timer_row["value"] == 1
        assert timer_row["total_s"] == 0.5

    def test_reset_zeroes_but_preserves_identity(self, enabled):
        counter = obs.counter("test.core.reset")
        counter.add(5)
        registry = obs.get_registry()
        registry.reset()
        assert counter.value == 0
        assert registry.counter("test.core.reset") is counter
        counter.add()
        assert counter.value == 1

    def test_empty_summary(self):
        assert TelemetrySummary().empty
        assert TelemetrySummary(counters={"a": 1}).empty is False


class TestScopes:
    def test_scope_collects_thread_deltas(self, enabled):
        counter = obs.counter("test.core.scope")
        timer = obs.timer("test.core.scope")
        counter.add(10)  # before the scope: must not leak in
        with obs.get_registry().scoped() as scope:
            counter.add(2)
            timer.record(0.1)
        assert scope.counters == {"test.core.scope": 2}
        assert scope.timers["test.core.scope"]["count"] == 1
        assert counter.value == 12  # registry still sees everything

    def test_scopes_nest(self, enabled):
        counter = obs.counter("test.core.nest")
        registry = obs.get_registry()
        with registry.scoped() as outer:
            counter.add()
            with registry.scoped() as inner:
                counter.add(5)
        assert inner.counters == {"test.core.nest": 5}
        assert outer.counters == {"test.core.nest": 6}

    def test_scope_to_dict_shape(self, enabled):
        with obs.get_registry().scoped() as scope:
            obs.counter("test.core.shape").add()
        payload = scope.to_dict()
        assert set(payload) == {"counters", "timers"}
        assert payload["counters"] == {"test.core.shape": 1}

    def test_disabled_scope_collects_nothing(self):
        with obs.get_registry().scoped() as scope:
            obs.counter("test.core.dark").add()
        assert scope.to_dict() == {"counters": {}, "timers": {}}


class TestRegistryIsolation:
    def test_private_registry_is_independent(self):
        private = TelemetryRegistry(enabled=True)
        private.counter("test.core.private").add(3)
        assert private.snapshot().counters == {"test.core.private": 3}
        assert obs.get_registry().snapshot().empty

    def test_enable_disable_toggle(self):
        registry = obs.get_registry()
        assert not registry.enabled
        obs.enable()
        assert registry.enabled and obs.enabled()
        obs.disable()
        assert not registry.enabled and not obs.enabled()
