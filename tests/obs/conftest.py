"""Shared fixtures for the observability suite.

Telemetry state is process-wide (one registry, one tracer); every test here
starts from a clean, disabled slate and restores it afterwards so the suite
never leaks enabled telemetry into unrelated tests.
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Disable + zero the registry and tracer around every test."""
    obs.disable()
    obs.stop_tracing()
    obs.get_registry().reset()
    obs.get_tracer().clear()
    yield
    obs.disable()
    obs.stop_tracing()
    obs.get_registry().reset()
    obs.get_tracer().clear()


@pytest.fixture
def enabled():
    """Telemetry (registry + tracing) switched on for the test body."""
    obs.enable()
    obs.start_tracing(clear=True)
    yield obs.get_registry()
