"""Tests for Tanner-graph partitioning onto PEs."""

import numpy as np
import pytest

from repro.ldpc.matrix import array_code_parity_matrix
from repro.ldpc.partition import (
    Partition,
    clustered_partition,
    interleaved_partition,
    make_partition,
    striped_partition,
    weighted_partition,
)
from repro.ldpc.tanner import TannerGraph


@pytest.fixture(scope="module")
def graph():
    return TannerGraph(array_code_parity_matrix(p=7, j=3, k=6))


ALL_STRATEGIES = ["striped", "interleaved", "clustered"]


class TestPartitionInvariants:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_every_node_assigned(self, graph, strategy):
        partition = make_partition(strategy, graph, num_tasks=16, seed=1)
        assert len(partition.task_of_node) == graph.num_nodes
        assert sum(partition.task_sizes()) == graph.num_nodes

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_task_ids_in_range(self, graph, strategy):
        partition = make_partition(strategy, graph, num_tasks=16, seed=1)
        assert set(partition.task_of_node.values()) <= set(range(16))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_cut_plus_internal_equals_total_edges(self, graph, strategy):
        partition = make_partition(strategy, graph, num_tasks=16, seed=2)
        assert partition.cut_edges() + partition.internal_edges() == graph.num_edges

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_traffic_matrix_symmetric_in_totals(self, graph, strategy):
        partition = make_partition(strategy, graph, num_tasks=16, seed=3)
        matrix = partition.traffic_matrix()
        # Every cut edge contributes exactly one message in each direction.
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_computation_weights_sum_to_total_degree(self, graph, strategy):
        partition = make_partition(strategy, graph, num_tasks=16, seed=4)
        assert partition.computation_weights().sum() == pytest.approx(2 * graph.num_edges)


class TestSpecificStrategies:
    def test_striped_keeps_contiguous_blocks(self, graph):
        partition = striped_partition(graph, 4)
        # The first quarter of variable nodes must share a task.
        first_quarter = graph.variable_nodes[: graph.n // 4]
        tasks = {partition.task_of_node[node] for node in first_quarter}
        assert len(tasks) == 1

    def test_interleaved_spreads_neighbours(self, graph):
        striped = striped_partition(graph, 16)
        interleaved = interleaved_partition(graph, 16)
        assert interleaved.cut_edges() >= striped.cut_edges()

    def test_clustered_reproducible_with_seed(self, graph):
        a = clustered_partition(graph, 16, seed=9)
        b = clustered_partition(graph, 16, seed=9)
        assert a.task_of_node == b.task_of_node

    def test_weighted_partition_respects_shares(self, graph):
        shares = [4.0] + [1.0] * 15
        partition = weighted_partition(graph, 16, task_shares=shares, seed=5)
        sizes = partition.task_sizes()
        assert sizes[0] > np.mean(sizes[1:])

    def test_weighted_partition_every_task_nonempty(self, graph):
        shares = [1.0] * 25
        partition = weighted_partition(graph, 25, task_shares=shares, seed=6)
        assert all(size > 0 for size in partition.task_sizes())

    def test_weighted_rejects_wrong_length(self, graph):
        with pytest.raises(ValueError):
            weighted_partition(graph, 4, task_shares=[1.0, 2.0])

    def test_weighted_rejects_nonpositive_share(self, graph):
        with pytest.raises(ValueError):
            weighted_partition(graph, 3, task_shares=[1.0, 0.0, 1.0])


class TestConstructionErrors:
    def test_unknown_strategy(self, graph):
        with pytest.raises(ValueError):
            make_partition("metis", graph, 16)

    def test_incomplete_assignment_rejected(self, graph):
        assignment = {node: 0 for node in graph.all_nodes()}
        assignment.pop(graph.variable_nodes[0])
        with pytest.raises(ValueError):
            Partition(graph=graph, num_tasks=4, task_of_node=assignment)

    def test_out_of_range_task_rejected(self, graph):
        assignment = {node: 0 for node in graph.all_nodes()}
        assignment[graph.variable_nodes[0]] = 99
        with pytest.raises(ValueError):
            Partition(graph=graph, num_tasks=4, task_of_node=assignment)

    def test_load_imbalance_at_least_one(self, graph):
        partition = striped_partition(graph, 16)
        assert partition.load_imbalance() >= 1.0
