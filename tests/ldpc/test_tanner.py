"""Tests for the Tanner graph."""

import numpy as np
import pytest

from repro.ldpc.matrix import array_code_parity_matrix
from repro.ldpc.tanner import TannerGraph, TannerNode


class TestTannerNode:
    def test_kinds(self):
        v = TannerNode("v", 3)
        c = TannerNode("c", 1)
        assert v.is_variable and not v.is_check
        assert c.is_check and not c.is_variable

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            TannerNode("x", 0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            TannerNode("v", -1)

    def test_hashable_and_equal(self):
        assert TannerNode("v", 2) == TannerNode("v", 2)
        assert len({TannerNode("v", 2), TannerNode("v", 2), TannerNode("c", 2)}) == 2


class TestTannerGraph:
    @pytest.fixture
    def graph(self, small_code):
        _H, graph = small_code
        return graph

    def test_node_counts(self, graph, small_code):
        H, _ = small_code
        m, n = H.shape
        assert graph.n == n
        assert graph.m == m
        assert graph.num_nodes == n + m
        assert len(graph.all_nodes()) == n + m

    def test_edge_count_matches_ones(self, graph, small_code):
        H, _ = small_code
        assert graph.num_edges == int(H.sum())
        assert len(list(graph.edges())) == graph.num_edges

    def test_adjacency_consistency(self, graph):
        # Every (variable, check) adjacency must appear in both directions.
        for j, checks in enumerate(graph.checks_of_variable):
            for i in checks:
                assert j in graph.variables_of_check[i]

    def test_degree_matches_matrix(self, graph, small_code):
        H, _ = small_code
        for j in range(graph.n):
            assert graph.degree(graph.variable_nodes[j]) == H[:, j].sum()
        for i in range(graph.m):
            assert graph.degree(graph.check_nodes[i]) == H[i, :].sum()

    def test_neighbors_are_opposite_kind(self, graph):
        v = graph.variable_nodes[0]
        assert all(n.is_check for n in graph.neighbors(v))
        c = graph.check_nodes[0]
        assert all(n.is_variable for n in graph.neighbors(c))

    def test_zero_codeword_valid(self, graph):
        assert graph.is_codeword(np.zeros(graph.n, dtype=np.uint8))

    def test_random_word_usually_invalid(self, graph):
        rng = np.random.default_rng(0)
        word = rng.integers(0, 2, size=graph.n, dtype=np.uint8)
        syndrome = graph.check_syndrome(word)
        assert syndrome.shape == (graph.m,)

    def test_syndrome_length_check(self, graph):
        with pytest.raises(ValueError):
            graph.check_syndrome(np.zeros(graph.n + 1, dtype=np.uint8))

    def test_networkx_export(self, graph):
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == graph.num_nodes
        assert nx_graph.number_of_edges() == graph.num_edges

    def test_girth_at_least_four(self, graph):
        # A bipartite graph has no odd cycles, and array codes have girth >= 6.
        girth = graph.girth()
        assert girth >= 4
        assert girth % 2 == 0
