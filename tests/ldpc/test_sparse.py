"""Parity tests: the sparse/batched decoders must match the dense reference.

The dense decoders in :mod:`repro.ldpc.decoder` are the behavioural
specification; the edge-list backend must reproduce their decoded bits,
success flags, iteration counts, message counts and per-iteration error
traces bit-for-bit, across variants, seeds and SNRs.
"""

import numpy as np
import pytest

from repro.ldpc import (
    BpskAwgnChannel,
    LdpcEncoder,
    SparseMinSumDecoder,
    SparseSumProductDecoder,
    TannerGraph,
    array_code_parity_matrix,
    gallager_parity_matrix,
    make_decoder,
)
from repro.ldpc.sparse import EdgeStructure

VARIANTS = ("min-sum", "sum-product")


@pytest.fixture(scope="module")
def code():
    H = array_code_parity_matrix(p=13, j=3, k=6)
    return TannerGraph(H), LdpcEncoder(H)


def _llr_batch(encoder, snr_db, seeds, channel_seed):
    channel = BpskAwgnChannel(snr_db=snr_db, rate=encoder.rate, seed=channel_seed)
    codewords = np.stack([encoder.random_codeword(seed=seed) for seed in seeds])
    llrs = np.stack([channel.transmit_llr(word) for word in codewords])
    return codewords, llrs


class TestEdgeStructure:
    def test_layout_matches_parity_matrix(self, code):
        graph, _ = code
        edges = EdgeStructure(graph)
        assert edges.num_edges == graph.num_edges
        rebuilt = np.zeros((graph.m, graph.n), dtype=np.uint8)
        rebuilt[edges.edge_check, edges.edge_var] = 1
        assert np.array_equal(rebuilt, graph.H)

    def test_variable_order_is_a_permutation(self, code):
        graph, _ = code
        edges = EdgeStructure(graph)
        assert sorted(edges.var_order.tolist()) == list(range(edges.num_edges))
        # In variable-major order the variable indices are non-decreasing.
        assert np.all(np.diff(edges.edge_var[edges.var_order]) >= 0)


class TestBackendFactory:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_sparse_backend_classes(self, code, variant):
        graph, _ = code
        decoder = make_decoder(variant, graph, backend="sparse")
        expected = {
            "min-sum": SparseMinSumDecoder,
            "sum-product": SparseSumProductDecoder,
        }[variant]
        assert isinstance(decoder, expected)
        assert decoder.name == variant

    def test_unknown_backend_rejected(self, code):
        graph, _ = code
        with pytest.raises(ValueError, match="backend"):
            make_decoder("min-sum", graph, backend="gpu")

    def test_invalid_parameters_rejected(self, code):
        graph, _ = code
        with pytest.raises(ValueError):
            make_decoder("min-sum", graph, backend="sparse", max_iterations=0)
        with pytest.raises(ValueError):
            make_decoder("min-sum", graph, backend="sparse", normalization=1.5)


class TestParityWithDense:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("snr_db", (1.0, 2.5, 4.0))
    def test_single_block_parity(self, code, variant, snr_db):
        graph, encoder = code
        dense = make_decoder(variant, graph, max_iterations=20)
        sparse = make_decoder(variant, graph, max_iterations=20, backend="sparse")
        codewords, llrs = _llr_batch(encoder, snr_db, seeds=range(6), channel_seed=31)
        for index in range(len(codewords)):
            expected = dense.decode(llrs[index], reference_bits=codewords[index])
            actual = sparse.decode(llrs[index], reference_bits=codewords[index])
            assert np.array_equal(expected.decoded_bits, actual.decoded_bits)
            assert expected.success == actual.success
            assert expected.iterations == actual.iterations
            assert expected.messages_exchanged == actual.messages_exchanged
            assert expected.per_iteration_errors == actual.per_iteration_errors

    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("channel_seed", (7, 19))
    def test_batch_parity(self, code, variant, channel_seed):
        graph, encoder = code
        dense = make_decoder(variant, graph, max_iterations=15)
        sparse = make_decoder(variant, graph, max_iterations=15, backend="sparse")
        codewords, llrs = _llr_batch(
            encoder, snr_db=2.0, seeds=range(10), channel_seed=channel_seed
        )
        expected = dense.decode_batch(llrs, reference_bits=codewords)
        actual = sparse.decode_batch(llrs, reference_bits=codewords)
        assert np.array_equal(expected.decoded_bits, actual.decoded_bits)
        assert np.array_equal(expected.success, actual.success)
        assert np.array_equal(expected.iterations, actual.iterations)
        assert np.array_equal(expected.messages_exchanged, actual.messages_exchanged)
        assert expected.per_iteration_errors == actual.per_iteration_errors

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_parity_on_gallager_code(self, variant):
        """The irregular row layout of a Gallager code must decode identically."""
        graph = TannerGraph(gallager_parity_matrix(n=48, wc=3, wr=6, seed=5))
        dense = make_decoder(variant, graph, max_iterations=12)
        sparse = make_decoder(variant, graph, max_iterations=12, backend="sparse")
        rng = np.random.default_rng(99)
        llrs = rng.normal(loc=1.0, scale=2.0, size=(8, graph.n))
        expected = dense.decode_batch(llrs)
        actual = sparse.decode_batch(llrs)
        assert np.array_equal(expected.decoded_bits, actual.decoded_bits)
        assert np.array_equal(expected.iterations, actual.iterations)
        assert np.array_equal(expected.success, actual.success)


class TestFusedCheckNodeKernels:
    """The reshape/partition fast path and its irregular-layout fallback."""

    def test_regular_code_takes_the_fused_path(self, code):
        graph, _ = code
        assert EdgeStructure(graph).uniform_check_degree == 6

    def test_irregular_check_degrees_disable_fusion(self):
        H = self._irregular_matrix()
        assert EdgeStructure(TannerGraph(H)).uniform_check_degree is None

    def test_segment_signs_match_float_reduceat(self):
        graph = TannerGraph(self._irregular_matrix())
        edges = EdgeStructure(graph)
        rng = np.random.default_rng(7)
        v_to_c = rng.normal(size=(6, edges.num_edges))
        v_to_c[0, :3] = 0.0  # zeros count as positive
        signs = np.where(v_to_c < 0, -1.0, 1.0)
        expected = np.multiply.reduceat(signs, edges.check_ptr, axis=1)
        assert np.array_equal(edges.segment_signs(v_to_c), expected)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_irregular_fallback_matches_dense(self, variant):
        """Mixed row weights force the reduceat path; parity must hold."""
        graph = TannerGraph(self._irregular_matrix())
        dense = make_decoder(variant, graph, max_iterations=10)
        sparse = make_decoder(variant, graph, max_iterations=10, backend="sparse")
        rng = np.random.default_rng(41)
        llrs = rng.normal(loc=0.8, scale=1.5, size=(12, graph.n))
        expected = dense.decode_batch(llrs)
        actual = sparse.decode_batch(llrs)
        assert np.array_equal(expected.decoded_bits, actual.decoded_bits)
        assert np.array_equal(expected.iterations, actual.iterations)
        assert np.array_equal(expected.success, actual.success)

    @staticmethod
    def _irregular_matrix():
        """A small parity matrix whose checks have degrees 2, 3 and 4."""
        H = np.zeros((6, 12), dtype=np.uint8)
        rng = np.random.default_rng(17)
        for row, degree in enumerate((2, 3, 4, 2, 4, 3)):
            cols = rng.choice(12, size=degree, replace=False)
            H[row, cols] = 1
        # Every variable needs at least one check.
        for col in np.flatnonzero(H.sum(axis=0) == 0):
            H[rng.integers(0, 6), col] = 1
        return H


class TestBatchSemantics:
    def test_batch_indexing_and_aggregates(self, code):
        graph, encoder = code
        sparse = make_decoder("min-sum", graph, backend="sparse")
        codewords, llrs = _llr_batch(encoder, snr_db=3.0, seeds=range(5), channel_seed=3)
        batch = sparse.decode_batch(llrs)
        assert len(batch) == 5
        results = batch.as_results()
        assert [result.success for result in results] == batch.success.tolist()
        assert batch.total_messages == sum(result.messages_exchanged for result in results)
        assert 0.0 <= batch.success_rate <= 1.0

    def test_shape_validation(self, code):
        graph, _ = code
        sparse = make_decoder("min-sum", graph, backend="sparse")
        with pytest.raises(ValueError):
            sparse.decode(np.zeros(graph.n + 1))
        with pytest.raises(ValueError):
            sparse.decode_batch(np.zeros((2, graph.n + 1)))
        with pytest.raises(ValueError):
            sparse.decode_batch(
                np.zeros((2, graph.n)), reference_bits=np.zeros((3, graph.n))
            )

    @pytest.mark.parametrize("backend", ("dense", "sparse"))
    def test_empty_batch(self, code, backend):
        graph, _ = code
        decoder = make_decoder("min-sum", graph, backend=backend)
        batch = decoder.decode_batch(np.zeros((0, graph.n)))
        assert len(batch) == 0
        assert batch.decoded_bits.shape == (0, graph.n)
        assert batch.success_rate == 0.0

    def test_dense_decode_batch_matches_loop(self, code):
        """The dense reference loop produces the same aggregate shapes."""
        graph, encoder = code
        dense = make_decoder("min-sum", graph)
        codewords, llrs = _llr_batch(encoder, snr_db=3.0, seeds=range(4), channel_seed=13)
        batch = dense.decode_batch(llrs, reference_bits=codewords)
        for index in range(4):
            single = dense.decode(llrs[index], reference_bits=codewords[index])
            assert np.array_equal(batch.decoded_bits[index], single.decoded_bits)
            assert batch[index].per_iteration_errors == single.per_iteration_errors
