"""Tests for the min-sum and sum-product decoders."""

import numpy as np
import pytest

from repro.ldpc.channel import BinarySymmetricChannel, BpskAwgnChannel, count_bit_errors
from repro.ldpc.decoder import MinSumDecoder, SumProductDecoder, make_decoder
from repro.ldpc.matrix import array_code_parity_matrix
from repro.ldpc.tanner import TannerGraph


@pytest.fixture(scope="module", params=["min-sum", "sum-product"])
def decoder_and_code(request):
    H = array_code_parity_matrix(p=7, j=3, k=6)
    graph = TannerGraph(H)
    decoder = make_decoder(request.param, graph, max_iterations=30)
    return decoder, graph


class TestDecoding:
    def test_noiseless_zero_codeword(self, decoder_and_code):
        decoder, graph = decoder_and_code
        llr = np.full(graph.n, 8.0)  # strong confidence in all-zero
        result = decoder.decode(llr)
        assert result.success
        assert result.iterations == 1
        assert not result.decoded_bits.any()

    def test_corrects_small_noise(self, decoder_and_code, small_encoder):
        decoder, graph = decoder_and_code
        from repro.ldpc.encoder import LdpcEncoder

        encoder = LdpcEncoder(graph.H)
        codeword = encoder.random_codeword(seed=4)
        channel = BpskAwgnChannel(snr_db=5.0, rate=encoder.rate, seed=9)
        llr = channel.transmit_llr(codeword)
        result = decoder.decode(llr, reference_bits=codeword)
        assert result.success
        assert count_bit_errors(codeword, result.decoded_bits) == 0

    def test_corrects_single_flip(self, decoder_and_code):
        decoder, graph = decoder_and_code
        llr = np.full(graph.n, 6.0)
        llr[3] = -6.0  # one confidently wrong bit
        result = decoder.decode(llr)
        assert result.success
        assert not result.decoded_bits.any()

    def test_gives_up_after_max_iterations(self, decoder_and_code):
        decoder, graph = decoder_and_code
        rng = np.random.default_rng(0)
        # Garbage LLRs: decoding should fail but terminate.
        llr = rng.normal(0, 0.3, size=graph.n)
        result = decoder.decode(llr)
        assert result.iterations <= decoder.max_iterations
        if not result.success:
            assert result.iterations == decoder.max_iterations

    def test_message_count_accounting(self, decoder_and_code):
        decoder, graph = decoder_and_code
        llr = np.full(graph.n, 8.0)
        result = decoder.decode(llr)
        assert result.messages_exchanged == result.iterations * 2 * graph.num_edges

    def test_wrong_llr_length(self, decoder_and_code):
        decoder, graph = decoder_and_code
        with pytest.raises(ValueError):
            decoder.decode(np.zeros(graph.n + 2))

    def test_per_iteration_errors_recorded(self, decoder_and_code):
        decoder, graph = decoder_and_code
        reference = np.zeros(graph.n, dtype=np.uint8)
        llr = np.full(graph.n, 5.0)
        llr[0] = -5.0
        result = decoder.decode(llr, reference_bits=reference)
        assert len(result.per_iteration_errors) == result.iterations
        assert result.per_iteration_errors[-1] == 0


class TestDecoderConfiguration:
    def test_rejects_zero_iterations(self):
        H = array_code_parity_matrix(p=5, j=2, k=4)
        graph = TannerGraph(H)
        with pytest.raises(ValueError):
            MinSumDecoder(graph, max_iterations=0)

    def test_rejects_bad_normalization(self):
        H = array_code_parity_matrix(p=5, j=2, k=4)
        graph = TannerGraph(H)
        with pytest.raises(ValueError):
            MinSumDecoder(graph, normalization=0.0)
        with pytest.raises(ValueError):
            MinSumDecoder(graph, normalization=1.5)

    def test_factory_unknown_name(self):
        H = array_code_parity_matrix(p=5, j=2, k=4)
        graph = TannerGraph(H)
        with pytest.raises(ValueError):
            make_decoder("turbo", graph)


class TestBerBehaviour:
    def test_ber_improves_with_snr(self):
        """Higher SNR must not give more post-decoding errors (BER curve shape)."""
        H = array_code_parity_matrix(p=11, j=3, k=6)
        graph = TannerGraph(H)
        from repro.ldpc.encoder import LdpcEncoder

        encoder = LdpcEncoder(H)
        decoder = MinSumDecoder(graph, max_iterations=25)
        errors_by_snr = {}
        for snr_db in (0.0, 4.0):
            channel = BpskAwgnChannel(snr_db=snr_db, rate=encoder.rate, seed=17)
            errors = 0
            for trial in range(6):
                codeword = encoder.random_codeword(seed=trial)
                llr = channel.transmit_llr(codeword)
                result = decoder.decode(llr)
                errors += count_bit_errors(codeword, result.decoded_bits)
            errors_by_snr[snr_db] = errors
        assert errors_by_snr[4.0] <= errors_by_snr[0.0]
