"""Tests for the channel models."""

import numpy as np
import pytest

from repro.ldpc.channel import BinarySymmetricChannel, BpskAwgnChannel, count_bit_errors


class TestBpskAwgn:
    def test_modulation_mapping(self):
        channel = BpskAwgnChannel(snr_db=3.0, seed=1)
        symbols = channel.modulate(np.array([0, 1, 0, 1], dtype=np.uint8))
        assert np.array_equal(symbols, np.array([1.0, -1.0, 1.0, -1.0]))

    def test_noise_sigma_decreases_with_snr(self):
        low = BpskAwgnChannel(snr_db=0.0, rate=0.5)
        high = BpskAwgnChannel(snr_db=6.0, rate=0.5)
        assert high.noise_sigma < low.noise_sigma

    def test_llr_sign_matches_bits_at_high_snr(self):
        channel = BpskAwgnChannel(snr_db=15.0, rate=0.5, seed=3)
        bits = np.array([0, 1, 1, 0, 1], dtype=np.uint8)
        llr = channel.transmit_llr(bits)
        hard = (llr < 0).astype(np.uint8)
        assert np.array_equal(hard, bits)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            BpskAwgnChannel(snr_db=3.0, rate=0.0)
        with pytest.raises(ValueError):
            BpskAwgnChannel(snr_db=3.0, rate=1.5)

    def test_seed_reproducibility(self):
        bits = np.zeros(32, dtype=np.uint8)
        a = BpskAwgnChannel(snr_db=2.0, seed=7).transmit(bits)
        b = BpskAwgnChannel(snr_db=2.0, seed=7).transmit(bits)
        assert np.array_equal(a, b)


class TestBsc:
    def test_zero_crossover_is_noiseless(self):
        channel = BinarySymmetricChannel(crossover=0.0, seed=1)
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert np.array_equal(channel.transmit(bits), bits)

    def test_flip_rate_approximately_crossover(self):
        channel = BinarySymmetricChannel(crossover=0.2, seed=5)
        bits = np.zeros(5000, dtype=np.uint8)
        received = channel.transmit(bits)
        rate = received.mean()
        assert 0.15 < rate < 0.25

    def test_llr_signs(self):
        channel = BinarySymmetricChannel(crossover=0.1)
        llr = channel.llr(np.array([0, 1], dtype=np.uint8))
        assert llr[0] > 0
        assert llr[1] < 0
        assert llr[0] == -llr[1]

    def test_rejects_invalid_crossover(self):
        with pytest.raises(ValueError):
            BinarySymmetricChannel(crossover=0.5)
        with pytest.raises(ValueError):
            BinarySymmetricChannel(crossover=-0.1)


class TestBitErrors:
    def test_counts_differences(self):
        a = np.array([0, 1, 1, 0], dtype=np.uint8)
        b = np.array([0, 0, 1, 1], dtype=np.uint8)
        assert count_bit_errors(a, b) == 2

    def test_zero_for_identical(self):
        a = np.array([1, 0, 1], dtype=np.uint8)
        assert count_bit_errors(a, a.copy()) == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            count_bit_errors(np.zeros(3, dtype=np.uint8), np.zeros(4, dtype=np.uint8))
