"""Tests for the LDPC parity-check matrix constructions."""

import numpy as np
import pytest

from repro.ldpc.matrix import (
    array_code_parity_matrix,
    gallager_parity_matrix,
    gf2_rank,
    matrix_degrees,
    validate_parity_matrix,
)


class TestValidation:
    def test_accepts_valid_matrix(self):
        H = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        params = validate_parity_matrix(H)
        assert params.n == 3
        assert params.m == 2
        assert params.design_rate == pytest.approx(1 / 3)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            validate_parity_matrix(np.array([[1, 2], [0, 1]]))

    def test_rejects_empty_row(self):
        with pytest.raises(ValueError):
            validate_parity_matrix(np.array([[1, 1], [0, 0]]))

    def test_rejects_empty_column(self):
        with pytest.raises(ValueError):
            validate_parity_matrix(np.array([[1, 0], [1, 0]]))

    def test_rejects_one_dimensional(self):
        with pytest.raises(ValueError):
            validate_parity_matrix(np.array([1, 0, 1]))


class TestGallagerConstruction:
    def test_dimensions(self):
        H = gallager_parity_matrix(n=20, wc=3, wr=4, seed=1)
        assert H.shape == (15, 20)

    def test_row_and_column_weights(self):
        H = gallager_parity_matrix(n=24, wc=3, wr=6, seed=2)
        assert np.all(H.sum(axis=1) == 6)
        assert np.all(H.sum(axis=0) == 3)

    def test_requires_divisibility(self):
        with pytest.raises(ValueError):
            gallager_parity_matrix(n=10, wc=3, wr=4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gallager_parity_matrix(n=0, wc=3, wr=4)

    def test_seed_reproducibility(self):
        a = gallager_parity_matrix(n=20, wc=3, wr=4, seed=7)
        b = gallager_parity_matrix(n=20, wc=3, wr=4, seed=7)
        assert np.array_equal(a, b)


class TestArrayCodeConstruction:
    def test_dimensions(self):
        H = array_code_parity_matrix(p=7, j=3, k=5)
        assert H.shape == (21, 35)

    def test_column_and_row_weights(self):
        H = array_code_parity_matrix(p=11, j=3, k=6)
        assert np.all(H.sum(axis=0) == 3)
        assert np.all(H.sum(axis=1) == 6)

    def test_first_block_row_is_identity_blocks(self):
        p = 5
        H = array_code_parity_matrix(p=p, j=2, k=3)
        for b in range(3):
            block = H[:p, b * p : (b + 1) * p]
            assert np.array_equal(block, np.eye(p, dtype=np.uint8))

    def test_rejects_j_greater_than_p(self):
        with pytest.raises(ValueError):
            array_code_parity_matrix(p=3, j=4, k=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            array_code_parity_matrix(p=0, j=1, k=1)


class TestHelpers:
    def test_matrix_degrees(self):
        H = array_code_parity_matrix(p=7, j=3, k=6)
        variable_degrees, check_degrees = matrix_degrees(H)
        assert variable_degrees.shape == (42,)
        assert check_degrees.shape == (21,)
        assert set(variable_degrees) == {3}
        assert set(check_degrees) == {6}

    def test_gf2_rank_identity(self):
        assert gf2_rank(np.eye(5, dtype=np.uint8)) == 5

    def test_gf2_rank_dependent_rows(self):
        H = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=np.uint8)
        # Third row is the XOR of the first two.
        assert gf2_rank(H) == 2

    def test_gf2_rank_bounds(self):
        H = array_code_parity_matrix(p=7, j=3, k=6)
        rank = gf2_rank(H)
        assert 0 < rank <= min(H.shape)
