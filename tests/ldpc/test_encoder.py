"""Tests for the GF(2) systematic encoder."""

import numpy as np
import pytest

from repro.ldpc.encoder import LdpcEncoder
from repro.ldpc.matrix import array_code_parity_matrix, gallager_parity_matrix


class TestEncoder:
    def test_rank_and_k(self, small_encoder, small_code):
        H, _ = small_code
        assert small_encoder.rank <= min(H.shape)
        assert small_encoder.k == H.shape[1] - small_encoder.rank
        assert 0 < small_encoder.rate < 1

    def test_encoded_words_satisfy_checks(self, small_encoder):
        rng = np.random.default_rng(1)
        for _ in range(10):
            info = rng.integers(0, 2, size=small_encoder.k, dtype=np.uint8)
            codeword = small_encoder.encode(info)
            assert small_encoder.is_codeword(codeword)

    def test_information_bits_recoverable(self, small_encoder):
        # The encoder is systematic on the free columns: information bits are
        # stored untouched at those positions.
        rng = np.random.default_rng(2)
        info = rng.integers(0, 2, size=small_encoder.k, dtype=np.uint8)
        codeword = small_encoder.encode(info)
        assert np.array_equal(codeword[small_encoder._free_cols], info)

    def test_all_zero_codeword(self, small_encoder):
        zero = small_encoder.all_zero_codeword()
        assert not zero.any()
        assert small_encoder.is_codeword(zero)

    def test_zero_information_encodes_to_zero(self, small_encoder):
        codeword = small_encoder.encode(np.zeros(small_encoder.k, dtype=np.uint8))
        assert not codeword.any()

    def test_linearity(self, small_encoder):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2, size=small_encoder.k, dtype=np.uint8)
        b = rng.integers(0, 2, size=small_encoder.k, dtype=np.uint8)
        sum_encoded = small_encoder.encode((a ^ b))
        encoded_sum = small_encoder.encode(a) ^ small_encoder.encode(b)
        assert np.array_equal(sum_encoded, encoded_sum)

    def test_wrong_length_rejected(self, small_encoder):
        with pytest.raises(ValueError):
            small_encoder.encode(np.zeros(small_encoder.k + 1, dtype=np.uint8))

    def test_random_codeword_is_valid(self, small_encoder):
        codeword = small_encoder.random_codeword(seed=11)
        assert small_encoder.is_codeword(codeword)

    def test_gallager_code_encoding(self):
        H = gallager_parity_matrix(n=24, wc=3, wr=6, seed=5)
        encoder = LdpcEncoder(H)
        codeword = encoder.random_codeword(seed=6)
        assert encoder.is_codeword(codeword)

    def test_rate_half_array_code(self):
        H = array_code_parity_matrix(p=13, j=3, k=6)
        encoder = LdpcEncoder(H)
        # Design rate 0.5; true rate is a bit higher due to dependent rows.
        assert encoder.rate >= 0.5
