"""Tests for the LDPC-on-NoC workload adapter."""

import math

import numpy as np
import pytest

from repro.ldpc.matrix import array_code_parity_matrix
from repro.ldpc.partition import striped_partition
from repro.ldpc.tanner import TannerGraph
from repro.ldpc.workload import LdpcNocWorkload, WorkloadParameters
from repro.noc.flit import PacketClass
from repro.noc.topology import MeshTopology
from repro.placement.mapping import Mapping


@pytest.fixture
def mapping16(mesh4):
    return Mapping.identity(mesh4)


class TestWorkloadParameters:
    def test_defaults_valid(self):
        params = WorkloadParameters()
        assert params.messages_per_flit >= 1

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            WorkloadParameters(message_bits=0)
        with pytest.raises(ValueError):
            WorkloadParameters(max_packet_flits=1)
        with pytest.raises(ValueError):
            WorkloadParameters(iterations_per_block=0)
        with pytest.raises(ValueError):
            WorkloadParameters(ops_per_edge=0)

    def test_messages_per_flit(self):
        params = WorkloadParameters(message_bits=8, flit_bits=64)
        assert params.messages_per_flit == 8


class TestTrafficGeneration:
    def test_packet_count_positive(self, small_workload, mapping16):
        packets = small_workload.iteration_packets(mapping16)
        assert packets
        assert all(p.packet_class == PacketClass.DATA for p in packets)

    def test_flits_match_messages(self, small_workload):
        params = small_workload.parameters
        for src in range(small_workload.num_tasks):
            for dst in range(small_workload.num_tasks):
                if src == dst:
                    continue
                messages = small_workload.messages_between(src, dst)
                flits = small_workload.flits_between(src, dst)
                if messages == 0:
                    assert flits == 0
                else:
                    assert flits == math.ceil(messages / params.messages_per_flit)

    def test_packets_respect_max_size(self, small_code, mesh4):
        _H, graph = small_code
        partition = striped_partition(graph, 16)
        params = WorkloadParameters(max_packet_flits=3, flit_bits=8, message_bits=8)
        workload = LdpcNocWorkload(partition, params)
        mapping = Mapping.identity(mesh4)
        for packet in workload.iteration_packets(mapping):
            assert packet.size_flits <= params.max_packet_flits

    def test_packets_follow_placement(self, small_workload, mesh4):
        # Swap two tasks: packets between them must swap endpoints too.
        base = Mapping.identity(mesh4)
        permuted_ids = list(range(16))
        permuted_ids[0], permuted_ids[5] = permuted_ids[5], permuted_ids[0]
        swapped = Mapping.from_permutation(mesh4, permuted_ids)
        base_pkts = small_workload.iteration_packets(base)
        swapped_pkts = small_workload.iteration_packets(swapped)
        assert len(base_pkts) == len(swapped_pkts)
        base_sources = {p.payload["src_task"]: p.source for p in base_pkts}
        swapped_sources = {p.payload["src_task"]: p.source for p in swapped_pkts}
        assert base_sources[0] == swapped_sources[5] or base_sources[0] != swapped_sources[0]

    def test_same_pe_mapping_rejected(self, small_workload, mesh4):
        # A non-bijective placement (plain dict) must be caught at packet time.
        bad = {task: (0, 0) for task in range(16)}
        with pytest.raises(ValueError):
            small_workload.iteration_packets(bad)

    def test_block_packets_scale_with_iterations(self, small_workload, mapping16):
        per_iter = len(small_workload.iteration_packets(mapping16))
        per_block = len(small_workload.block_packets(mapping16))
        assert per_block == per_iter * small_workload.parameters.iterations_per_block


class TestActivitySummaries:
    def test_computation_ops_positive(self, small_workload):
        ops = small_workload.computation_ops_per_iteration()
        assert ops.shape == (16,)
        assert np.all(ops > 0)

    def test_block_ops_scale(self, small_workload):
        per_iter = small_workload.computation_ops_per_iteration()
        per_block = small_workload.computation_ops_per_block()
        factor = small_workload.parameters.iterations_per_block
        assert np.allclose(per_block, per_iter * factor)

    def test_communication_activity_symmetry(self, small_workload):
        activity = small_workload.communication_activity()
        # Total sends equal total receives.
        assert activity.sum() == 2 * small_workload.traffic_matrix.sum()

    def test_computation_scale_applied(self, small_code):
        _H, graph = small_code
        partition = striped_partition(graph, 16)
        scale = np.ones(16)
        scale[3] = 4.0
        scaled = LdpcNocWorkload(partition, computation_scale=scale)
        plain = LdpcNocWorkload(partition)
        assert scaled.computation_weights[3] == pytest.approx(
            4.0 * plain.computation_weights[3]
        )

    def test_computation_scale_validation(self, small_code):
        _H, graph = small_code
        partition = striped_partition(graph, 16)
        with pytest.raises(ValueError):
            LdpcNocWorkload(partition, computation_scale=np.ones(5))
        with pytest.raises(ValueError):
            LdpcNocWorkload(partition, computation_scale=np.zeros(16))


class TestHopFlitProduct:
    def test_identity_vs_shifted_mapping(self, small_workload, mesh4):
        """Wrap-around shifts change some pairwise distances, so the
        hop-flit product may change, but it must stay positive and finite."""
        identity = Mapping.identity(mesh4)
        base = small_workload.hop_flit_product(identity)
        assert base > 0

    def test_mirror_preserves_hop_flit_product(self, small_workload, mesh4):
        """Mirrors are isometries of the mesh: the product must be identical."""
        from repro.migration.transforms import XYMirrorTransform

        identity = Mapping.identity(mesh4)
        mirrored = identity.apply_transform(XYMirrorTransform(mesh4))
        assert small_workload.hop_flit_product(mirrored) == pytest.approx(
            small_workload.hop_flit_product(identity)
        )
