"""Tests for the period sweep and the migration-energy ablation."""

import pytest

from repro.analysis.sweep import (
    PAPER_PERIODS_US,
    run_energy_ablation,
    run_period_sweep,
)


class TestPeriodSweep:
    @pytest.fixture(scope="class")
    def sweep_a(self):
        from repro.chips import get_configuration

        return run_period_sweep(
            get_configuration("A"),
            scheme="xy-shift",
            periods_us=PAPER_PERIODS_US,
            mode="steady",
            num_epochs=21,
        )

    def test_three_points(self, sweep_a):
        assert len(sweep_a.points) == 3
        assert {p.period_us for p in sweep_a.points} == set(PAPER_PERIODS_US)

    def test_penalty_decreases_with_period(self, sweep_a):
        penalties = sweep_a.penalties()
        assert penalties[109.0] > penalties[437.2] > penalties[874.4]

    def test_penalty_magnitudes_match_paper_shape(self, sweep_a):
        """Paper: 1.6 % at 109 us, <0.4 % at 437.2 us, <0.2 % at 874.4 us."""
        penalties = sweep_a.penalties()
        assert 0.003 < penalties[109.0] < 0.03
        assert penalties[437.2] < 0.008
        assert penalties[874.4] < 0.004
        # Quadrupling the period divides the penalty by about four.
        assert penalties[437.2] == pytest.approx(penalties[109.0] / 4.0, rel=0.15)

    def test_peak_rise_with_longer_period_is_small(self, sweep_a):
        """Paper: going from 109 us to 437.2 us raises the peak by <0.1 degC."""
        rises = sweep_a.peak_rise_vs_fastest()
        assert abs(rises[437.2]) < 0.5
        assert abs(rises[874.4]) < 1.0

    def test_format_table(self, sweep_a):
        text = sweep_a.format_table()
        assert "109.0" in text
        assert "874.4" in text


class TestEnergyAblation:
    @pytest.fixture(scope="class")
    def ablation_e(self):
        from repro.chips import get_configuration

        return run_energy_ablation(
            get_configuration("E"), scheme="rotation", period_us=109.0, num_epochs=21
        )

    def test_energy_raises_mean_temperature(self, ablation_e):
        """The paper attributes a ~0.3 degC average-temperature increase to
        rotation's migration energy; the ablation must show a positive and
        sub-degree effect."""
        penalty = ablation_e.mean_temperature_penalty_celsius
        assert 0.0 < penalty < 1.0

    def test_energy_raises_peak_temperature(self, ablation_e):
        assert ablation_e.peak_temperature_penalty_celsius >= 0.0

    def test_both_runs_share_baseline(self, ablation_e):
        assert ablation_e.with_energy.baseline_peak_celsius == pytest.approx(
            ablation_e.without_energy.baseline_peak_celsius
        )

    def test_rotation_penalty_exceeds_shift_penalty(self):
        """Rotation moves state the furthest, so its energy penalty exceeds
        the cheap single-hop right shift's."""
        from repro.chips import get_configuration

        chip = get_configuration("E")
        rotation = run_energy_ablation(chip, scheme="rotation", num_epochs=11)
        shift = run_energy_ablation(chip, scheme="right-shift", num_epochs=11)
        assert (
            rotation.mean_temperature_penalty_celsius
            > shift.mean_temperature_penalty_celsius
        )
