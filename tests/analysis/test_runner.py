"""Tests for the parallel experiment runner and its n_jobs wiring."""

import threading
import time
from functools import partial

import pytest

from repro.analysis.runner import (
    _POOLS,
    PROCESS_TASK_FLOOR_S,
    SERIAL_TASK_FLOOR_S,
    _persistent_executor,
    plan_execution,
    resolve_jobs,
    run_experiment_grid,
    run_parallel,
    run_parallel_iter,
    run_single_experiment,
    shutdown_executors,
)
from repro.analysis.sweep import run_energy_ablation, run_period_sweep
from repro.chips import get_configuration
from repro.core.dtm import compare_with_migration


def _square(value):
    return value * value


def _fail():
    raise RuntimeError("worker failure")


class TestResolveJobs:
    def test_serial_defaults(self):
        assert resolve_jobs(None, 10) == 1
        assert resolve_jobs(1, 10) == 1

    def test_capped_by_tasks(self):
        assert resolve_jobs(8, 3) == 3

    def test_all_cpus(self):
        assert resolve_jobs(-1, 100) >= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_jobs(0, 4)
        with pytest.raises(ValueError):
            resolve_jobs(-2, 4)


class TestPlanExecution:
    def test_no_estimate_keeps_the_request(self):
        assert plan_execution(4, 8) == (4, "process")
        assert plan_execution(4, 8, None, "thread") == (4, "thread")

    def test_serial_requests_pass_through(self):
        assert plan_execution(None, 8, 1e-6) == (1, "process")
        assert plan_execution(1, 8, 1e-6) == (1, "process")

    def test_cheap_tasks_skip_the_process_pool(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        cheap = PROCESS_TASK_FLOOR_S / 2
        assert plan_execution(4, 8, cheap, "process") == (4, "thread")

    def test_trivial_tasks_run_serially(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        trivial = SERIAL_TASK_FLOOR_S / 2
        workers, _executor = plan_execution(4, 8, trivial, "process")
        assert workers == 1
        workers, _executor = plan_execution(4, 8, trivial, "thread")
        assert workers == 1

    def test_single_cpu_hosts_downgrade_threads_to_serial(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        workers, _executor = plan_execution(4, 8, 1.0, "thread")
        assert workers == 1

    def test_expensive_tasks_keep_the_process_pool(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert plan_execution(4, 8, PROCESS_TASK_FLOOR_S * 2, "process") == (
            4,
            "process",
        )


class TestRunParallelIter:
    def test_serial_plan_yields_in_task_order(self):
        tasks = [partial(_square, value) for value in range(5)]
        assert list(run_parallel_iter(tasks)) == [
            (index, index * index) for index in range(5)
        ]

    def test_parallel_yields_every_result_with_its_index(self):
        tasks = [partial(_square, value) for value in range(8)]
        seen = dict(run_parallel_iter(tasks, n_jobs=4, executor="thread"))
        assert seen == {index: index * index for index in range(8)}

    def test_failure_propagates_and_pool_survives(self):
        with pytest.raises(RuntimeError, match="worker failure"):
            list(
                run_parallel_iter(
                    [partial(_square, 1), _fail, partial(_square, 2)],
                    n_jobs=2,
                    executor="thread",
                )
            )
        # The shared pool still works afterwards.
        assert run_parallel(
            [partial(_square, 3)] * 2, n_jobs=2, executor="thread"
        ) == [9, 9]

    def test_abandoned_generator_cleans_up(self):
        tasks = [partial(_square, value) for value in range(16)]
        iterator = run_parallel_iter(tasks, n_jobs=2, executor="thread")
        next(iterator)
        iterator.close()  # must cancel/drain, not raise
        assert run_parallel(
            [partial(_square, 5)], n_jobs=2, executor="thread"
        ) == [25]


class TestRunParallel:
    def test_serial_path_preserves_order(self):
        tasks = [partial(_square, value) for value in range(6)]
        assert run_parallel(tasks) == [0, 1, 4, 9, 16, 25]

    @pytest.mark.parametrize("executor", ["process", "thread"])
    def test_parallel_results_in_task_order(self, executor):
        tasks = [partial(_square, value) for value in range(8)]
        assert run_parallel(tasks, n_jobs=4, executor=executor) == [
            value * value for value in range(8)
        ]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="worker failure"):
            run_parallel([_fail, _fail], n_jobs=2, executor="thread")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_parallel([partial(_square, 2)], n_jobs=2, executor="mpi")

    def test_empty_task_list(self):
        assert run_parallel([], n_jobs=4) == []


class TestPersistentPools:
    def test_pool_is_reused_across_calls(self):
        shutdown_executors()
        tasks = [partial(_square, value) for value in range(4)]
        run_parallel(tasks, n_jobs=2, executor="thread")
        first = _persistent_executor("thread", 2)
        run_parallel(tasks, n_jobs=2, executor="thread")
        assert _persistent_executor("thread", 2) is first
        shutdown_executors()

    def test_larger_pool_serves_smaller_requests(self):
        shutdown_executors()
        big = _persistent_executor("thread", 4)
        # A smaller request reuses the big pool; only one pool per kind.
        assert _persistent_executor("thread", 2) is big
        assert len(_POOLS) == 1
        # A bigger request replaces it.
        bigger = _persistent_executor("thread", 6)
        assert bigger is not big
        assert _persistent_executor("thread", 3) is bigger
        assert len(_POOLS) == 1
        shutdown_executors()

    def test_one_shot_pool_not_cached(self):
        shutdown_executors()
        tasks = [partial(_square, value) for value in range(4)]
        assert run_parallel(
            tasks, n_jobs=2, executor="thread", reuse_pool=False
        ) == [0, 1, 4, 9]
        assert _POOLS == {}

    def test_shutdown_is_idempotent(self):
        run_parallel(
            [partial(_square, value) for value in range(4)],
            n_jobs=2,
            executor="thread",
        )
        shutdown_executors()
        shutdown_executors()
        assert _POOLS == {}

    def test_failure_drains_in_flight_siblings(self):
        """A raising task must not leave siblings running in the shared pool.

        The pool is persistent: if the failure propagated while a sibling was
        still executing, that sibling would keep running and interleave with
        the next caller's work.  The failure path cancels pending futures and
        drains running ones before re-raising, so by the time the caller sees
        the exception nothing of this call is in flight — and the tasks the
        window never submitted must not run afterwards either.
        """
        shutdown_executors()
        sibling_started = threading.Event()
        finished = []

        def slow(idx):
            sibling_started.set()
            time.sleep(0.25)
            finished.append(idx)
            return idx

        def fail_once_sibling_runs():
            # Guarantee the sibling is mid-execution when the failure
            # surfaces, so the drain (not just the cancel) is exercised.
            assert sibling_started.wait(timeout=5)
            raise RuntimeError("worker failure")

        tasks = [
            fail_once_sibling_runs,
            partial(slow, 0),
            partial(slow, 1),
            partial(slow, 2),
        ]
        with pytest.raises(RuntimeError, match="worker failure"):
            run_parallel(tasks, n_jobs=2, executor="thread")
        # The sibling submitted alongside the failing task (window of 2) was
        # drained before the raise; the unsubmitted tail never entered the
        # pool.
        drained = list(finished)
        assert drained == [0]
        time.sleep(0.4)
        assert finished == drained
        shutdown_executors()

    def test_pool_usable_after_task_exception(self):
        shutdown_executors()
        with pytest.raises(RuntimeError, match="worker failure"):
            run_parallel([_fail, _fail], n_jobs=2, executor="thread")
        # An ordinary task exception must not poison the cached pool.
        assert run_parallel(
            [partial(_square, value) for value in range(4)],
            n_jobs=2,
            executor="thread",
        ) == [0, 1, 4, 9]
        shutdown_executors()


class TestExperimentHelpers:
    @pytest.fixture(scope="class")
    def chip(self):
        return get_configuration("A")

    def test_single_experiment_matches_grid_entry(self, chip):
        single = run_single_experiment(chip, "xy-shift", 109.0, mode="steady", num_epochs=5)
        grid = run_experiment_grid(
            [chip], ["xy-shift"], [109.0], mode="steady", num_epochs=5
        )
        assert len(grid) == 1
        assert grid[0].settled_peak_celsius == single.settled_peak_celsius

    def test_grid_order_periods_fastest(self, chip):
        grid = run_experiment_grid(
            [chip], ["xy-shift", "rotation"], [109.0, 437.2], mode="steady", num_epochs=3
        )
        assert [(result.scheme_name, result.period_us) for result in grid] == [
            ("periodic-xy-shift", 109.0),
            ("periodic-xy-shift", 437.2),
            ("periodic-rotation", 109.0),
            ("periodic-rotation", 437.2),
        ]

    def test_parallel_sweep_matches_serial(self, chip):
        kwargs = {"periods_us": (109.0, 437.2), "mode": "steady", "num_epochs": 5}
        serial = run_period_sweep(chip, **kwargs)
        parallel = run_period_sweep(chip, n_jobs=2, executor="thread", **kwargs)
        assert [point.period_us for point in parallel.points] == [
            point.period_us for point in serial.points
        ]
        for expected, actual in zip(serial.points, parallel.points):
            assert actual.throughput_penalty == expected.throughput_penalty
            assert actual.settled_peak_celsius == expected.settled_peak_celsius
            assert actual.peak_reduction_celsius == expected.peak_reduction_celsius

    def test_parallel_ablation_matches_serial(self, chip):
        serial = run_energy_ablation(chip, num_epochs=5)
        parallel = run_energy_ablation(chip, num_epochs=5, n_jobs=2, executor="thread")
        assert (
            parallel.mean_temperature_penalty_celsius
            == serial.mean_temperature_penalty_celsius
        )
        assert (
            parallel.peak_temperature_penalty_celsius
            == serial.peak_temperature_penalty_celsius
        )

    def test_parallel_dtm_matches_serial(self, chip):
        serial = compare_with_migration(chip, num_epochs=5)
        parallel = compare_with_migration(chip, num_epochs=5, n_jobs=2, executor="thread")
        assert parallel.stop_go_penalty == serial.stop_go_penalty
        assert parallel.dvfs_penalty == serial.dvfs_penalty
        assert parallel.migration_penalty == serial.migration_penalty
