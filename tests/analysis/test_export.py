"""Tests for the result exporters."""

import csv
import json

import pytest

from repro.analysis.export import (
    experiment_result_to_dict,
    experiment_result_to_json,
    figure1_to_csv,
    figure1_to_json,
    period_sweep_to_csv,
)
from repro.analysis.report import generate_figure1
from repro.analysis.sweep import run_period_sweep
from repro.chips import get_configuration
from repro.core.experiment import ExperimentSettings, ThermalExperiment
from repro.core.policy import PeriodicMigrationPolicy


@pytest.fixture(scope="module")
def small_result():
    chip = get_configuration("A")
    policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
    settings = ExperimentSettings(num_epochs=9, mode="steady", settle_epochs=8)
    return ThermalExperiment(chip, policy, settings=settings).run()


@pytest.fixture(scope="module")
def small_figure1():
    return generate_figure1(
        configurations=[get_configuration("A")],
        schemes=("xy-shift", "rotation"),
        settings=ExperimentSettings(num_epochs=9, mode="steady", settle_epochs=8),
    )


class TestExperimentExport:
    def test_dict_round_trips_through_json(self, small_result):
        data = experiment_result_to_dict(small_result)
        text = json.dumps(data)
        assert json.loads(text)["configuration"] == "A"

    def test_epochs_included_and_excluded(self, small_result):
        with_epochs = experiment_result_to_dict(small_result, include_epochs=True)
        without_epochs = experiment_result_to_dict(small_result, include_epochs=False)
        assert len(with_epochs["epochs"]) == 9
        assert "epochs" not in without_epochs

    def test_json_written_to_file(self, small_result, tmp_path):
        path = tmp_path / "result.json"
        text = experiment_result_to_json(small_result, path=path)
        assert path.read_text() == text
        loaded = json.loads(path.read_text())
        assert loaded["scheme"] == "periodic-xy-shift"


class TestFigure1Export:
    def test_csv_has_one_row_per_cell(self, small_figure1, tmp_path):
        path = tmp_path / "figure1.csv"
        text = figure1_to_csv(small_figure1, path=path)
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 2
        assert rows[0]["configuration"] == "A"
        assert text.startswith("configuration,")

    def test_json_includes_aggregates(self, small_figure1):
        data = json.loads(figure1_to_json(small_figure1))
        assert data["best_scheme"] in ("xy-shift", "rotation")
        assert set(data["average_reduction_c"]) == {"xy-shift", "rotation"}
        assert data["period_us"] == 109.0


class TestSweepExport:
    def test_csv_rows_sorted_by_period(self, tmp_path):
        chip = get_configuration("A")
        sweep = run_period_sweep(
            chip, scheme="xy-shift", periods_us=(437.2, 109.0), mode="steady", num_epochs=9
        )
        path = tmp_path / "sweep.csv"
        period_sweep_to_csv(sweep, path=path)
        rows = list(csv.DictReader(path.open()))
        assert [float(row["period_us"]) for row in rows] == [109.0, 437.2]
        assert all(row["configuration"] == "A" for row in rows)
