"""Tests for the scenario suite runner and the comparison report."""

import pytest

from repro.analysis.report import ScenarioComparison, compare_scenarios
from repro.analysis.runner import ScenarioRunner
from repro.scenarios import get_scenario
from repro.scenarios.patterns import ConstantPattern
from repro.scenarios.spec import ScenarioSpec


def _tiny_spec(name: str, configuration: str = "A", **kwargs) -> ScenarioSpec:
    defaults = dict(
        scheme="xy-shift",
        mode="steady",
        num_epochs=5,
        settle_epochs=4,
        load=ConstantPattern(1.0),
    )
    defaults.update(kwargs)
    return ScenarioSpec(name=name, configuration=configuration, **defaults)


class TestScenarioRunner:
    def test_results_in_suite_order(self):
        specs = [_tiny_spec("first"), _tiny_spec("second", scheme="static")]
        results = ScenarioRunner().run(specs)
        assert [r.spec.name for r in results] == ["first", "second"]
        assert results[0].experiment.migrations_performed == 4
        assert results[1].experiment.migrations_performed == 0

    def test_thread_pool_matches_serial(self):
        specs = [_tiny_spec("a"), _tiny_spec("b", configuration="C")]
        serial = ScenarioRunner().run(specs)
        threaded = ScenarioRunner(n_jobs=2, executor="thread").run(specs)
        for s, t in zip(serial, threaded):
            assert t.spec.name == s.spec.name
            assert t.experiment.settled_peak_celsius == pytest.approx(
                s.experiment.settled_peak_celsius, abs=1e-12
            )

    def test_default_executor_is_thread(self):
        # The scenario hot paths release the GIL and share process-wide
        # caches; the honest perf record showed process fan-out losing on
        # small suites, so threads are the default.
        assert ScenarioRunner().executor == "thread"

    def test_feedback_stride_override(self):
        spec = _tiny_spec(
            "fb", scheme="threshold-xy-shift",
            policy_params={"trigger_celsius": 70.0},
        )
        assert spec.feedback_stride == 1
        results = ScenarioRunner(
            feedback_stride=5, feedback_predictor="previous"
        ).run([spec])
        assert results[0].spec.feedback_stride == 5
        assert results[0].spec.feedback_predictor == "previous"
        # The authored spec is untouched (specs are frozen; the override
        # replaces per task).
        assert spec.feedback_stride == 1

    def test_no_override_leaves_specs_as_authored(self):
        spec = _tiny_spec("plain")
        runner = ScenarioRunner()
        assert runner._apply_overrides(spec) is spec


class TestScenarioComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_scenarios([_tiny_spec("cool"), _tiny_spec("warm", configuration="C")])

    def test_rows_carry_all_scenarios(self, comparison):
        rows = comparison.to_rows()
        assert [row["scenario"] for row in rows] == ["cool", "warm"]
        for row in rows:
            assert {"settled_peak_c", "reduction_c", "migrations"} <= set(row)

    def test_lookup_and_names(self, comparison):
        assert comparison.names() == ["cool", "warm"]
        assert comparison.result("warm").spec.configuration == "C"
        with pytest.raises(KeyError):
            comparison.result("missing")

    def test_hottest_scenario(self, comparison):
        hottest = comparison.hottest_scenario()
        peaks = {
            entry.spec.name: entry.experiment.settled_peak_celsius
            for entry in comparison.results
        }
        assert peaks[hottest] == max(peaks.values())

    def test_format_table_mentions_everything(self, comparison):
        table = comparison.format_table()
        assert "cool" in table and "warm" in table
        assert "hottest" in table

    def test_registry_default_uses_named_scenario(self):
        comparison = compare_scenarios([get_scenario("steady-baseline")])
        assert comparison.names() == ["steady-baseline"]

    def test_empty_comparison_renders_and_guards(self):
        empty = ScenarioComparison(results=[])
        assert "no scenarios" in empty.format_table()
        with pytest.raises(ValueError, match="no scenarios"):
            empty.hottest_scenario()


class TestStreamingRunner:
    def test_streamed_suite_matches_batch(self):
        from repro.analysis.runner import run_streaming_scenario

        spec = _tiny_spec("streamed")
        batch = ScenarioRunner().run([spec])[0]
        streamed = run_streaming_scenario(spec, window_epochs=2)
        assert streamed.windows == 3  # 5 epochs in 2-epoch windows
        assert streamed.summary["epochs"] == 5
        assert streamed.experiment.settled_peak_celsius == pytest.approx(
            batch.experiment.settled_peak_celsius, abs=1e-9
        )
        assert (
            streamed.experiment.migrations_performed
            == batch.experiment.migrations_performed
        )

    def test_run_streaming_suite_order_and_overrides(self):
        specs = [_tiny_spec("first"), _tiny_spec("second", configuration="C")]
        results = ScenarioRunner().run_streaming(specs, window_epochs=3)
        assert [r.spec.name for r in results] == ["first", "second"]
        assert all(r.windows == 2 for r in results)

    def test_max_epochs_caps_the_stream(self):
        from repro.analysis.runner import run_streaming_scenario

        streamed = run_streaming_scenario(
            _tiny_spec("capped"), window_epochs=2, max_epochs=4
        )
        assert streamed.windows == 2
        assert streamed.summary["epochs"] == 4
