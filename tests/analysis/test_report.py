"""Tests for the Figure 1 report generator."""

import pytest

from repro.analysis.report import (
    Figure1Report,
    generate_figure1,
    run_figure1_cell,
    table1_rows,
)
from repro.chips import get_configuration
from repro.core.experiment import ExperimentSettings


FAST = ExperimentSettings(num_epochs=21, mode="steady", settle_epochs=20)


@pytest.fixture(scope="module")
def small_report():
    """Figure 1 restricted to configurations A and E and two schemes."""
    configurations = [get_configuration("A"), get_configuration("E")]
    return generate_figure1(
        configurations=configurations,
        schemes=("rotation", "xy-shift"),
        period_us=109.0,
        settings=FAST,
    )


class TestFigure1Report:
    def test_cell_count(self, small_report):
        assert len(small_report.cells) == 4

    def test_lookup(self, small_report):
        value = small_report.reduction("A", "xy-shift")
        assert isinstance(value, float)
        with pytest.raises(KeyError):
            small_report.reduction("Z", "xy-shift")

    def test_schemes_and_configurations_ordered(self, small_report):
        assert small_report.schemes() == ["rotation", "xy-shift"]
        assert small_report.configurations() == ["A", "E"]

    def test_average_reduction(self, small_report):
        avg = small_report.average_reduction("xy-shift")
        values = [c.reduction_celsius for c in small_report.cells if c.scheme == "xy-shift"]
        assert avg == pytest.approx(sum(values) / len(values))
        with pytest.raises(KeyError):
            small_report.average_reduction("warp")

    def test_best_scheme_is_xy_shift(self, small_report):
        """The paper's headline: X-Y shift has the highest average reduction."""
        assert small_report.best_scheme() == "xy-shift"

    def test_rows_and_table_formatting(self, small_report):
        rows = small_report.to_rows()
        assert len(rows) == 4
        assert {"configuration", "scheme", "reduction_c"} <= set(rows[0])
        table = small_report.format_table()
        assert "xy-shift" in table
        assert "A(85.44)" in table

    def test_baseline_peaks_match_paper(self, small_report):
        assert small_report._baseline("A") == pytest.approx(85.44, abs=0.01)
        assert small_report._baseline("E") == pytest.approx(75.98, abs=0.01)


class TestSingleCell:
    def test_run_figure1_cell(self, chip_a):
        result = run_figure1_cell(chip_a, "xy-shift", period_us=109.0, settings=FAST)
        assert result.configuration_name == "A"
        assert result.scheme_name == "periodic-xy-shift"
        assert result.peak_reduction_celsius > 0


class TestTable1:
    def test_rows_match_paper(self):
        rows = table1_rows(mesh_size=4)
        by_operation = {row["operation"]: row for row in rows}
        assert by_operation["Rotation"]["new_x"] == "4-1-Y"
        assert by_operation["Rotation"]["new_y"] == "X"
        assert by_operation["X Mirroring"]["new_x"] == "4-1-X"
        assert by_operation["X Mirroring"]["new_y"] == "Y"
        assert by_operation["X Translation"]["new_x"] == "X + Offset"
        assert by_operation["X Translation"]["new_y"] == "Y"
