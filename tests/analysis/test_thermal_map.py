"""Tests for the ASCII map rendering helpers."""

import pytest

from repro.analysis.thermal_map import difference_map, render_grid, render_heat_bar, to_csv


@pytest.fixture
def values4(mesh4):
    return {coord: float(coord[0] + 10 * coord[1]) for coord in mesh4.coordinates()}


class TestRenderGrid:
    def test_contains_all_values(self, mesh4, values4):
        text = render_grid(mesh4, values4, title="test", unit="C")
        assert "test (C)" in text
        assert "33.00" in text  # value at (3, 3)

    def test_row_order_top_down(self, mesh4, values4):
        text = render_grid(mesh4, values4)
        lines = text.splitlines()
        # First printed row is y = 3 (values 30..33), last is y = 0.
        assert "30.00" in lines[0]
        assert "0.00" in lines[-1]

    def test_missing_value_rejected(self, mesh4, values4):
        values4.pop((1, 1))
        with pytest.raises(ValueError):
            render_grid(mesh4, values4)


class TestHeatBar:
    def test_one_character_per_pe(self, mesh4, values4):
        art = render_heat_bar(mesh4, values4)
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 4 for line in lines)

    def test_hottest_uses_densest_character(self, mesh4, values4):
        levels = " .:-=+*#%@"
        art = render_heat_bar(mesh4, values4, levels=levels)
        assert "@" in art.splitlines()[0]  # hottest row printed first

    def test_flat_map_does_not_crash(self, mesh4):
        flat = {coord: 1.0 for coord in mesh4.coordinates()}
        art = render_heat_bar(mesh4, flat)
        assert len(art.splitlines()) == 4


class TestCsvAndDifference:
    def test_csv_row_count(self, mesh4, values4):
        csv_text = to_csv(mesh4, values4, value_name="temp")
        lines = csv_text.strip().splitlines()
        assert lines[0] == "x,y,temp"
        assert len(lines) == 1 + 16

    def test_difference_map(self, mesh4, values4):
        doubled = {coord: 2 * value for coord, value in values4.items()}
        diff = difference_map(doubled, values4)
        assert diff == values4

    def test_difference_map_mismatched_keys(self, values4):
        other = dict(values4)
        other.pop((0, 0))
        with pytest.raises(ValueError):
            difference_map(values4, other)
