"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.configuration == "A"
        assert args.scheme == "xy-shift"
        assert args.period == 109.0

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestChipsCommand:
    def test_lists_all_configurations(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        for name in ("A", "B", "C", "D", "E"):
            assert name in out
        assert "85.44" in out

    def test_csv_output(self, capsys):
        assert main(["--csv", "chips"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("configuration,")
        assert len(out.strip().splitlines()) == 6


class TestExperimentCommand:
    def test_runs_small_experiment(self, capsys):
        code = main(
            ["experiment", "-c", "A", "-s", "xy-shift", "--epochs", "11"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak reduction (C)" in out
        assert "throughput penalty (%)" in out

    def test_static_policy(self, capsys):
        assert main(["experiment", "-c", "C", "-s", "static", "--epochs", "5"]) == 0
        out = capsys.readouterr().out
        assert "migrations" in out

    def test_no_migration_energy_flag(self, capsys):
        code = main(
            [
                "experiment",
                "-c",
                "A",
                "-s",
                "rotation",
                "--epochs",
                "9",
                "--no-migration-energy",
            ]
        )
        assert code == 0

    def test_grid_model_flag(self, capsys):
        code = main(
            ["experiment", "-c", "A", "-s", "xy-shift", "--epochs", "7", "--grid", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak reduction (C)" in out


class TestSweepCommand:
    def test_custom_periods(self, capsys):
        code = main(
            ["sweep", "-c", "A", "-s", "xy-shift", "--epochs", "11",
             "--periods", "109", "436"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "109" in out and "436" in out


class TestAblationCommand:
    def test_reports_energy_penalty(self, capsys):
        assert main(["ablation", "-c", "E", "-s", "rotation", "--epochs", "11"]) == 0
        out = capsys.readouterr().out
        assert "migration energy" in out


class TestDtmCommand:
    def test_compares_three_techniques(self, capsys):
        assert main(["dtm", "-c", "A", "--epochs", "11"]) == 0
        out = capsys.readouterr().out
        assert "runtime reconfiguration" in out
        assert "stop-go" in out
        assert "DVFS" in out


class TestFigure1Command:
    def test_subset_of_configurations(self, capsys):
        assert main(["figure1", "-C", "A"]) == 0
        out = capsys.readouterr().out
        assert "A(85.44)" in out
        assert "best scheme" in out

    def test_csv(self, capsys):
        assert main(["--csv", "figure1", "-C", "A"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("configuration,")
