"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.configuration == "A"
        assert args.scheme == "xy-shift"
        assert args.period == 109.0

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestChipsCommand:
    def test_lists_all_configurations(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        for name in ("A", "B", "C", "D", "E"):
            assert name in out
        assert "85.44" in out

    def test_csv_output(self, capsys):
        assert main(["--csv", "chips"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("configuration,")
        assert len(out.strip().splitlines()) == 6


class TestExperimentCommand:
    def test_runs_small_experiment(self, capsys):
        code = main(
            ["experiment", "-c", "A", "-s", "xy-shift", "--epochs", "11"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak reduction (C)" in out
        assert "throughput penalty (%)" in out

    def test_static_policy(self, capsys):
        assert main(["experiment", "-c", "C", "-s", "static", "--epochs", "5"]) == 0
        out = capsys.readouterr().out
        assert "migrations" in out

    def test_feedback_stride_flag(self, capsys):
        code = main(
            ["experiment", "-c", "A", "-s", "adaptive", "--epochs", "9",
             "--feedback-stride", "3", "--feedback-predictor", "previous"]
        )
        assert code == 0
        assert "migrations" in capsys.readouterr().out

    def test_no_migration_energy_flag(self, capsys):
        code = main(
            [
                "experiment",
                "-c",
                "A",
                "-s",
                "rotation",
                "--epochs",
                "9",
                "--no-migration-energy",
            ]
        )
        assert code == 0

    def test_grid_model_flag(self, capsys):
        code = main(
            ["experiment", "-c", "A", "-s", "xy-shift", "--epochs", "7", "--grid", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak reduction (C)" in out


class TestSweepCommand:
    def test_custom_periods(self, capsys):
        code = main(
            ["sweep", "-c", "A", "-s", "xy-shift", "--epochs", "11",
             "--periods", "109", "436"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "109" in out and "436" in out


class TestAblationCommand:
    def test_reports_energy_penalty(self, capsys):
        assert main(["ablation", "-c", "E", "-s", "rotation", "--epochs", "11"]) == 0
        out = capsys.readouterr().out
        assert "migration energy" in out


class TestDtmCommand:
    def test_compares_three_techniques(self, capsys):
        assert main(["dtm", "-c", "A", "--epochs", "11"]) == 0
        out = capsys.readouterr().out
        assert "runtime reconfiguration" in out
        assert "stop-go" in out
        assert "DVFS" in out


class TestFigure1Command:
    def test_subset_of_configurations(self, capsys):
        assert main(["figure1", "-C", "A"]) == 0
        out = capsys.readouterr().out
        assert "A(85.44)" in out
        assert "best scheme" in out

    def test_csv(self, capsys):
        assert main(["--csv", "figure1", "-C", "A"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("configuration,")


class TestScenarioCommand:
    def test_list_names_all_scenarios(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_named_scenario(self, capsys):
        assert main(["scenario", "run", "steady-baseline"]) == 0
        out = capsys.readouterr().out
        assert "settled peak (C)" in out
        assert "migrations" in out

    def test_run_requires_name_or_spec(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run"])

    def test_show_spec_prints_json(self, capsys):
        assert main(["scenario", "run", "diurnal-load", "--show-spec"]) == 0
        out = capsys.readouterr().out
        assert '"kind": "diurnal"' in out

    def test_run_spec_file(self, capsys, tmp_path):
        from repro.scenarios import get_scenario

        spec_file = tmp_path / "scenario.json"
        spec_file.write_text(get_scenario("steady-baseline").to_json())
        assert main(["scenario", "run", "--spec", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "settled peak (C)" in out

    def test_compare_selected_scenarios(self, capsys):
        code = main(
            ["--csv", "scenario", "compare", "steady-baseline", "duty-cycle-idle"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("scenario,")
        assert "steady-baseline" in out and "duty-cycle-idle" in out

    def test_run_feedback_scenario(self, capsys):
        assert main(["scenario", "run", "threshold-under-burst"]) == 0
        out = capsys.readouterr().out
        assert "migrations" in out

    def test_feedback_stride_override_shows_in_spec(self, capsys):
        code = main(
            ["scenario", "run", "adaptive-diurnal", "--feedback-stride", "8",
             "--show-spec"]
        )
        assert code == 0
        assert '"feedback_stride": 8' in capsys.readouterr().out

    def test_unknown_scenario_is_clean_error(self, capsys):
        assert main(["scenario", "run", "frobnicate"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_missing_spec_file_is_clean_error(self, capsys, tmp_path):
        assert main(["scenario", "run", "--spec", str(tmp_path / "nope.json")]) == 1
        assert capsys.readouterr().err.strip() != ""


class TestCampaignCommand:
    SPEC = {
        "name": "cli-demo",
        "scenarios": [
            {
                "name": "cheap",
                "configuration": "A",
                "scheme": "xy-shift",
                "mode": "steady",
                "num_epochs": 6,
                "settle_epochs": 3,
            }
        ],
        "configurations": ["A", "B"],
    }

    def _spec_file(self, tmp_path):
        import json

        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self.SPEC))
        return str(path)

    def test_dry_run_forecasts_without_touching_disk(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        directory = tmp_path / "camp"
        code = main(
            ["campaign", "run", "-S", spec, "-d", str(directory), "--dry-run"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "would_evaluate" in out
        assert "cheap@A/xy-shift/fs1/euler" in out
        assert not directory.exists()

    def test_run_then_warm_rerun_then_report(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        directory = str(tmp_path / "camp")
        assert main(["campaign", "run", "-S", spec, "-d", directory]) == 0
        out = capsys.readouterr().out
        assert "evaluated" in out and "configuration" in out
        assert main(["campaign", "run", "-S", spec, "-d", directory]) == 0
        # Warm: everything replays from the journal.
        assert main(["--csv", "campaign", "status", "-d", directory]) == 0
        csv_out = capsys.readouterr().out.splitlines()[-1]
        assert ",2,2,0," in csv_out
        assert main(["campaign", "report", "-d", directory]) == 0
        assert "mean_peak_c" in capsys.readouterr().out

    def test_list_summarises_campaign_roots(self, capsys, tmp_path):
        spec = self._spec_file(tmp_path)
        root = tmp_path / "campaigns"
        assert main(["campaign", "run", "-S", spec, "-d", str(root / "one")]) == 0
        capsys.readouterr()
        assert main(["campaign", "list", "--root", str(root)]) == 0
        assert "cli-demo" in capsys.readouterr().out

    def test_list_without_campaigns_is_clean_error(self, capsys, tmp_path):
        assert main(["campaign", "list", "--root", str(tmp_path)]) == 1
        assert "no campaign directories" in capsys.readouterr().err

    def test_missing_spec_file_is_clean_error(self, capsys, tmp_path):
        code = main(
            ["campaign", "run", "-S", str(tmp_path / "nope.json"),
             "-d", str(tmp_path / "camp")]
        )
        assert code == 1
        assert "cannot load campaign spec" in capsys.readouterr().err

    def test_report_before_run_is_clean_error(self, capsys, tmp_path):
        assert main(["campaign", "report", "-d", str(tmp_path)]) == 1
        assert "no report.json" in capsys.readouterr().err


class TestPerfTrendCommand:
    PAYLOAD = {
        "schema": 2,
        "hot_paths": {"x.y": {"wall_s": 0.01}},
        "history": [
            {
                "git_sha": "aaa111",
                "timestamp_utc": "2026-01-01T00:00:00Z",
                "hot_paths": {
                    "x.y": {"wall_s": 0.02, "throughput": 50.0,
                            "throughput_unit": "items/s"}
                },
            },
            {
                "git_sha": "bbb222",
                "timestamp_utc": "2026-02-01T00:00:00Z",
                "hot_paths": {"x.y": {"wall_s": 0.01, "speedup": 2.0}},
            },
        ],
    }

    def test_renders_history(self, capsys, tmp_path):
        import json

        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert main(["perf-trend", "--path", str(path)]) == 0
        out = capsys.readouterr().out
        assert "x.y" in out
        assert "aaa111" in out and "bbb222" in out
        assert "-50%" in out  # 20 ms -> 10 ms between snapshots

    def test_missing_file_is_an_error(self, capsys, tmp_path):
        assert main(["perf-trend", "--path", str(tmp_path / "nope.json")]) == 1
        assert "run `pytest benchmarks/`" in capsys.readouterr().err

    def test_benchmark_filter_unknown(self, capsys, tmp_path):
        import json

        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert main(["perf-trend", "--path", str(path), "-b", "zzz"]) == 1
        assert "no benchmark matching" in capsys.readouterr().err

    def test_csv_rows(self, capsys, tmp_path):
        import json

        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps(self.PAYLOAD))
        assert main(["--csv", "perf-trend", "--path", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("benchmark,")


class TestServeCommand:
    def test_scenario_stream_emits_jsonl(self, capsys):
        assert main(["serve", "steady-baseline", "--window", "20"]) == 0
        import json as _json

        lines = [
            _json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        updates, final = lines[:-1], lines[-1]
        assert [u["start_epoch"] for u in updates] == [0, 20, 40]
        assert updates[-1]["epochs"] == 41  # cumulative rolling count
        assert final["final"] is True
        assert final["migrations"] == updates[-1]["migrations"]

    def test_max_epochs_caps_scenario_stream(self, capsys):
        assert main(["serve", "steady-baseline", "--window", "4",
                     "--max-epochs", "8"]) == 0
        import json as _json

        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # two windows + the final record
        assert _json.loads(lines[1])["epochs"] == 8

    def test_checkpoint_resume_skips_completed_epochs(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ck")
        assert main(["serve", "steady-baseline", "--window", "10",
                     "--max-epochs", "20", "--checkpoint", ckpt]) == 0
        first = capsys.readouterr().out.strip().splitlines()
        assert len(first) == 3
        # Re-serving the same stream finds everything checkpointed.
        assert main(["serve", "steady-baseline", "--window", "10",
                     "--max-epochs", "20", "--checkpoint", ckpt]) == 0
        second = capsys.readouterr().out.strip().splitlines()
        assert len(second) == 1  # only the final record
        assert second[0] == first[-1]

    def test_jsonl_input_stream(self, tmp_path, capsys):
        from repro.stream import EpochWindow

        path = tmp_path / "windows.jsonl"
        path.write_text(
            "\n".join(
                EpochWindow(
                    num_epochs=4,
                    start_epoch=4 * index,
                    load_modulation=[1.0, 0.9, 1.1, 1.0],
                ).to_json_line()
                for index in range(3)
            )
            + "\n"
        )
        assert main(["serve", "--input", str(path), "-c", "A",
                     "-s", "xy-shift", "--settled", "4"]) == 0
        import json as _json

        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 4
        assert _json.loads(lines[-1])["final"] is True

    def test_name_and_input_are_exclusive(self, capsys):
        assert main(["serve", "steady-baseline", "--input", "x.jsonl"]) == 1
        assert "not both" in capsys.readouterr().err

    def test_needs_a_source(self, capsys):
        assert main(["serve"]) == 1
        assert "needs a scenario NAME or --input" in capsys.readouterr().err

    def test_unknown_scenario_is_one_line_error(self, capsys):
        assert main(["serve", "no-such-scenario"]) == 1
        assert capsys.readouterr().err.strip()

    def test_threshold_scheme_takes_trigger(self, tmp_path, capsys):
        from repro.stream import EpochWindow

        path = tmp_path / "windows.jsonl"
        path.write_text(EpochWindow(num_epochs=4).to_json_line() + "\n")
        assert main(["serve", "--input", str(path),
                     "-s", "threshold-xy-shift", "--trigger", "90",
                     "--settled", "4"]) == 0
        import json as _json

        out = capsys.readouterr().out.strip().splitlines()
        assert _json.loads(out[-1])["final"] is True

    def test_threshold_scheme_without_trigger_is_one_line_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "windows.jsonl"
        path.write_text('{"num_epochs": 4}\n')
        assert main(["serve", "--input", str(path),
                     "-s", "threshold-xy-shift"]) == 1
        assert "--trigger" in capsys.readouterr().err
