"""Tests for activity maps and the analytic route-based flit estimator."""

import pytest

from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.routing import XYRouting
from repro.power.activity import (
    ActivityMap,
    UnitActivity,
    activity_from_simulation,
    analytic_router_flits,
)


class TestUnitActivity:
    def test_merge(self):
        a = UnitActivity(computation_ops=10, router_flits=5, extra_energy_j=1e-9)
        b = UnitActivity(computation_ops=2, router_flits=3, extra_energy_j=1e-9)
        merged = a.merge(b)
        assert merged.computation_ops == 12
        assert merged.router_flits == 8
        assert merged.extra_energy_j == pytest.approx(2e-9)


class TestActivityMap:
    def test_starts_empty_for_all_nodes(self, mesh4):
        amap = ActivityMap(mesh4)
        assert len(amap.units) == 16
        assert amap.total_computation_ops() == 0

    def test_accumulation(self, mesh4):
        amap = ActivityMap(mesh4)
        amap.add_computation((1, 1), 100)
        amap.add_computation((1, 1), 50)
        amap.add_router_flits((2, 2), 7)
        amap.add_energy((0, 0), 1e-6)
        assert amap.units[(1, 1)].computation_ops == 150
        assert amap.units[(2, 2)].router_flits == 7
        assert amap.units[(0, 0)].extra_energy_j == pytest.approx(1e-6)

    def test_rejects_outside_coordinates(self, mesh4):
        amap = ActivityMap(mesh4)
        with pytest.raises(ValueError):
            amap.add_computation((9, 9), 1)
        with pytest.raises(ValueError):
            amap.add_router_flits((-1, 0), 1)

    def test_merge_same_topology(self, mesh4):
        a = ActivityMap(mesh4)
        b = ActivityMap(mesh4)
        a.add_computation((0, 0), 5)
        b.add_computation((0, 0), 3)
        merged = a.merge(b)
        assert merged.units[(0, 0)].computation_ops == 8

    def test_merge_different_topology_rejected(self, mesh4, mesh5):
        with pytest.raises(ValueError):
            ActivityMap(mesh4).merge(ActivityMap(mesh5))

    def test_as_arrays_row_major(self, mesh4):
        amap = ActivityMap(mesh4)
        amap.add_computation((1, 0), 42)
        ops, flits, energy = amap.as_arrays()
        assert ops[mesh4.node_id((1, 0))] == 42
        assert ops.shape == (16,)


class TestAnalyticRouterFlits:
    def test_single_flow_charges_route(self, mesh4):
        flows = {((0, 0), (3, 0)): 10.0}
        per_router = analytic_router_flits(mesh4, flows)
        for hop in [(0, 0), (1, 0), (2, 0), (3, 0)]:
            assert per_router[hop] == 10.0
        assert per_router[(0, 1)] == 0.0

    def test_zero_flow_ignored(self, mesh4):
        per_router = analytic_router_flits(mesh4, {((0, 0), (1, 1)): 0.0})
        assert sum(per_router.values()) == 0.0

    def test_negative_flow_rejected(self, mesh4):
        with pytest.raises(ValueError):
            analytic_router_flits(mesh4, {((0, 0), (1, 1)): -5.0})

    def test_total_equals_flits_times_path_length(self, mesh4):
        flows = {((0, 0), (2, 2)): 4.0}
        per_router = analytic_router_flits(mesh4, flows)
        # XY path 0,0 -> 2,2 has 5 routers.
        assert sum(per_router.values()) == pytest.approx(4.0 * 5)

    def test_matches_simulation_for_single_packet(self, mesh4):
        """The analytic estimator and the cycle-accurate simulator agree on
        which routers a flow's flits visit."""
        network = Network(mesh4)
        packet = Packet(source=(0, 0), destination=(2, 1), size_flits=4)
        network.inject(packet)
        network.drain()
        simulated = {
            coord: activity.flits_routed
            for coord, activity in network.router_activity().items()
        }
        analytic = analytic_router_flits(mesh4, {((0, 0), (2, 1)): 4.0})
        for coord in mesh4.coordinates():
            assert simulated[coord] == pytest.approx(analytic[coord])


class TestActivityFromSimulation:
    def test_collects_router_counters(self, mesh4):
        network = Network(mesh4)
        network.inject(Packet(source=(0, 0), destination=(3, 3), size_flits=2))
        network.drain()
        amap = activity_from_simulation(
            mesh4, network.router_activity(), computation_ops={(0, 0): 99.0}
        )
        assert amap.units[(0, 0)].computation_ops == 99.0
        assert amap.total_router_flits() > 0
