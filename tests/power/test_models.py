"""Tests for the PE/router/unit power models."""

import pytest

from repro.noc.router import RouterActivity
from repro.power.library import TechnologyLibrary
from repro.power.models import PePowerModel, RouterPowerModel, UnitPowerModel


@pytest.fixture
def library():
    return TechnologyLibrary()


class TestPePowerModel:
    def test_dynamic_power_proportional_to_rate(self, library):
        model = PePowerModel(library)
        assert model.dynamic_power(2e9) == pytest.approx(2 * model.dynamic_power(1e9))

    def test_zero_activity_gives_leakage_only(self, library):
        model = PePowerModel(library)
        assert model.power(0.0, interval_s=1e-3) == pytest.approx(model.leakage_power())

    def test_leakage_scales_with_area_fraction(self, library):
        big = PePowerModel(library, area_fraction=1.0)
        small = PePowerModel(library, area_fraction=0.5)
        assert small.leakage_power() == pytest.approx(0.5 * big.leakage_power())

    def test_energy_is_power_times_time(self, library):
        model = PePowerModel(library)
        assert model.energy(1e6, 1e-3) == pytest.approx(model.power(1e6, 1e-3) * 1e-3)

    def test_negative_rate_rejected(self, library):
        with pytest.raises(ValueError):
            PePowerModel(library).dynamic_power(-1.0)

    def test_invalid_interval_rejected(self, library):
        with pytest.raises(ValueError):
            PePowerModel(library).power(10, interval_s=0.0)

    def test_invalid_area_fraction(self, library):
        with pytest.raises(ValueError):
            PePowerModel(library, area_fraction=0.0)


class TestRouterPowerModel:
    def test_energy_from_activity(self, library):
        model = RouterPowerModel(library)
        activity = RouterActivity(
            buffer_reads=3, buffer_writes=3, crossbar_traversals=3, link_traversals=2
        )
        expected = 9 * library.router_energy_per_flit_j / 3.0 + 2 * library.link_energy_per_flit_j
        assert model.energy_from_activity(activity) == pytest.approx(expected)

    def test_energy_from_flits_default_links(self, library):
        model = RouterPowerModel(library)
        energy = model.energy_from_flits(10)
        expected = 10 * (library.router_energy_per_flit_j + library.link_energy_per_flit_j)
        assert energy == pytest.approx(expected)

    def test_idle_activity_zero_dynamic(self, library):
        model = RouterPowerModel(library)
        assert model.energy_from_activity(RouterActivity()) == 0.0

    def test_power_includes_leakage(self, library):
        model = RouterPowerModel(library)
        power = model.power_from_activity(RouterActivity(), interval_s=1e-3)
        assert power == pytest.approx(model.leakage_power())

    def test_negative_flits_rejected(self, library):
        with pytest.raises(ValueError):
            RouterPowerModel(library).energy_from_flits(-1)


class TestUnitPowerModel:
    def test_idle_power_is_total_leakage(self, library):
        unit = UnitPowerModel(library)
        expected = library.unit_leakage_power_w
        assert unit.idle_power() == pytest.approx(expected)

    def test_unit_power_monotone_in_activity(self, library):
        unit = UnitPowerModel(library)
        low = unit.unit_power(1e4, 100, interval_s=1e-3)
        high = unit.unit_power(1e6, 10000, interval_s=1e-3)
        assert high > low

    def test_extra_energy_amortised(self, library):
        unit = UnitPowerModel(library)
        base = unit.unit_power(0, 0, interval_s=1e-3)
        extra = unit.unit_power(0, 0, interval_s=1e-3, extra_energy_j=1e-6)
        assert extra - base == pytest.approx(1e-3)

    def test_invalid_interval(self, library):
        with pytest.raises(ValueError):
            UnitPowerModel(library).unit_power(0, 0, interval_s=0)

    def test_realistic_pe_power_range(self, library):
        # A PE updating ~1e8-1e9 edge-operations per second at 160 nm should
        # land between tens of milliwatts and a handful of watts, the range
        # the paper's chips imply.
        unit = UnitPowerModel(library)
        power = unit.unit_power(1e6, 5e4, interval_s=1e-3)
        assert 0.01 < power < 20.0
