"""Tests for power traces."""

import numpy as np
import pytest

from repro.power.trace import PowerSample, PowerTrace


class TestPowerSample:
    def test_totals(self, mesh4, uniform_power4):
        sample = PowerSample(duration_s=1e-3, power_w=uniform_power4)
        assert sample.total_power_w == pytest.approx(32.0)
        assert sample.peak_power_w == pytest.approx(2.0)
        assert sample.energy_j == pytest.approx(32.0 * 1e-3)

    def test_rejects_bad_duration(self, uniform_power4):
        with pytest.raises(ValueError):
            PowerSample(duration_s=0.0, power_w=uniform_power4)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            PowerSample(duration_s=1.0, power_w={(0, 0): -1.0})

    def test_as_vector(self, mesh4):
        sample = PowerSample(duration_s=1.0, power_w={(1, 0): 3.0})
        vector = sample.as_vector(mesh4)
        assert vector[mesh4.node_id((1, 0))] == 3.0
        assert vector.sum() == pytest.approx(3.0)


class TestPowerTrace:
    def test_append_and_totals(self, mesh4, uniform_power4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1e-3, uniform_power4)
        trace.add_interval(2e-3, {coord: 1.0 for coord in mesh4.coordinates()})
        assert len(trace) == 2
        assert trace.total_duration_s == pytest.approx(3e-3)
        assert trace.total_energy_j == pytest.approx(32e-3 + 32e-3)
        assert trace.average_power_w == pytest.approx((32e-3 + 32e-3) / 3e-3)

    def test_empty_trace(self, mesh4):
        trace = PowerTrace(mesh4)
        assert trace.total_duration_s == 0.0
        assert trace.average_power_w == 0.0
        assert trace.peak_unit_power() == 0.0

    def test_average_power_per_unit_time_weighted(self, mesh4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1.0, {(0, 0): 4.0})
        trace.add_interval(3.0, {(0, 0): 0.0})
        averages = trace.average_power_per_unit()
        assert averages[(0, 0)] == pytest.approx(1.0)

    def test_as_matrix_shapes(self, mesh4, uniform_power4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1e-3, uniform_power4)
        trace.add_interval(1e-3, uniform_power4)
        durations, powers = trace.as_matrix()
        assert durations.shape == (2,)
        assert powers.shape == (2, 16)

    def test_iteration(self, mesh4, uniform_power4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1e-3, uniform_power4)
        samples = list(trace)
        assert len(samples) == 1
        assert isinstance(samples[0], PowerSample)

    def test_peak_unit_power(self, mesh4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1.0, {(0, 0): 1.0, (1, 1): 5.0})
        trace.add_interval(1.0, {(2, 2): 3.0})
        assert trace.peak_unit_power() == 5.0
