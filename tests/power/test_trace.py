"""Tests for power traces."""

import numpy as np
import pytest

from repro.power.trace import PowerSample, PowerTrace, map_to_vector, vector_to_map


class TestPowerSample:
    def test_totals(self, mesh4, uniform_power4):
        sample = PowerSample(duration_s=1e-3, power_w=uniform_power4)
        assert sample.total_power_w == pytest.approx(32.0)
        assert sample.peak_power_w == pytest.approx(2.0)
        assert sample.energy_j == pytest.approx(32.0 * 1e-3)

    def test_rejects_bad_duration(self, uniform_power4):
        with pytest.raises(ValueError):
            PowerSample(duration_s=0.0, power_w=uniform_power4)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            PowerSample(duration_s=1.0, power_w={(0, 0): -1.0})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_duration(self, bad, uniform_power4):
        # NaN passes a `<= 0` gate (all comparisons are False), so the
        # validation must check finiteness explicitly.
        with pytest.raises(ValueError, match="positive and finite"):
            PowerSample(duration_s=bad, power_w=uniform_power4)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite_power(self, bad):
        with pytest.raises(ValueError, match="non-finite or negative"):
            PowerSample(duration_s=1.0, power_w={(0, 0): 1.0, (1, 1): bad})

    def test_as_vector(self, mesh4):
        sample = PowerSample(duration_s=1.0, power_w={(1, 0): 3.0})
        vector = sample.as_vector(mesh4)
        assert vector[mesh4.node_id((1, 0))] == 3.0
        assert vector.sum() == pytest.approx(3.0)


class TestPowerTrace:
    def test_append_and_totals(self, mesh4, uniform_power4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1e-3, uniform_power4)
        trace.add_interval(2e-3, {coord: 1.0 for coord in mesh4.coordinates()})
        assert len(trace) == 2
        assert trace.total_duration_s == pytest.approx(3e-3)
        assert trace.total_energy_j == pytest.approx(32e-3 + 32e-3)
        assert trace.average_power_w == pytest.approx((32e-3 + 32e-3) / 3e-3)

    def test_empty_trace(self, mesh4):
        trace = PowerTrace(mesh4)
        assert trace.total_duration_s == 0.0
        assert trace.average_power_w == 0.0
        assert trace.peak_unit_power() == 0.0

    def test_average_power_per_unit_time_weighted(self, mesh4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1.0, {(0, 0): 4.0})
        trace.add_interval(3.0, {(0, 0): 0.0})
        averages = trace.average_power_per_unit()
        assert averages[(0, 0)] == pytest.approx(1.0)

    def test_as_matrix_shapes(self, mesh4, uniform_power4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1e-3, uniform_power4)
        trace.add_interval(1e-3, uniform_power4)
        durations, powers = trace.as_matrix()
        assert durations.shape == (2,)
        assert powers.shape == (2, 16)

    def test_iteration(self, mesh4, uniform_power4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1e-3, uniform_power4)
        samples = list(trace)
        assert len(samples) == 1
        assert isinstance(samples[0], PowerSample)

    def test_peak_unit_power(self, mesh4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1.0, {(0, 0): 1.0, (1, 1): 5.0})
        trace.add_interval(1.0, {(2, 2): 3.0})
        assert trace.peak_unit_power() == 5.0


class TestArrayNativeTrace:
    def test_from_arrays_round_trip(self, mesh4):
        durations = np.array([1e-3, 2e-3, 3e-3])
        powers = np.arange(3 * 16, dtype=float).reshape(3, 16)
        trace = PowerTrace.from_arrays(mesh4, durations, powers)
        assert len(trace) == 3
        out_durations, out_powers = trace.as_matrix()
        assert np.array_equal(out_durations, durations)
        assert np.array_equal(out_powers, powers)

    def test_from_arrays_validation(self, mesh4):
        with pytest.raises(ValueError):
            PowerTrace.from_arrays(mesh4, np.array([0.0]), np.zeros((1, 16)))
        with pytest.raises(ValueError):
            PowerTrace.from_arrays(mesh4, np.array([1.0]), -np.ones((1, 16)))
        with pytest.raises(ValueError):
            PowerTrace.from_arrays(mesh4, np.array([1.0]), np.zeros((1, 7)))

    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_from_arrays_rejects_non_finite(self, mesh4, bad):
        """NaN/inf must not slip past the min()-based gates into the solver."""
        with pytest.raises(ValueError, match="positive and finite"):
            PowerTrace.from_arrays(mesh4, np.array([1.0, bad]), np.ones((2, 16)))
        powers = np.ones((2, 16))
        powers[1, 3] = bad
        with pytest.raises(ValueError, match="non-finite or negative"):
            PowerTrace.from_arrays(mesh4, np.array([1.0, 1.0]), powers)

    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_add_interval_rejects_non_finite(self, mesh4, bad):
        trace = PowerTrace(mesh4)
        vector = np.ones(16)
        vector[5] = bad
        with pytest.raises(ValueError, match="non-finite or negative"):
            trace.add_interval(1e-3, vector)
        with pytest.raises(ValueError, match="positive and finite"):
            trace.add_interval(float(bad) if bad is np.inf else np.nan, np.ones(16))
        assert len(trace) == 0  # failed appends must not leave partial rows

    def test_add_interval_accepts_vector(self, mesh4):
        trace = PowerTrace(mesh4)
        vector = np.linspace(0.0, 3.0, 16)
        trace.add_interval(1e-3, vector)
        assert np.array_equal(trace.powers[0], vector)
        assert trace.power_map(0) == vector_to_map(mesh4, vector)

    def test_vector_rejects_negative_and_bad_shape(self, mesh4):
        trace = PowerTrace(mesh4)
        with pytest.raises(ValueError):
            trace.add_interval(1e-3, -np.ones(16))
        with pytest.raises(ValueError):
            trace.add_interval(1e-3, np.ones(9))
        with pytest.raises(ValueError):
            trace.add_interval(0.0, np.ones(16))

    def test_views_are_read_only(self, mesh4, uniform_power4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1e-3, uniform_power4)
        with pytest.raises(ValueError):
            trace.powers[0, 0] = 99.0
        with pytest.raises(ValueError):
            trace.durations[0] = 99.0

    def test_capacity_growth_preserves_rows(self, mesh4):
        trace = PowerTrace(mesh4)
        rows = [np.full(16, float(index)) for index in range(30)]
        for row in rows:
            trace.add_interval(1e-3, row)
        assert len(trace) == 30
        for index, row in enumerate(rows):
            assert np.array_equal(trace.powers[index], row)

    def test_mean_tail_vector(self, mesh4):
        powers = np.vstack([np.full(16, 1.0), np.full(16, 3.0), np.full(16, 5.0)])
        trace = PowerTrace.from_arrays(mesh4, np.ones(3), powers)
        assert np.allclose(trace.mean_tail_vector(2), np.full(16, 4.0))
        assert np.allclose(trace.mean_tail_vector(3), np.full(16, 3.0))
        with pytest.raises(ValueError):
            trace.mean_tail_vector(0)
        with pytest.raises(ValueError):
            trace.mean_tail_vector(4)

    def test_intervals_edge_view(self, mesh4, uniform_power4):
        trace = PowerTrace(mesh4)
        trace.add_interval(1e-3, uniform_power4)
        intervals = trace.intervals()
        assert len(intervals) == 1
        duration, power = intervals[0]
        assert duration == 1e-3
        assert power == uniform_power4

    def test_map_vector_helpers(self, mesh4):
        mapping = {coord: float(mesh4.node_id(coord)) for coord in mesh4.coordinates()}
        vector = map_to_vector(mesh4, mapping)
        assert np.array_equal(vector, np.arange(16.0))
        assert vector_to_map(mesh4, vector) == mapping
        with pytest.raises(ValueError):
            vector_to_map(mesh4, np.zeros(5))
