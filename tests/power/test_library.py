"""Tests for the technology library constants."""

import pytest

from repro.power.library import DEFAULT_LIBRARY, TechnologyLibrary


class TestTechnologyLibrary:
    def test_default_values_paper_aligned(self):
        lib = DEFAULT_LIBRARY
        assert lib.unit_area_mm2 == pytest.approx(4.36)
        assert lib.supply_voltage_v == pytest.approx(1.8)

    def test_dynamic_energy_per_op(self):
        lib = TechnologyLibrary(
            switched_capacitance_per_op_f=1e-12, supply_voltage_v=2.0
        )
        assert lib.dynamic_energy_per_op_j == pytest.approx(4e-12)

    def test_unit_leakage_power(self):
        lib = TechnologyLibrary(
            leakage_power_density_w_per_mm2=0.01, unit_area_mm2=5.0
        )
        assert lib.unit_leakage_power_w == pytest.approx(0.05)

    def test_cycle_time(self):
        lib = TechnologyLibrary(clock_frequency_hz=100e6)
        assert lib.cycle_time_s == pytest.approx(10e-9)

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            TechnologyLibrary(supply_voltage_v=0)
        with pytest.raises(ValueError):
            TechnologyLibrary(clock_frequency_hz=-1)
        with pytest.raises(ValueError):
            TechnologyLibrary(switched_capacitance_per_op_f=0)
        with pytest.raises(ValueError):
            TechnologyLibrary(unit_area_mm2=0)
        with pytest.raises(ValueError):
            TechnologyLibrary(leakage_power_density_w_per_mm2=-0.1)

    def test_scaled_operating_point(self):
        lib = DEFAULT_LIBRARY
        slower = lib.scaled(frequency_hz=250e6)
        assert slower.clock_frequency_hz == 250e6
        assert slower.supply_voltage_v == lib.supply_voltage_v
        lower_v = lib.scaled(voltage_v=1.2)
        assert lower_v.supply_voltage_v == 1.2
        assert lower_v.dynamic_energy_per_op_j < lib.dynamic_energy_per_op_j

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_LIBRARY.supply_voltage_v = 1.0
