"""Tests for the synthetic traffic generators."""

import pytest

from repro.noc.flit import PacketClass
from repro.noc.traffic import (
    BitComplementTraffic,
    HotspotTraffic,
    NeighborTraffic,
    TraceTraffic,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic,
)


class TestValidation:
    def test_rejects_bad_injection_rate(self, mesh4):
        with pytest.raises(ValueError):
            UniformRandomTraffic(mesh4, injection_rate=1.5)
        with pytest.raises(ValueError):
            UniformRandomTraffic(mesh4, injection_rate=-0.1)

    def test_rejects_bad_packet_size(self, mesh4):
        with pytest.raises(ValueError):
            UniformRandomTraffic(mesh4, injection_rate=0.1, packet_size_flits=0)

    def test_hotspot_requires_valid_nodes(self, mesh4):
        with pytest.raises(ValueError):
            HotspotTraffic(mesh4, 0.1, hotspots=[(9, 9)])
        with pytest.raises(ValueError):
            HotspotTraffic(mesh4, 0.1, hotspots=[])


class TestPatterns:
    def test_uniform_never_self(self, mesh4):
        traffic = UniformRandomTraffic(mesh4, injection_rate=1.0, seed=3)
        for _ in range(20):
            for packet in traffic.packets_for_cycle(0):
                assert packet.source != packet.destination

    def test_transpose_destination(self, mesh4):
        traffic = TransposeTraffic(mesh4, injection_rate=1.0, seed=1)
        packets = traffic.packets_for_cycle(0)
        for packet in packets:
            x, y = packet.source
            assert packet.destination == (y, x)

    def test_bit_complement_destination(self, mesh4):
        traffic = BitComplementTraffic(mesh4, injection_rate=1.0, seed=1)
        for packet in traffic.packets_for_cycle(0):
            x, y = packet.source
            assert packet.destination == (3 - x, 3 - y)

    def test_neighbor_traffic_one_hop(self, mesh5):
        traffic = NeighborTraffic(mesh5, injection_rate=1.0, seed=5)
        for packet in traffic.packets_for_cycle(0):
            assert mesh5.manhattan_distance(packet.source, packet.destination) == 1

    def test_hotspot_bias(self, mesh4):
        hotspot = (2, 2)
        traffic = HotspotTraffic(
            mesh4, injection_rate=1.0, hotspots=[hotspot], hotspot_fraction=0.9, seed=7
        )
        packets = []
        for cycle in range(30):
            packets.extend(traffic.packets_for_cycle(cycle))
        to_hotspot = sum(1 for p in packets if p.destination == hotspot)
        assert to_hotspot > len(packets) * 0.5

    def test_injection_rate_controls_volume(self, mesh4):
        low = UniformRandomTraffic(mesh4, injection_rate=0.05, seed=1)
        high = UniformRandomTraffic(mesh4, injection_rate=0.8, seed=1)
        low_count = sum(len(low.packets_for_cycle(c)) for c in range(50))
        high_count = sum(len(high.packets_for_cycle(c)) for c in range(50))
        assert high_count > low_count * 3

    def test_seeded_reproducibility(self, mesh4):
        a = UniformRandomTraffic(mesh4, injection_rate=0.3, seed=42)
        b = UniformRandomTraffic(mesh4, injection_rate=0.3, seed=42)
        for cycle in range(10):
            pa = [(p.source, p.destination) for p in a.packets_for_cycle(cycle)]
            pb = [(p.source, p.destination) for p in b.packets_for_cycle(cycle)]
            assert pa == pb


class TestTraceTraffic:
    def test_replay(self):
        trace = TraceTraffic(
            [
                (0, (0, 0), (1, 1), 2),
                (0, (1, 0), (0, 1), 3),
                (5, (2, 2), (0, 0), 1),
            ]
        )
        cycle0 = trace.packets_for_cycle(0)
        assert len(cycle0) == 2
        assert trace.packets_for_cycle(1) == []
        assert len(trace.packets_for_cycle(5)) == 1
        assert trace.last_cycle == 5

    def test_empty_trace(self):
        trace = TraceTraffic([])
        assert trace.packets_for_cycle(0) == []
        assert trace.last_cycle == 0


class TestFactory:
    def test_make_all_patterns(self, mesh4):
        for name in ["uniform", "transpose", "bit-complement", "neighbor"]:
            generator = make_traffic(name, mesh4, injection_rate=0.2, seed=1)
            assert generator.injection_rate == 0.2

    def test_make_hotspot_with_kwargs(self, mesh4):
        generator = make_traffic(
            "hotspot", mesh4, injection_rate=0.2, seed=1, hotspots=[(1, 1)]
        )
        assert isinstance(generator, HotspotTraffic)

    def test_unknown_pattern(self, mesh4):
        with pytest.raises(ValueError):
            make_traffic("tornado", mesh4, injection_rate=0.2)

    def test_packets_are_data_class(self, mesh4):
        generator = make_traffic("uniform", mesh4, injection_rate=1.0, seed=2)
        for packet in generator.packets_for_cycle(0):
            assert packet.packet_class == PacketClass.DATA
