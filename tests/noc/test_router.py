"""Tests for the wormhole router in isolation."""

import pytest

from repro.noc.flit import Packet
from repro.noc.router import Router
from repro.noc.routing import XYRouting
from repro.noc.topology import Direction, MeshTopology


@pytest.fixture
def router(mesh4):
    return Router(coordinate=(1, 1), routing=XYRouting(mesh4), buffer_depth=2)


def _flits(source, destination, size=2):
    return Packet(source=source, destination=destination, size_flits=size).make_flits()


class TestAcceptance:
    def test_accepts_until_full(self, router):
        flits = _flits((1, 1), (3, 1), size=3)
        assert router.can_accept(Direction.LOCAL)
        router.accept_flit(Direction.LOCAL, flits[0])
        router.accept_flit(Direction.LOCAL, flits[1])
        assert not router.can_accept(Direction.LOCAL)

    def test_buffered_flit_count(self, router):
        flits = _flits((1, 1), (2, 1))
        router.accept_flit(Direction.LOCAL, flits[0])
        assert router.buffered_flits() == 1


class TestSwitching:
    def test_head_flit_routed_east(self, router):
        flits = _flits((1, 1), (3, 1))
        router.accept_flit(Direction.LOCAL, flits[0])
        router.compute_routes()
        forwards = router.allocate_switch()
        assert len(forwards) == 1
        assert forwards[0].out_dir == Direction.EAST
        assert forwards[0].flit is flits[0]

    def test_local_ejection(self, router):
        flits = _flits((0, 0), (1, 1))
        router.accept_flit(Direction.WEST, flits[0])
        router.compute_routes()
        forwards = router.allocate_switch()
        assert forwards[0].out_dir == Direction.LOCAL

    def test_wormhole_holds_output_for_body_flits(self, router):
        head, tail = _flits((1, 1), (1, 3), size=2)
        router.accept_flit(Direction.LOCAL, head)
        router.compute_routes()
        router.allocate_switch()
        # Output NORTH now owned by LOCAL input until the tail passes.
        assert router.output_ports[Direction.NORTH].owner == Direction.LOCAL
        router.accept_flit(Direction.LOCAL, tail)
        router.compute_routes()
        forwards = router.allocate_switch()
        assert forwards[0].out_dir == Direction.NORTH
        assert router.output_ports[Direction.NORTH].owner is None

    def test_no_forward_without_credit(self, router):
        flits = _flits((1, 1), (3, 1))
        # Exhaust EAST credits.
        router.output_ports[Direction.EAST].credits.consume()
        router.output_ports[Direction.EAST].credits.consume()
        router.accept_flit(Direction.LOCAL, flits[0])
        router.compute_routes()
        assert router.allocate_switch() == []

    def test_one_winner_per_output(self, router):
        # Two packets from different inputs both heading EAST.
        a = _flits((0, 1), (3, 1), size=1)[0]
        b = _flits((1, 0), (3, 1), size=1)[0]
        router.accept_flit(Direction.WEST, a)
        router.accept_flit(Direction.SOUTH, b)
        router.compute_routes()
        forwards = router.allocate_switch()
        east = [f for f in forwards if f.out_dir == Direction.EAST]
        assert len(east) == 1

    def test_round_robin_fairness(self, router):
        # Repeatedly contend for EAST from WEST and SOUTH; both should win over time.
        winners = []
        for _ in range(4):
            a = _flits((0, 1), (3, 1), size=1)[0]
            b = _flits((1, 0), (3, 1), size=1)[0]
            router.accept_flit(Direction.WEST, a)
            router.accept_flit(Direction.SOUTH, b)
            router.compute_routes()
            forwards = router.allocate_switch()
            winners.extend(f.in_dir for f in forwards if f.out_dir == Direction.EAST)
            # Drain whatever remains so buffers do not overflow.
            router.compute_routes()
            router.allocate_switch()
            # Restore credits consumed in this round.
            router.reset()
        assert set(winners) >= {Direction.WEST, Direction.SOUTH} or len(set(winners)) == 1


class TestActivityAndReset:
    def test_activity_counters_increase(self, router):
        flits = _flits((1, 1), (3, 1))
        router.accept_flit(Direction.LOCAL, flits[0])
        router.compute_routes()
        router.allocate_switch()
        assert router.activity.flits_routed == 1
        assert router.activity.headers_decoded == 1
        assert router.activity.buffer_writes == 1
        assert router.activity.buffer_reads == 1

    def test_reset_restores_idle_state(self, router):
        flits = _flits((1, 1), (3, 1))
        router.accept_flit(Direction.LOCAL, flits[0])
        router.reset()
        assert router.is_idle()
        assert router.activity.flits_routed == 0

    def test_activity_snapshot_is_independent(self, router):
        snapshot = router.activity.snapshot()
        router.activity.flits_routed += 5
        assert snapshot.flits_routed == 0
