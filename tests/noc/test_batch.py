"""Tests for batched latency-curve evaluation on the vector engine."""

import numpy as np
import pytest

from repro.noc.analytic import saturation_rate
from repro.noc.batch import default_rate_grid, latency_curve, run_schedules
from repro.noc.simulator import NocSimulator
from repro.noc.topology import MeshTopology
from repro.noc.traffic import make_traffic


class TestRunSchedules:
    def test_lanes_match_individual_runs_exactly(self):
        """Lane independence: a batched run equals one-run-per-schedule."""
        topology = MeshTopology(4, 4)
        schedules = [
            make_traffic("uniform", topology, rate, seed=20 + i).schedule(250)
            for i, rate in enumerate((0.05, 0.12, 0.2))
        ]
        batched = run_schedules(
            topology, schedules, cycles=200, warmup_cycles=50
        )
        for schedule, result in zip(schedules, batched):
            single = NocSimulator(topology, engine="vector").run_traffic(
                _Replay(schedule), cycles=200, warmup_cycles=50
            )
            assert result.cycles == single.cycles
            assert result.stats.latency == single.stats.latency
            assert result.stats.packets_ejected == single.stats.packets_ejected
            assert result.link_flits == single.link_flits
            assert result.router_activity == single.router_activity

    def test_no_drain_keeps_measurement_window(self):
        topology = MeshTopology(4, 4)
        schedules = [make_traffic("uniform", topology, 0.1, seed=1).schedule(150)]
        results = run_schedules(
            topology, schedules, cycles=100, warmup_cycles=50, drain=False
        )
        assert results[0].cycles == 100
        assert not results[0].drained


class _Replay:
    """Traffic source that hands a fixed schedule to the vector engine."""

    def __init__(self, schedule):
        self._schedule = schedule

    def schedule(self, cycles):
        return self._schedule.limited_to(cycles)


class TestLatencyCurve:
    def test_curve_shape_and_monotonic_knee(self):
        topology = MeshTopology(4, 4)
        curve = latency_curve(
            topology, "uniform", cycles=300, warmup_cycles=50, seed=2
        )
        assert curve.num_points == curve.injection_rates.size
        assert curve.avg_latency.shape == curve.injection_rates.shape
        assert len(curve.results) == curve.num_points
        # Latency grows toward saturation.
        assert curve.avg_latency[-1] > 1.5 * curve.avg_latency[0]
        assert np.all(curve.throughput_flits_per_cycle >= 0)

    def test_explicit_rates_and_pattern_kwargs(self):
        topology = MeshTopology(4, 4)
        rates = [0.02, 0.05]
        curve = latency_curve(
            topology,
            "hotspot",
            rates,
            cycles=200,
            warmup_cycles=20,
            seed=3,
            hotspots=[(1, 1)],
        )
        assert curve.num_points == 2
        assert np.array_equal(curve.injection_rates, np.asarray(rates))

    def test_saturation_estimate_tracks_analytic(self):
        topology = MeshTopology(4, 4)
        curve = latency_curve(
            topology, "uniform", cycles=500, warmup_cycles=100, seed=4
        )
        estimate = curve.saturation_estimate()
        sat = saturation_rate(topology, "uniform")
        assert 0.5 * sat < estimate <= 1.3 * sat + 1e-9

    def test_default_grid_spans_to_capped_saturation(self):
        topology = MeshTopology(5, 5)
        grid = default_rate_grid(topology, num_points=16)
        sat = saturation_rate(topology, "uniform")
        assert grid.size == 16
        assert grid[0] == pytest.approx(0.005)
        assert grid[-1] == pytest.approx(1.3 * sat)
