"""Engine parity: the vector kernel must reproduce the object engine exactly.

The object-graph :class:`~repro.noc.network.Network` is the behavioural
specification; :class:`~repro.noc.vector.VectorNetwork` is the array-native
rewrite.  On identical traffic the two must agree on *everything* the
simulator reports: per-packet injection/ejection cycles, latency statistics
(including the per-class split), throughput, per-node counters, stalled
injections and the full per-router activity dictionaries.

Both engines are driven from one pregenerated
:class:`~repro.noc.schedule.TrafficSchedule` (the generators' numpy
``schedule()`` path intentionally uses a different RNG stream, so parity
comparisons always go through an explicit shared schedule).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.schedule import TrafficSchedule
from repro.noc.simulator import NocSimulator
from repro.noc.topology import MeshTopology
from repro.noc.traffic import TraceTraffic, make_traffic
from repro.noc.vector import VectorNetwork

PARITY_CONFIGS = [
    # (mesh, pattern, rate, cycles, warmup, routing, depth, kwargs)
    (4, "uniform", 0.10, 300, 0, "xy", 4, {}),
    (4, "uniform", 0.25, 300, 60, "xy", 4, {}),
    (5, "uniform", 0.08, 250, 40, "xy", 4, {}),
    (4, "hotspot", 0.12, 250, 30, "xy", 4, {"hotspots": [(1, 1), (2, 2)]}),
    (5, "hotspot", 0.10, 250, 25, "xy", 4, {"hotspots": [(2, 2)]}),
    (4, "transpose", 0.15, 250, 0, "xy", 4, {}),
    (5, "neighbor", 0.20, 250, 25, "xy", 4, {}),
    (4, "uniform", 0.10, 250, 30, "yx", 4, {}),
    (4, "uniform", 0.10, 250, 30, "west-first", 4, {}),
    (5, "uniform", 0.10, 250, 30, "odd-even", 2, {}),
]


def shared_trace(size, pattern, rate, horizon, seed=7, **kwargs):
    """One schedule both engines replay exactly."""
    topology = MeshTopology(size, size)
    generator = make_traffic(pattern, topology, injection_rate=rate, seed=seed, **kwargs)
    schedule = TrafficSchedule.from_generator(generator, topology, horizon)
    return topology, schedule, TraceTraffic(schedule.trace_tuples(topology))


@pytest.mark.parametrize(
    "size,pattern,rate,cycles,warmup,routing,depth,kwargs",
    PARITY_CONFIGS,
    ids=[f"{c[0]}x{c[0]}-{c[1]}-{c[5]}" for c in PARITY_CONFIGS],
)
def test_engines_agree_exactly(size, pattern, rate, cycles, warmup, routing, depth, kwargs):
    topology, _, trace = shared_trace(size, pattern, rate, cycles + warmup, **kwargs)
    results = {}
    for engine in ("object", "vector"):
        sim = NocSimulator(topology, routing=routing, buffer_depth=depth, engine=engine)
        results[engine] = sim.run_traffic(trace, cycles=cycles, warmup_cycles=warmup)
    obj, vec = results["object"], results["vector"]

    assert vec.cycles == obj.cycles
    assert vec.link_flits == obj.link_flits
    for field in (
        "cycles",
        "packets_injected",
        "packets_ejected",
        "flits_injected",
        "flits_ejected",
        "stalled_injections",
    ):
        assert getattr(vec.stats, field) == getattr(obj.stats, field), field
    assert vec.stats.latency == obj.stats.latency
    assert vec.stats.latency_by_class == obj.stats.latency_by_class
    assert vec.stats.injected_per_node == obj.stats.injected_per_node
    assert vec.stats.ejected_per_node == obj.stats.ejected_per_node
    assert vec.router_activity == obj.router_activity


def test_per_packet_cycles_and_ejection_order_match():
    """Injection/ejection cycles agree packet by packet, not just on average."""
    topology, schedule, _ = shared_trace(4, "uniform", 0.20, 200)

    object_packets = schedule.to_packets(topology)
    by_cycle = {}
    for packet in object_packets:
        by_cycle.setdefault(packet.injection_cycle, []).append(packet)
    sim = NocSimulator(topology, engine="object")
    for cycle in range(max(by_cycle) + 1):
        for packet in by_cycle.get(cycle, []):
            sim.network.inject(packet)
        sim.network.step()
    sim.network.drain(max_cycles=50_000)

    vector_packets = schedule.to_packets(topology)
    net = VectorNetwork(
        topology, [TrafficSchedule.from_packets(vector_packets, topology)]
    )
    net.drain()
    net.write_back_packets()

    for expected, actual in zip(object_packets, vector_packets):
        assert actual.injection_cycle == expected.injection_cycle
        assert actual.ejection_cycle == expected.ejection_cycle

    # The engine's ejection log is ordered by (cycle, node row-major) —
    # the order the object engine's per-router loop ejects within a cycle.
    order = net.ejection_order(0)
    eject = net.pkt_eject[order]
    node = net.pkt_dst[order]
    keys = eject * topology.num_nodes + node
    assert np.all(np.diff(keys) >= 0)


def test_stalled_injections_match_with_tiny_buffers():
    """Back-pressure bookkeeping matches when local buffers overflow."""
    topology, _, trace = shared_trace(4, "uniform", 0.6, 120)
    results = {}
    for engine in ("object", "vector"):
        sim = NocSimulator(topology, buffer_depth=2, engine=engine)
        results[engine] = sim.run_traffic(trace, cycles=120, warmup_cycles=0)
    assert results["vector"].stats.stalled_injections > 0
    assert (
        results["vector"].stats.stalled_injections
        == results["object"].stats.stalled_injections
    )


def test_run_packets_parity():
    topology = MeshTopology(4, 4)
    generator = make_traffic("uniform", topology, injection_rate=0.3, seed=3)
    packets = TrafficSchedule.from_generator(generator, topology, 60).to_packets(topology)
    res = {}
    for engine in ("object", "vector"):
        sim = NocSimulator(topology, engine=engine)
        batch = [
            p.__class__(
                source=p.source,
                destination=p.destination,
                size_flits=p.size_flits,
                packet_class=p.packet_class,
                injection_cycle=0,
            )
            for p in packets
        ]
        res[engine] = sim.run_packets(batch)
    assert res["vector"].cycles == res["object"].cycles
    assert res["vector"].stats.latency == res["object"].stats.latency
    assert res["vector"].router_activity == res["object"].router_activity


class TestConservation:
    """Flits are never created or destroyed: injected == ejected + in flight."""

    @given(
        width=st.integers(2, 4),
        height=st.integers(2, 4),
        rate=st.floats(0.05, 0.5),
        depth=st.integers(2, 4),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_packet_conservation_every_cycle(self, width, height, rate, depth, seed):
        topology = MeshTopology(width, height)
        generator = make_traffic("uniform", topology, injection_rate=rate, seed=seed)
        schedule = generator.schedule(60)
        net = VectorNetwork(topology, [schedule], buffer_depth=depth)
        for _ in range(90):
            net.step()
            injected = int(np.count_nonzero(net.pkt_inject >= 0))
            ejected = int(np.count_nonzero(net.pkt_eject >= 0))
            assert injected == ejected + net.in_network_packets(0)
        net.drain()
        # After a full drain every injected packet has been delivered.
        assert net.buffered_flits(0) == 0
        injected = int(np.count_nonzero(net.pkt_inject >= 0))
        ejected = int(np.count_nonzero(net.pkt_eject >= 0))
        assert injected == schedule.num_packets == ejected
