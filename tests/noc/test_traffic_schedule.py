"""Tests for array-form traffic schedules and the numpy generation path."""

import numpy as np
import pytest

from repro.noc.flit import PacketClass
from repro.noc.schedule import PACKET_CLASS_CODES, TrafficSchedule
from repro.noc.topology import MeshTopology
from repro.noc.traffic import make_traffic

PATTERNS = [
    ("uniform", {}),
    ("transpose", {}),
    ("bit-complement", {}),
    ("neighbor", {}),
    ("hotspot", {"hotspots": [(1, 1), (2, 2)]}),
]

COLUMNS = ("cycle", "src", "dst", "size", "pclass")


class TestNumpySchedulePath:
    @pytest.mark.parametrize("pattern,kwargs", PATTERNS, ids=[p for p, _ in PATTERNS])
    def test_same_seed_is_deterministic(self, pattern, kwargs):
        topology = MeshTopology(4, 4)
        first = make_traffic(pattern, topology, 0.15, seed=9, **kwargs).schedule(400)
        second = make_traffic(pattern, topology, 0.15, seed=9, **kwargs).schedule(400)
        for column in COLUMNS:
            assert np.array_equal(getattr(first, column), getattr(second, column))

    @pytest.mark.parametrize("pattern,kwargs", PATTERNS, ids=[p for p, _ in PATTERNS])
    def test_schedule_invariants(self, pattern, kwargs):
        topology = MeshTopology(4, 4)
        sched = make_traffic(pattern, topology, 0.2, seed=3, **kwargs).schedule(300)
        n = topology.num_nodes
        assert sched.num_packets > 0
        assert not np.any(sched.src == sched.dst)
        assert sched.src.min() >= 0 and sched.src.max() < n
        assert sched.dst.min() >= 0 and sched.dst.max() < n
        assert sched.cycle.min() >= 0 and sched.cycle.max() < 300
        assert np.all(sched.size == 4)
        assert np.all(sched.pclass == PACKET_CLASS_CODES[PacketClass.DATA])
        # Offer order is (cycle, node) row-major, like the per-cycle path.
        keys = sched.cycle * n + sched.src
        assert np.all(np.diff(keys) >= 0)

    def test_pinned_sample(self):
        """Guards the RNG consumption order against accidental refactors."""
        topology = MeshTopology(4, 4)
        sched = make_traffic("uniform", topology, 0.1, seed=2026).schedule(50)
        assert sched.num_packets == 71
        assert sched.cycle[:5].tolist() == [1, 3, 3, 4, 4]
        assert sched.src[:5].tolist() == [7, 10, 15, 2, 14]
        assert sched.dst[:5].tolist() == [3, 12, 1, 11, 7]

    def test_injection_rate_is_respected(self):
        topology = MeshTopology(4, 4)
        sched = make_traffic("uniform", topology, 0.25, seed=4).schedule(2000)
        observed = sched.num_packets / (2000 * topology.num_nodes)
        assert observed == pytest.approx(0.25, rel=0.05)

    def test_transpose_diagonal_nodes_are_silent(self):
        topology = MeshTopology(4, 4)
        sched = make_traffic("transpose", topology, 0.5, seed=1).schedule(200)
        diagonal = [topology.node_id((i, i)) for i in range(4)]
        assert not np.isin(sched.src, diagonal).any()

    def test_neighbor_destinations_are_adjacent(self):
        topology = MeshTopology(4, 4)
        sched = make_traffic("neighbor", topology, 0.5, seed=1).schedule(200)
        for s, d in zip(sched.src, sched.dst):
            distance = topology.manhattan_distance(
                topology.coordinate(int(s)), topology.coordinate(int(d))
            )
            assert distance == 1

    def test_hotspot_fraction_lands_on_hotspots(self):
        topology = MeshTopology(4, 4)
        spots = [(1, 1), (2, 2)]
        sched = make_traffic(
            "hotspot", topology, 0.3, seed=6, hotspots=spots, hotspot_fraction=0.6
        ).schedule(1500)
        spot_ids = {topology.node_id(s) for s in spots}
        on_spot = np.isin(sched.dst, list(spot_ids)).mean()
        # 60% targeted + the uniform remainder occasionally landing there.
        assert 0.55 < on_spot < 0.75


class TestScheduleContainer:
    def make(self):
        topology = MeshTopology(4, 4)
        gen = make_traffic("uniform", topology, 0.2, seed=5)
        return topology, gen.schedule(100)

    def test_limited_to_drops_late_packets(self):
        _, sched = self.make()
        limited = sched.limited_to(40)
        assert limited.cycle.max() < 40
        assert limited.num_packets == int(np.count_nonzero(sched.cycle < 40))

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            TrafficSchedule(
                cycle=[0, 1], src=[0], dst=[1], size=[4], pclass=[1]
            )

    def test_to_packets_round_trip(self):
        topology, sched = self.make()
        packets = sched.to_packets(topology)
        rebuilt = TrafficSchedule.from_packets(packets, topology)
        for column in COLUMNS:
            assert np.array_equal(getattr(rebuilt, column), getattr(sched, column))
        assert rebuilt.packets is not None

    def test_trace_tuples_replay_exactly(self):
        """trace_tuples -> TraceTraffic -> from_generator is the identity."""
        from repro.noc.traffic import TraceTraffic

        topology, sched = self.make()
        trace = TraceTraffic(sched.trace_tuples(topology))
        rebuilt = TrafficSchedule.from_generator(trace, topology, 100)
        for column in ("cycle", "src", "dst", "size"):
            assert np.array_equal(getattr(rebuilt, column), getattr(sched, column))

    def test_from_generator_matches_per_cycle_path(self):
        """Exact replay: same packets the object engine would see."""
        topology = MeshTopology(4, 4)
        replayed = TrafficSchedule.from_generator(
            make_traffic("uniform", topology, 0.2, seed=8), topology, 80
        )
        manual = []
        gen = make_traffic("uniform", topology, 0.2, seed=8)
        for cycle in range(80):
            manual.extend(gen.packets_for_cycle(cycle))
        assert replayed.num_packets == len(manual)
        for index, packet in enumerate(manual):
            assert replayed.cycle[index] == packet.injection_cycle
            assert replayed.src[index] == topology.node_id(packet.source)
            assert replayed.dst[index] == topology.node_id(packet.destination)
