"""Tests for the network assembly and cycle-accurate packet delivery."""

import pytest

from repro.noc.flit import Packet, PacketClass
from repro.noc.network import Network
from repro.noc.topology import Direction, MeshTopology


class TestConstruction:
    def test_router_per_node(self, network4, mesh4):
        assert len(network4.routers) == mesh4.num_nodes

    def test_link_count(self, network4, mesh4):
        assert len(network4.links) == len(mesh4.links())

    def test_corner_router_ports(self, network4):
        corner = network4.routers[(0, 0)]
        assert Direction.LOCAL in corner.connected_ports
        assert Direction.EAST in corner.connected_ports
        assert Direction.NORTH in corner.connected_ports
        assert Direction.WEST not in corner.connected_ports
        assert Direction.SOUTH not in corner.connected_ports

    def test_routing_by_name(self, mesh4):
        network = Network(mesh4, routing="yx")
        assert network.routing.name == "yx"


class TestInjectionValidation:
    def test_rejects_source_outside_mesh(self, network4):
        with pytest.raises(ValueError):
            network4.inject(Packet(source=(9, 9), destination=(0, 0), size_flits=1))

    def test_rejects_destination_outside_mesh(self, network4):
        with pytest.raises(ValueError):
            network4.inject(Packet(source=(0, 0), destination=(5, 0), size_flits=1))


class TestSinglePacketDelivery:
    def test_neighbor_delivery(self, network4):
        packet = Packet(source=(0, 0), destination=(1, 0), size_flits=1)
        network4.inject(packet)
        network4.drain()
        assert network4.stats.packets_ejected == 1
        assert packet.ejection_cycle is not None
        assert packet.latency >= 1

    def test_corner_to_corner(self, network4):
        packet = Packet(source=(0, 0), destination=(3, 3), size_flits=4)
        network4.inject(packet)
        cycles = network4.drain()
        assert network4.stats.packets_ejected == 1
        # 6 hops + 3 extra flits of serialisation is the analytic minimum.
        assert packet.latency >= 9
        assert cycles >= packet.latency

    def test_latency_grows_with_distance(self, network4):
        near = Packet(source=(0, 0), destination=(1, 0), size_flits=2)
        far = Packet(source=(0, 0), destination=(3, 3), size_flits=2)
        network4.inject(near)
        network4.drain()
        near_latency = near.latency
        network4.reset()
        network4.inject(far)
        network4.drain()
        assert far.latency > near_latency

    def test_self_packet_delivered_locally(self, network4):
        # Source == destination: ejected through the local port immediately.
        packet = Packet(source=(2, 2), destination=(2, 2), size_flits=1)
        network4.inject(packet)
        network4.drain()
        assert network4.stats.packets_ejected == 1


class TestManyPackets:
    def test_all_packets_delivered(self, network4, mesh4):
        packets = []
        for src in mesh4.coordinates():
            for dst in [(0, 0), (3, 3)]:
                if src == dst:
                    continue
                packet = Packet(source=src, destination=dst, size_flits=3)
                packets.append(packet)
                network4.inject(packet)
        network4.drain()
        assert network4.stats.packets_ejected == len(packets)
        assert all(p.ejection_cycle is not None for p in packets)

    def test_flit_conservation(self, network4, mesh4):
        total_flits = 0
        for src in mesh4.coordinates():
            dst = (3 - src[0], 3 - src[1])
            if dst == src:
                continue
            network4.inject(Packet(source=src, destination=dst, size_flits=4))
            total_flits += 4
        network4.drain()
        assert network4.stats.flits_injected == total_flits
        assert network4.stats.flits_ejected == total_flits

    def test_is_idle_after_drain(self, network4):
        network4.inject(Packet(source=(0, 0), destination=(3, 2), size_flits=5))
        assert not network4.is_idle()
        network4.drain()
        assert network4.is_idle()

    def test_ejection_handler_called(self, network4):
        seen = []
        network4.ejection_handler = lambda packet, cycle: seen.append((packet, cycle))
        network4.inject(Packet(source=(1, 1), destination=(2, 2), size_flits=2))
        network4.drain()
        assert len(seen) == 1


class TestActivityCounters:
    def test_routers_on_path_record_activity(self, network4):
        network4.inject(Packet(source=(0, 0), destination=(3, 0), size_flits=2))
        network4.drain()
        activity = network4.router_activity()
        # XY route passes through (1,0) and (2,0).
        assert activity[(1, 0)].flits_routed > 0
        assert activity[(2, 0)].flits_routed > 0
        # A router far from the route sees nothing.
        assert activity[(0, 3)].flits_routed == 0

    def test_reset_activity(self, network4):
        network4.inject(Packet(source=(0, 0), destination=(2, 0), size_flits=2))
        network4.drain()
        network4.reset_activity()
        assert all(a.flits_routed == 0 for a in network4.router_activity().values())
        assert network4.links.total_flits() == 0

    def test_link_counts_flits(self, network4):
        network4.inject(Packet(source=(0, 0), destination=(1, 0), size_flits=3))
        network4.drain()
        link = network4.links.get((0, 0), Direction.EAST)
        assert link.flits_carried == 3


class TestReset:
    def test_full_reset_clears_everything(self, network4):
        network4.inject(Packet(source=(0, 0), destination=(3, 3), size_flits=4))
        network4.run(3)
        network4.reset()
        assert network4.is_idle()
        assert network4.current_cycle == 0
        assert network4.stats.packets_injected == 0
        assert not network4.ejected_packets
