"""Tests for the event queue and simulation clock."""

import pytest

from repro.noc.engine import EventQueue, SimulationClock


class TestSimulationClock:
    def test_default_frequency(self):
        clock = SimulationClock()
        assert clock.frequency_hz == 500e6
        assert clock.cycle_time_s == pytest.approx(2e-9)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            SimulationClock(frequency_hz=0)

    def test_microsecond_conversion_paper_periods(self):
        clock = SimulationClock(frequency_hz=500e6)
        assert clock.microseconds_to_cycles(109.0) == 54500
        assert clock.microseconds_to_cycles(437.2) == 218600
        assert clock.microseconds_to_cycles(874.4) == 437200

    def test_round_trip(self):
        clock = SimulationClock(frequency_hz=1e9)
        cycles = clock.seconds_to_cycles(1e-6)
        assert clock.cycles_to_seconds(cycles) == pytest.approx(1e-6)
        assert clock.cycles_to_microseconds(cycles) == pytest.approx(1.0)


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(3.0, lambda: order.append("c"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(2.0, lambda: order.append("b"))
        queue.run_all()
        assert order == ["a", "b", "c"]

    def test_same_time_insertion_order(self):
        queue = EventQueue()
        order = []
        for name in "abcd":
            queue.schedule(1.0, lambda n=name: order.append(n))
        queue.run_all()
        assert order == ["a", "b", "c", "d"]

    def test_schedule_after(self):
        queue = EventQueue()
        hits = []
        queue.schedule(1.0, lambda: queue.schedule_after(0.5, lambda: hits.append(queue.now)))
        queue.run_all()
        assert hits == [1.5]

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run_all()
        with pytest.raises(ValueError):
            queue.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_after(-1.0, lambda: None)

    def test_run_until(self):
        queue = EventQueue()
        hits = []
        for t in (1.0, 2.0, 3.0):
            queue.schedule(t, lambda t=t: hits.append(t))
        executed = queue.run_until(2.0)
        assert executed == 2
        assert hits == [1.0, 2.0]
        assert len(queue) == 1
        assert queue.now == 2.0

    def test_run_next_on_empty(self):
        assert EventQueue().run_next() is False

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(4.0, lambda: None)
        assert queue.peek_time() == 4.0

    def test_run_all_guard(self):
        queue = EventQueue()

        def reschedule():
            queue.schedule_after(1.0, reschedule)

        queue.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError):
            queue.run_all(max_events=100)
