"""Tests for the routing algorithms."""

import pytest

from repro.noc.routing import (
    OddEvenRouting,
    WestFirstRouting,
    XYRouting,
    YXRouting,
    available_algorithms,
    make_routing,
)
from repro.noc.topology import Direction, MeshTopology


@pytest.fixture
def xy(mesh5):
    return XYRouting(mesh5)


class TestXYRouting:
    def test_arrival(self, xy):
        assert xy.route((2, 2), (2, 2)) == Direction.LOCAL

    def test_x_first(self, xy):
        assert xy.route((0, 0), (3, 3)) == Direction.EAST
        assert xy.route((3, 0), (0, 3)) == Direction.WEST

    def test_y_after_x(self, xy):
        assert xy.route((3, 0), (3, 3)) == Direction.NORTH
        assert xy.route((3, 3), (3, 0)) == Direction.SOUTH

    def test_path_is_minimal(self, xy, mesh5):
        for src in [(0, 0), (2, 3), (4, 4)]:
            for dst in [(4, 0), (0, 4), (1, 1)]:
                path = xy.path(src, dst)
                assert path[0] == src
                assert path[-1] == dst
                assert len(path) - 1 == mesh5.manhattan_distance(src, dst)

    def test_path_hops_are_adjacent(self, xy, mesh5):
        path = xy.path((0, 0), (4, 3))
        for a, b in zip(path, path[1:]):
            assert mesh5.manhattan_distance(a, b) == 1


class TestYXRouting:
    def test_y_first(self, mesh5):
        yx = YXRouting(mesh5)
        assert yx.route((0, 0), (3, 3)) == Direction.NORTH
        assert yx.route((0, 3), (3, 3)) == Direction.EAST

    def test_reaches_destination(self, mesh5):
        yx = YXRouting(mesh5)
        path = yx.path((4, 4), (0, 0))
        assert path[-1] == (0, 0)
        assert len(path) - 1 == 8


class TestWestFirst:
    def test_west_taken_first(self, mesh5):
        wf = WestFirstRouting(mesh5)
        outputs = wf.candidate_outputs((3, 0), (1, 3))
        assert outputs == [Direction.WEST]

    def test_adaptive_when_no_west(self, mesh5):
        wf = WestFirstRouting(mesh5)
        outputs = wf.candidate_outputs((0, 0), (3, 3))
        assert Direction.EAST in outputs
        assert Direction.NORTH in outputs

    def test_path_terminates(self, mesh5):
        wf = WestFirstRouting(mesh5)
        assert wf.path((4, 0), (0, 4))[-1] == (0, 4)


class TestOddEven:
    def test_reaches_destination_everywhere(self, mesh5):
        oe = OddEvenRouting(mesh5)
        for src in mesh5.coordinates():
            for dst in mesh5.coordinates():
                if src == dst:
                    continue
                path = oe.path(src, dst)
                assert path[-1] == dst
                # Odd-even is minimal in this implementation.
                assert len(path) - 1 == mesh5.manhattan_distance(src, dst)

    def test_arrival_is_local(self, mesh5):
        oe = OddEvenRouting(mesh5)
        assert oe.candidate_outputs((1, 1), (1, 1)) == [Direction.LOCAL]


class TestFactory:
    def test_available_algorithms(self):
        assert set(available_algorithms()) == {"xy", "yx", "west-first", "odd-even"}

    def test_make_routing(self, mesh4):
        for name in available_algorithms():
            algorithm = make_routing(name, mesh4)
            assert algorithm.name == name

    def test_unknown_algorithm(self, mesh4):
        with pytest.raises(ValueError):
            make_routing("spiral", mesh4)


class TestDeterminismAndMinimality:
    def test_xy_deterministic_single_candidate(self, mesh5):
        xy = XYRouting(mesh5)
        for src in mesh5.coordinates():
            for dst in mesh5.coordinates():
                candidates = xy.candidate_outputs(src, dst)
                assert len(candidates) == 1

    def test_all_algorithms_reach_all_destinations(self, mesh4):
        for name in available_algorithms():
            algorithm = make_routing(name, mesh4)
            for src in mesh4.coordinates():
                for dst in mesh4.coordinates():
                    if src == dst:
                        continue
                    assert algorithm.path(src, dst)[-1] == dst
