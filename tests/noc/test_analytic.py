"""Validation of the analytic wormhole latency model against the event engine."""

import numpy as np
import pytest

from repro.noc.analytic import (
    AnalyticPoint,
    analytic_curve,
    analytic_latency,
    destination_probabilities,
    saturation_rate,
)
from repro.noc.batch import latency_curve
from repro.noc.topology import MeshTopology

AGREEMENT_CONFIGS = [
    (4, "uniform", {}),
    (5, "uniform", {}),
    (4, "hotspot", {"hotspots": [(1, 1), (2, 2)]}),
    (4, "neighbor", {}),
]


class TestAgreementWithEventEngine:
    """<10% mean-latency error below saturation for stochastic patterns."""

    @pytest.mark.parametrize(
        "size,pattern,kwargs",
        AGREEMENT_CONFIGS,
        ids=[f"{c[0]}x{c[0]}-{c[1]}" for c in AGREEMENT_CONFIGS],
    )
    def test_below_saturation_agreement(self, size, pattern, kwargs):
        topology = MeshTopology(size, size)
        sat = saturation_rate(topology, pattern, **kwargs)
        rates = np.linspace(0.15, 0.8, 4) * sat
        measured = latency_curve(
            topology, pattern, rates, cycles=2000, warmup_cycles=300, seed=0, **kwargs
        ).avg_latency
        analytic = [p.avg_latency for p in analytic_curve(topology, pattern, rates, **kwargs)]
        errors = np.abs(np.asarray(analytic) - measured) / measured
        assert errors.max() < 0.10, f"worst error {errors.max():.1%}"

    def test_transpose_is_a_conservative_upper_bound(self):
        """Deterministic permutations see smoother arrivals than the model
        assumes, so the estimate must sit above the measurement (and within
        a loose factor), never below it."""
        topology = MeshTopology(4, 4)
        sat = saturation_rate(topology, "transpose")
        rates = np.linspace(0.2, 0.8, 3) * sat
        measured = latency_curve(
            topology, "transpose", rates, cycles=1500, warmup_cycles=200, seed=0
        ).avg_latency
        analytic = np.array(
            [p.avg_latency for p in analytic_curve(topology, "transpose", rates)]
        )
        assert np.all(analytic >= measured)
        assert np.all(analytic < 1.6 * measured)


class TestModelStructure:
    def test_zero_load_latency_is_hops_plus_serialization(self):
        topology = MeshTopology(4, 4)
        point = analytic_latency(topology, "uniform", 1e-9)
        # Flow-weighted mean hops of uniform traffic + L + 1 ejection cycle.
        mean_hops = 0.0
        n = topology.num_nodes
        for s in range(n):
            for d in range(n):
                if s != d:
                    mean_hops += topology.manhattan_distance(
                        topology.coordinate(s), topology.coordinate(d)
                    )
        mean_hops /= n * (n - 1)
        assert point.avg_latency == pytest.approx(mean_hops + 4 + 1, abs=1e-3)

    def test_saturation_below_capacity(self):
        topology = MeshTopology(4, 4)
        point = analytic_latency(topology, "uniform", 0.05)
        assert point.saturation_rate < point.capacity_rate
        assert not point.saturated

    def test_saturated_flag_and_divergence(self):
        topology = MeshTopology(4, 4)
        sat = saturation_rate(topology, "uniform")
        assert analytic_latency(topology, "uniform", 1.01 * sat).saturated
        beyond = analytic_latency(topology, "uniform", 10.0)
        assert beyond.saturated
        assert not beyond.finite

    def test_hotspot_saturates_earlier_than_uniform(self):
        topology = MeshTopology(4, 4)
        uniform = saturation_rate(topology, "uniform")
        hotspot = saturation_rate(
            topology, "hotspot", hotspots=[(1, 1)], hotspot_fraction=0.7
        )
        assert hotspot < uniform

    def test_latency_increases_with_rate(self):
        topology = MeshTopology(5, 5)
        sat = saturation_rate(topology, "uniform")
        latencies = [
            p.avg_latency
            for p in analytic_curve(topology, "uniform", np.linspace(0.1, 0.9, 8) * sat)
        ]
        assert np.all(np.diff(latencies) > 0)


class TestDestinationProbabilities:
    def test_uniform_rows(self):
        topology = MeshTopology(4, 4)
        probs = destination_probabilities("uniform", topology)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(np.diag(probs) == 0)
        assert np.allclose(probs[probs > 0], 1.0 / 15)

    def test_transpose_diagonal_rows_are_empty(self):
        topology = MeshTopology(4, 4)
        probs = destination_probabilities("transpose", topology)
        for i in range(4):
            assert probs[topology.node_id((i, i))].sum() == 0
        off = probs.sum(axis=1)
        assert np.all((off == 0) | (off == 1))

    def test_hotspot_mass(self):
        topology = MeshTopology(4, 4)
        spots = [(1, 1), (2, 2)]
        probs = destination_probabilities(
            "hotspot", topology, hotspots=spots, hotspot_fraction=0.6
        )
        assert np.allclose(probs.sum(axis=1), 1.0)
        spot_ids = [topology.node_id(s) for s in spots]
        # A non-hotspot source sends >= 60% of its traffic to the spots.
        source = topology.node_id((0, 0))
        assert probs[source, spot_ids].sum() > 0.6

    def test_neighbor_rows(self):
        topology = MeshTopology(4, 4)
        probs = destination_probabilities("neighbor", topology)
        corner = topology.node_id((0, 0))
        assert np.count_nonzero(probs[corner]) == 2
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic pattern"):
            destination_probabilities("nope", MeshTopology(4, 4))

    def test_hotspot_requires_spots(self):
        with pytest.raises(ValueError, match="hotspot"):
            destination_probabilities("hotspot", MeshTopology(4, 4))
