"""Tests for the high-level NoC simulation driver and statistics."""

import pytest

from repro.noc.flit import Packet
from repro.noc.simulator import NocSimulator
from repro.noc.stats import LatencyStats, NetworkStats
from repro.noc.traffic import UniformRandomTraffic


class TestRunTraffic:
    def test_delivers_offered_traffic(self, simulator4, mesh4):
        traffic = UniformRandomTraffic(mesh4, injection_rate=0.05, seed=2)
        result = simulator4.run_traffic(traffic, cycles=300, warmup_cycles=0)
        assert result.drained
        assert result.stats.packets_ejected > 0
        assert result.stats.packets_ejected == result.stats.packets_injected

    def test_warmup_traffic_drains_into_measurement(self, simulator4, mesh4):
        # Packets injected during warm-up may eject during measurement, so the
        # ejected count can exceed the measured injections but never by more
        # than what the warm-up left in flight.
        traffic = UniformRandomTraffic(mesh4, injection_rate=0.05, seed=2)
        result = simulator4.run_traffic(traffic, cycles=300, warmup_cycles=50)
        assert result.drained
        assert result.stats.packets_ejected >= result.stats.packets_injected

    def test_average_latency_reasonable(self, simulator4, mesh4):
        traffic = UniformRandomTraffic(mesh4, injection_rate=0.02, seed=3)
        result = simulator4.run_traffic(traffic, cycles=400)
        # At very low load, latency should be close to the unloaded bound:
        # a few cycles per hop plus serialisation.
        assert 2 <= result.average_latency <= 30

    def test_latency_increases_with_load(self, mesh4):
        low = NocSimulator(mesh4).run_traffic(
            UniformRandomTraffic(mesh4, injection_rate=0.02, seed=4), cycles=400
        )
        high = NocSimulator(mesh4).run_traffic(
            UniformRandomTraffic(mesh4, injection_rate=0.25, seed=4), cycles=400
        )
        assert high.average_latency > low.average_latency

    def test_activity_collected(self, simulator4, mesh4):
        traffic = UniformRandomTraffic(mesh4, injection_rate=0.1, seed=5)
        result = simulator4.run_traffic(traffic, cycles=200)
        activity = result.activity_per_node()
        assert len(activity) == mesh4.num_nodes
        assert sum(activity.values()) > 0


class TestRunPackets:
    def test_single_batch(self, simulator4):
        packets = [
            Packet(source=(0, 0), destination=(3, 3), size_flits=4),
            Packet(source=(3, 0), destination=(0, 3), size_flits=4),
        ]
        result = simulator4.run_packets(packets)
        assert result.stats.packets_ejected == 2
        assert result.cycles > 0

    def test_reset_between_batches(self, simulator4):
        first = simulator4.run_packets(
            [Packet(source=(0, 0), destination=(1, 0), size_flits=2)]
        )
        simulator4.reset()
        second = simulator4.run_packets(
            [Packet(source=(0, 0), destination=(1, 0), size_flits=2)]
        )
        assert first.cycles == second.cycles
        assert second.stats.packets_ejected == 1


class TestLatencyStats:
    def test_streaming_statistics(self):
        stats = LatencyStats()
        for value in [5, 10, 15]:
            stats.record(value)
        assert stats.count == 3
        assert stats.mean == 10
        assert stats.minimum == 5
        assert stats.maximum == 15

    def test_empty_mean_is_zero(self):
        assert LatencyStats().mean == 0.0

    def test_merge(self):
        a = LatencyStats()
        b = LatencyStats()
        a.record(4)
        b.record(8)
        merged = a.merge(b)
        assert merged.count == 2
        assert merged.mean == 6
        assert merged.minimum == 4
        assert merged.maximum == 8


class TestNetworkStats:
    def test_summary_keys(self):
        stats = NetworkStats()
        summary = stats.summary()
        assert "avg_latency_cycles" in summary
        assert "throughput_flits_per_cycle" in summary

    def test_throughput_zero_when_no_cycles(self):
        stats = NetworkStats()
        assert stats.throughput_flits_per_cycle == 0.0

    def test_in_flight_accounting(self):
        stats = NetworkStats()
        packet = Packet(source=(0, 0), destination=(1, 1), size_flits=2)
        stats.record_injection(packet)
        assert stats.in_flight_packets == 1
        packet.ejection_cycle = 10
        stats.record_ejection(packet)
        assert stats.in_flight_packets == 0
