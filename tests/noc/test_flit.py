"""Tests for packets and flits."""

import pytest

from repro.noc.flit import Flit, FlitType, Packet, PacketClass, reset_packet_ids


class TestPacket:
    def test_basic_fields(self):
        packet = Packet(source=(0, 0), destination=(3, 2), size_flits=4)
        assert packet.source == (0, 0)
        assert packet.destination == (3, 2)
        assert packet.packet_class == PacketClass.DATA

    def test_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            Packet(source=(0, 0), destination=(1, 1), size_flits=0)

    def test_hop_distance(self):
        packet = Packet(source=(1, 1), destination=(3, 0), size_flits=2)
        assert packet.hop_distance == 3

    def test_latency_none_until_ejected(self):
        packet = Packet(source=(0, 0), destination=(1, 1), size_flits=2, injection_cycle=10)
        assert packet.latency is None
        packet.ejection_cycle = 25
        assert packet.latency == 15

    def test_unique_ids(self):
        a = Packet(source=(0, 0), destination=(1, 1), size_flits=1)
        b = Packet(source=(0, 0), destination=(1, 1), size_flits=1)
        assert a.packet_id != b.packet_id

    def test_reset_packet_ids(self):
        reset_packet_ids()
        a = Packet(source=(0, 0), destination=(1, 1), size_flits=1)
        assert a.packet_id == 0


class TestFlitSegmentation:
    def test_single_flit_packet(self):
        packet = Packet(source=(0, 0), destination=(1, 1), size_flits=1)
        flits = packet.make_flits()
        assert len(flits) == 1
        assert flits[0].flit_type == FlitType.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_two_flit_packet(self):
        packet = Packet(source=(0, 0), destination=(1, 1), size_flits=2)
        flits = packet.make_flits()
        assert [f.flit_type for f in flits] == [FlitType.HEAD, FlitType.TAIL]

    def test_multi_flit_packet_structure(self):
        packet = Packet(source=(0, 0), destination=(1, 1), size_flits=5)
        flits = packet.make_flits()
        assert len(flits) == 5
        assert flits[0].flit_type == FlitType.HEAD
        assert flits[-1].flit_type == FlitType.TAIL
        assert all(f.flit_type == FlitType.BODY for f in flits[1:-1])
        assert [f.index for f in flits] == list(range(5))

    def test_flits_reference_packet(self):
        packet = Packet(source=(2, 2), destination=(0, 1), size_flits=3)
        for flit in packet.make_flits():
            assert flit.packet is packet
            assert flit.source == (2, 2)
            assert flit.destination == (0, 1)

    def test_head_tail_flags(self):
        assert FlitType.HEAD.is_head and not FlitType.HEAD.is_tail
        assert FlitType.TAIL.is_tail and not FlitType.TAIL.is_head
        assert not FlitType.BODY.is_head and not FlitType.BODY.is_tail
