"""Tests for flit buffers and credit counters."""

import pytest

from repro.noc.buffer import BufferOverflowError, CreditCounter, FlitBuffer
from repro.noc.flit import Packet


def _flit():
    return Packet(source=(0, 0), destination=(1, 1), size_flits=1).make_flits()[0]


class TestFlitBuffer:
    def test_empty_on_creation(self):
        buf = FlitBuffer(capacity=4)
        assert buf.is_empty
        assert not buf.is_full
        assert buf.occupancy == 0
        assert buf.free_slots == 4

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlitBuffer(capacity=0)

    def test_fifo_order(self):
        buf = FlitBuffer(capacity=4)
        flits = [_flit() for _ in range(3)]
        for flit in flits:
            buf.push(flit)
        assert [buf.pop() for _ in range(3)] == flits

    def test_peek_does_not_remove(self):
        buf = FlitBuffer(capacity=2)
        flit = _flit()
        buf.push(flit)
        assert buf.peek() is flit
        assert buf.occupancy == 1

    def test_peek_empty_returns_none(self):
        assert FlitBuffer(capacity=1).peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FlitBuffer(capacity=1).pop()

    def test_overflow_raises(self):
        buf = FlitBuffer(capacity=1)
        buf.push(_flit())
        assert buf.is_full
        with pytest.raises(BufferOverflowError):
            buf.push(_flit())

    def test_clear(self):
        buf = FlitBuffer(capacity=3)
        buf.push(_flit())
        buf.push(_flit())
        buf.clear()
        assert buf.is_empty

    def test_iteration_and_len(self):
        buf = FlitBuffer(capacity=3)
        flits = [_flit(), _flit()]
        for flit in flits:
            buf.push(flit)
        assert list(buf) == flits
        assert len(buf) == 2


class TestCreditCounter:
    def test_starts_full(self):
        credits = CreditCounter(capacity=4)
        assert credits.credits == 4
        assert credits.has_credit

    def test_consume_and_release(self):
        credits = CreditCounter(capacity=2)
        credits.consume()
        credits.consume()
        assert not credits.has_credit
        credits.release()
        assert credits.credits == 1

    def test_underflow_raises(self):
        credits = CreditCounter(capacity=1)
        credits.consume()
        with pytest.raises(RuntimeError):
            credits.consume()

    def test_overflow_raises(self):
        credits = CreditCounter(capacity=1)
        with pytest.raises(RuntimeError):
            credits.release()

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CreditCounter(capacity=0)
