"""Tests for the mesh topology."""

import pytest

from repro.noc.topology import Direction, MeshTopology


class TestConstruction:
    def test_dimensions(self, mesh4):
        assert mesh4.width == 4
        assert mesh4.height == 4
        assert mesh4.num_nodes == 16

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 3)
        with pytest.raises(ValueError):
            MeshTopology(3, -1)

    def test_square_detection(self, mesh4, mesh3x2):
        assert mesh4.is_square
        assert not mesh3x2.is_square

    def test_center_node_parity(self, mesh4, mesh5):
        assert not mesh4.has_center_node
        assert mesh5.has_center_node
        assert mesh5.center == (2, 2)


class TestCoordinateConversion:
    def test_node_id_round_trip(self, mesh5):
        for coord in mesh5.coordinates():
            assert mesh5.coordinate(mesh5.node_id(coord)) == coord

    def test_row_major_order(self, mesh4):
        assert mesh4.node_id((0, 0)) == 0
        assert mesh4.node_id((3, 0)) == 3
        assert mesh4.node_id((0, 1)) == 4
        assert mesh4.node_id((3, 3)) == 15

    def test_out_of_range_coordinate(self, mesh4):
        with pytest.raises(ValueError):
            mesh4.node_id((4, 0))
        with pytest.raises(ValueError):
            mesh4.node_id((0, -1))

    def test_out_of_range_node_id(self, mesh4):
        with pytest.raises(ValueError):
            mesh4.coordinate(16)

    def test_coordinates_cover_all_nodes(self, mesh3x2):
        coords = list(mesh3x2.coordinates())
        assert len(coords) == 6
        assert len(set(coords)) == 6


class TestNeighbors:
    def test_interior_degree(self, mesh4):
        assert mesh4.degree((1, 1)) == 4

    def test_corner_degree(self, mesh4):
        assert mesh4.degree((0, 0)) == 2
        assert mesh4.degree((3, 3)) == 2

    def test_edge_degree(self, mesh4):
        assert mesh4.degree((1, 0)) == 3

    def test_neighbor_directions(self, mesh4):
        neighbors = mesh4.neighbors((1, 1))
        assert neighbors[Direction.EAST] == (2, 1)
        assert neighbors[Direction.WEST] == (0, 1)
        assert neighbors[Direction.NORTH] == (1, 2)
        assert neighbors[Direction.SOUTH] == (1, 0)

    def test_neighbor_raises_outside(self, mesh4):
        with pytest.raises(ValueError):
            mesh4.neighbor((0, 0), Direction.WEST)

    def test_neighbor_rejects_local(self, mesh4):
        with pytest.raises(ValueError):
            mesh4.neighbor((1, 1), Direction.LOCAL)

    def test_opposite_directions(self):
        assert Direction.EAST.opposite == Direction.WEST
        assert Direction.NORTH.opposite == Direction.SOUTH
        assert Direction.LOCAL.opposite == Direction.LOCAL

    def test_links_count(self, mesh4):
        # 2 * (W-1) * H horizontal + 2 * W * (H-1) vertical unidirectional links.
        assert len(mesh4.links()) == 2 * 3 * 4 + 2 * 4 * 3


class TestDistances:
    def test_manhattan_distance(self, mesh5):
        assert mesh5.manhattan_distance((0, 0), (4, 4)) == 8
        assert mesh5.manhattan_distance((2, 2), (2, 2)) == 0

    def test_diameter(self, mesh4, mesh5):
        assert mesh4.diameter() == 6
        assert mesh5.diameter() == 8

    def test_bisection_width(self, mesh4, mesh3x2):
        assert mesh4.bisection_width() == 4
        assert mesh3x2.bisection_width() == 2

    def test_average_distance_positive(self, mesh4):
        avg = mesh4.average_distance()
        assert 0 < avg <= mesh4.diameter()

    def test_single_node_average_distance(self):
        assert MeshTopology(1, 1).average_distance() == 0.0
