"""Tests for the steady-state and transient thermal solvers."""

import numpy as np
import pytest

from repro.thermal.floorplan import mesh_floorplan
from repro.thermal.package import ThermalPackage
from repro.thermal.rc_model import build_thermal_network
from repro.thermal.solver import ThermalSolver


@pytest.fixture
def solver4(mesh4):
    return ThermalSolver(build_thermal_network(mesh_floorplan(mesh4)))


def _uniform_power(mesh, watts):
    return {f"PE_{x}_{y}": watts for (x, y) in mesh.coordinates()}


class TestSteadyState:
    def test_zero_power_gives_ambient(self, solver4, mesh4):
        result = solver4.steady_state(_uniform_power(mesh4, 0.0))
        assert result.peak_celsius == pytest.approx(40.0, abs=1e-6)
        assert result.spread_celsius == pytest.approx(0.0, abs=1e-9)

    def test_uniform_power_above_ambient(self, solver4, mesh4):
        result = solver4.steady_state(_uniform_power(mesh4, 2.0))
        assert result.peak_celsius > 45.0
        assert result.min_celsius > 40.0
        # A uniform map should be nearly spatially uniform (edge effects only).
        assert result.spread_celsius < 2.0

    def test_linearity_in_power(self, solver4, mesh4):
        one = solver4.steady_state(_uniform_power(mesh4, 1.0))
        two = solver4.steady_state(_uniform_power(mesh4, 2.0))
        rise_one = one.peak_celsius - 40.0
        rise_two = two.peak_celsius - 40.0
        assert rise_two == pytest.approx(2 * rise_one, rel=1e-6)

    def test_hotspot_is_hottest_block(self, solver4, mesh4):
        power = _uniform_power(mesh4, 1.0)
        power["PE_2_1"] = 5.0
        result = solver4.steady_state(power)
        assert result.hottest_block() == "PE_2_1"
        assert result.spread_celsius > 2.0

    def test_superposition(self, solver4, mesh4):
        """The RC network is linear: temperatures superpose (above ambient)."""
        power_a = {"PE_0_0": 3.0}
        power_b = {"PE_3_3": 2.0}
        combined = {"PE_0_0": 3.0, "PE_3_3": 2.0}
        t_a = solver4.steady_state(power_a)
        t_b = solver4.steady_state(power_b)
        t_ab = solver4.steady_state(combined)
        for name in t_ab.block_celsius:
            rise = (t_a.block_celsius[name] - 40.0) + (t_b.block_celsius[name] - 40.0)
            assert t_ab.block_celsius[name] - 40.0 == pytest.approx(rise, rel=1e-6)

    def test_temperature_map_statistics(self, solver4, mesh4):
        result = solver4.steady_state(_uniform_power(mesh4, 2.0))
        assert result.min_celsius <= result.mean_celsius <= result.peak_celsius
        assert set(result.as_dict()) == {f"PE_{x}_{y}" for x, y in mesh4.coordinates()}


class TestTransient:
    def test_starts_at_ambient_and_heats(self, solver4, mesh4):
        result = solver4.transient(_uniform_power(mesh4, 2.0), duration_s=0.005)
        first = result.peak_series()[0]
        last = result.peak_series()[-1]
        assert first == pytest.approx(40.0, abs=0.5)
        assert last > first

    def test_converges_towards_steady_state(self, solver4, mesh4):
        power = _uniform_power(mesh4, 2.0)
        steady = solver4.steady_state(power)
        # Start from the warm state: transient must stay there.
        warm = solver4.warm_state(power)
        result = solver4.transient(power, duration_s=0.01, initial_state=warm)
        assert result.final_map().peak_celsius == pytest.approx(
            steady.peak_celsius, abs=0.05
        )

    def test_cooling_when_power_removed(self, solver4, mesh4):
        power = _uniform_power(mesh4, 3.0)
        warm = solver4.warm_state(power)
        result = solver4.transient(
            _uniform_power(mesh4, 0.0), duration_s=0.02, initial_state=warm
        )
        assert result.peak_series()[-1] < result.peak_series()[0]

    def test_monotone_heating_from_cold(self, solver4, mesh4):
        result = solver4.transient(_uniform_power(mesh4, 2.0), duration_s=0.002)
        peaks = result.peak_series()
        assert np.all(np.diff(peaks) >= -1e-9)

    def test_invalid_duration(self, solver4, mesh4):
        with pytest.raises(ValueError):
            solver4.transient(_uniform_power(mesh4, 1.0), duration_s=0.0)

    def test_invalid_initial_state_shape(self, solver4, mesh4):
        with pytest.raises(ValueError):
            solver4.transient(
                _uniform_power(mesh4, 1.0), duration_s=1e-3, initial_state=np.zeros(3)
            )

    def test_transient_sequence_continuity(self, solver4, mesh4):
        hot = _uniform_power(mesh4, 3.0)
        cool = _uniform_power(mesh4, 1.0)
        result = solver4.transient_sequence([(0.002, hot), (0.002, cool)])
        assert result.times_s[-1] == pytest.approx(0.004, rel=1e-6)
        # Temperatures never jump discontinuously by more than a sane bound
        # between adjacent samples.
        peaks = result.peak_series()
        assert np.max(np.abs(np.diff(peaks))) < 5.0

    def test_transient_sequence_requires_intervals(self, solver4):
        with pytest.raises(ValueError):
            solver4.transient_sequence([])

    def test_record_every_reduces_samples(self, solver4, mesh4):
        dense = solver4.transient(
            _uniform_power(mesh4, 1.0), duration_s=1e-3, time_step_s=1e-5
        )
        sparse = solver4.transient(
            _uniform_power(mesh4, 1.0), duration_s=1e-3, time_step_s=1e-5, record_every=10
        )
        assert len(sparse.times_s) < len(dense.times_s)


def _alternating_intervals(mesh, epochs=41, duration=1e-3):
    hot = _uniform_power(mesh, 3.0)
    cool = _uniform_power(mesh, 1.0)
    return [(duration, hot if epoch % 2 else cool) for epoch in range(epochs)]


class TestPropagatorCache:
    def test_cached_matches_uncached_reference(self, mesh4):
        """Caching must not change the integrated temperatures at all.

        The uncached solver refactorises the step matrix on every call — the
        seed behaviour — so agreement within 1e-9 kelvin on every node state
        is the regression bar for the cache.
        """
        network = build_thermal_network(mesh_floorplan(mesh4))
        reference = ThermalSolver(network, cache_propagators=False)
        cached = ThermalSolver(network)
        intervals = _alternating_intervals(mesh4)
        expected = reference.transient_sequence(intervals)
        actual = cached.transient_sequence(intervals)
        assert np.allclose(
            expected.final_state_kelvin, actual.final_state_kelvin, atol=1e-9
        )
        for name in expected.block_celsius:
            assert np.allclose(
                expected.block_celsius[name], actual.block_celsius[name], atol=1e-9
            )

    def test_one_factorization_per_distinct_time_step(self, solver4, mesh4):
        """Regression: a 41-interval sequence with one dt factorises once."""
        assert solver4.step_factorization_count == 0
        solver4.transient_sequence(_alternating_intervals(mesh4), time_step_s=5e-6)
        assert solver4.step_factorization_count == 1
        # Same dt again: still one factorisation.
        solver4.transient(_uniform_power(mesh4, 2.0), duration_s=1e-3, time_step_s=5e-6)
        assert solver4.step_factorization_count == 1
        # A second distinct dt adds exactly one more.
        solver4.transient(_uniform_power(mesh4, 2.0), duration_s=1e-3, time_step_s=1e-5)
        assert solver4.step_factorization_count == 2

    def test_uncached_solver_counts_every_factorization(self, mesh4):
        network = build_thermal_network(mesh_floorplan(mesh4))
        solver = ThermalSolver(network, cache_propagators=False)
        intervals = _alternating_intervals(mesh4, epochs=5)
        solver.transient_sequence(intervals, time_step_s=5e-6)
        assert solver.step_factorization_count == 5


class TestSpectralMethod:
    def test_matches_euler_trajectory(self, solver4, mesh4):
        """Spectral sampling reproduces the implicit-Euler iterates to 1e-9."""
        intervals = _alternating_intervals(mesh4, epochs=11)
        euler = solver4.transient_sequence(intervals)
        spectral = solver4.transient_sequence(intervals, method="spectral")
        assert np.allclose(euler.times_s, spectral.times_s)
        assert np.allclose(
            euler.final_state_kelvin, spectral.final_state_kelvin, atol=1e-9
        )
        for name in euler.block_celsius:
            assert np.allclose(
                euler.block_celsius[name], spectral.block_celsius[name], atol=1e-9
            )

    def test_matches_euler_with_record_every(self, solver4, mesh4):
        power = _uniform_power(mesh4, 2.5)
        euler = solver4.transient(
            power, duration_s=2e-3, time_step_s=1e-5, record_every=7
        )
        spectral = solver4.transient(
            power, duration_s=2e-3, time_step_s=1e-5, record_every=7, method="spectral"
        )
        assert np.allclose(euler.times_s, spectral.times_s)
        for name in euler.block_celsius:
            assert np.allclose(
                euler.block_celsius[name], spectral.block_celsius[name], atol=1e-9
            )

    def test_spectral_converges_to_steady_state(self, solver4, mesh4):
        """A horizon far past the package time constant lands on steady state.

        The spectral sampler makes such horizons cheap: 200 coarse implicit
        steps instead of millions of fine ones (the implicit-Euler fixed
        point does not depend on the step size).
        """
        power = _uniform_power(mesh4, 2.0)
        steady = solver4.steady_state(power)
        result = solver4.transient(
            power, duration_s=1e5, time_step_s=500.0, method="spectral"
        )
        assert result.final_map().peak_celsius == pytest.approx(
            steady.peak_celsius, abs=0.05
        )

    def test_unknown_method_rejected(self, solver4, mesh4):
        with pytest.raises(ValueError, match="method"):
            solver4.transient(_uniform_power(mesh4, 1.0), duration_s=1e-3, method="rk4")


class TestSpectralSequenceJump:
    """The vectorised whole-trace spectral path (one eigenbasis transform)."""

    def test_shared_dt_takes_jump_path(self, solver4, mesh4):
        intervals = _alternating_intervals(mesh4, epochs=9)
        solver4.transient_sequence(intervals, method="spectral")
        assert solver4.spectral_jump_count == 1
        assert solver4.transient_sequence_count == 1

    def test_mixed_dt_falls_back_to_loop(self, solver4, mesh4):
        intervals = _alternating_intervals(mesh4, epochs=4)
        intervals.append((7e-3, _uniform_power(mesh4, 1.5)))
        result = solver4.transient_sequence(intervals, method="spectral")
        assert solver4.spectral_jump_count == 0
        assert len(result.interval_ranges) == 5

    def test_euler_never_jumps(self, solver4, mesh4):
        solver4.transient_sequence(_alternating_intervals(mesh4, epochs=5))
        assert solver4.spectral_jump_count == 0

    def test_jump_matches_per_interval_spectral_loop(self, solver4, mesh4):
        """<1e-9 parity with chaining transient(method="spectral") by hand.

        The hand-rolled chain is exactly what transient_sequence did before
        the vectorised jump: one weight projection per interval with state
        carried across boundaries.
        """
        intervals = _alternating_intervals(mesh4, epochs=13)
        jumped = solver4.transient_sequence(intervals, method="spectral")
        assert solver4.spectral_jump_count == 1

        state = None
        looped_blocks = {name: [] for name in solver4.network.block_node_index}
        for duration, power in intervals:
            step = solver4.transient(
                power, duration, initial_state=state, method="spectral"
            )
            state = step.final_state_kelvin
            for name, series in step.block_celsius.items():
                looped_blocks[name].append(series)

        for name, chunks in looped_blocks.items():
            reference = np.concatenate(chunks)
            assert np.allclose(jumped.block_celsius[name], reference, atol=1e-9)
        assert np.allclose(jumped.final_state_kelvin, state, atol=1e-9)

    def test_jump_with_warm_start_and_record_every(self, solver4, mesh4):
        intervals = _alternating_intervals(mesh4, epochs=7)
        warm = solver4.warm_state(_uniform_power(mesh4, 1.2))
        jumped = solver4.transient_sequence(
            intervals, initial_state=warm, record_every=3, method="spectral"
        )
        euler = solver4.transient_sequence(
            intervals, initial_state=warm, record_every=3
        )
        assert np.allclose(jumped.times_s, euler.times_s)
        assert jumped.interval_ranges == euler.interval_ranges
        for name in euler.block_celsius:
            assert np.allclose(
                jumped.block_celsius[name], euler.block_celsius[name], atol=1e-9
            )

    def test_jump_respects_explicit_time_step(self, solver4, mesh4):
        intervals = [
            (1e-3, _uniform_power(mesh4, 2.0)),
            (2e-3, _uniform_power(mesh4, 0.5)),
        ]
        # Different durations but one explicit dt: still eligible to jump.
        jumped = solver4.transient_sequence(
            intervals, time_step_s=2.5e-4, method="spectral"
        )
        assert solver4.spectral_jump_count == 1
        euler = solver4.transient_sequence(intervals, time_step_s=2.5e-4)
        for name in euler.block_celsius:
            assert np.allclose(
                jumped.block_celsius[name], euler.block_celsius[name], atol=1e-9
            )


class TestThreadPrivateFactors:
    """Concurrent solves must never share LU factor memory.

    ``lu_solve`` against shared ``(lu, piv)`` arrays is not reentrant on
    every BLAS build: two threads solving the same chip's factorisation
    concurrently returned corrupted temperatures.  Every solve therefore
    goes through a per-thread private copy of the factor.
    """

    def test_solves_use_a_private_copy(self, solver4):
        private = solver4._a_factor()
        assert private[0] is not solver4._A_factor[0]
        assert private[1] is not solver4._A_factor[1]
        assert np.array_equal(private[0], solver4._A_factor[0])
        assert np.array_equal(private[1], solver4._A_factor[1])

    def test_copy_is_cached_per_thread(self, solver4):
        assert solver4._a_factor()[0] is solver4._a_factor()[0]

    def test_each_thread_gets_its_own_copy(self, solver4):
        import threading

        seen = {}

        def grab(name):
            seen[name] = solver4._a_factor()

        threads = [
            threading.Thread(target=grab, args=(index,)) for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen[0][0] is not seen[1][0]
        assert np.array_equal(seen[0][0], seen[1][0])

    def test_replaced_factor_refreshes_the_copy(self, solver4):
        stale = solver4._a_factor()
        from scipy.linalg import lu_factor

        solver4._A_factor = lu_factor(solver4._A)
        fresh = solver4._a_factor()
        assert fresh[0] is not stale[0]

    def test_concurrent_batches_match_serial(self, solver4, mesh4):
        import concurrent.futures as cf

        vector = solver4.network.power_vector(_uniform_power(mesh4, 2.0))
        batch = np.vstack([vector * scale for scale in (0.5, 1.0, 1.5)])
        expected = solver4.steady_state_batch(batch)
        for _trial in range(20):
            with cf.ThreadPoolExecutor(max_workers=2) as pool:
                outs = list(
                    pool.map(lambda _i: solver4.steady_state_batch(batch), range(2))
                )
            for out in outs:
                assert np.array_equal(out, expected)

    def test_pickled_solver_recreates_the_thread_store(self, solver4):
        import pickle

        clone = pickle.loads(pickle.dumps(solver4))
        private = clone._a_factor()
        assert np.array_equal(private[0], solver4._A_factor[0])
