"""Tests for floorplan construction."""

import math

import pytest

from repro.noc.topology import MeshTopology
from repro.thermal.floorplan import Block, Floorplan, block_name_for, mesh_floorplan


class TestBlock:
    def test_area_and_center(self):
        block = Block("b", x=0.0, y=0.0, width=2e-3, height=1e-3)
        assert block.area == pytest.approx(2e-6)
        assert block.center == (1e-3, 0.5e-3)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            Block("b", 0, 0, 0, 1)
        with pytest.raises(ValueError):
            Block("b", 0, 0, 1, -1)

    def test_shared_edge_side_by_side(self):
        a = Block("a", 0, 0, 1.0, 1.0)
        b = Block("b", 1.0, 0, 1.0, 1.0)
        assert a.shared_edge_length(b) == pytest.approx(1.0)
        assert b.shared_edge_length(a) == pytest.approx(1.0)

    def test_shared_edge_stacked(self):
        a = Block("a", 0, 0, 2.0, 1.0)
        b = Block("b", 0.5, 1.0, 1.0, 1.0)
        assert a.shared_edge_length(b) == pytest.approx(1.0)

    def test_no_shared_edge_when_apart(self):
        a = Block("a", 0, 0, 1.0, 1.0)
        b = Block("b", 3.0, 3.0, 1.0, 1.0)
        assert a.shared_edge_length(b) == 0.0

    def test_diagonal_touch_is_not_adjacency(self):
        a = Block("a", 0, 0, 1.0, 1.0)
        b = Block("b", 1.0, 1.0, 1.0, 1.0)
        assert a.shared_edge_length(b) == 0.0


class TestFloorplan:
    def test_requires_blocks(self):
        with pytest.raises(ValueError):
            Floorplan([])

    def test_unique_names(self):
        blocks = [Block("a", 0, 0, 1, 1), Block("a", 1, 0, 1, 1)]
        with pytest.raises(ValueError):
            Floorplan(blocks)

    def test_total_area(self):
        plan = Floorplan([Block("a", 0, 0, 1, 1), Block("b", 1, 0, 2, 1)])
        assert plan.total_area == pytest.approx(3.0)

    def test_bounding_box(self):
        plan = Floorplan([Block("a", 0, 0, 1, 1), Block("b", 1, 0, 1, 2)])
        assert plan.bounding_box == (0, 0, 2, 2)
        assert plan.die_width == 2
        assert plan.die_height == 2

    def test_adjacency_keys_sorted(self):
        plan = Floorplan([Block("b", 1, 0, 1, 1), Block("a", 0, 0, 1, 1)])
        adjacency = plan.adjacency()
        assert ("a", "b") in adjacency

    def test_overlap_detection(self):
        plan = Floorplan([Block("a", 0, 0, 2, 2), Block("b", 1, 1, 2, 2)])
        with pytest.raises(ValueError):
            plan.validate_no_overlap()

    def test_touching_blocks_do_not_overlap(self):
        plan = Floorplan([Block("a", 0, 0, 1, 1), Block("b", 1, 0, 1, 1)])
        plan.validate_no_overlap()


class TestMeshFloorplan:
    def test_block_per_node(self, mesh4):
        plan = mesh_floorplan(mesh4)
        assert len(plan) == 16

    def test_unit_area_matches_paper(self, mesh4):
        plan = mesh_floorplan(mesh4, unit_area_mm2=4.36)
        for block in plan:
            assert block.area == pytest.approx(4.36e-6, rel=1e-9)

    def test_total_area_scales_with_mesh(self, mesh5):
        plan = mesh_floorplan(mesh5, unit_area_mm2=4.36)
        assert plan.total_area == pytest.approx(25 * 4.36e-6, rel=1e-9)

    def test_block_naming(self, mesh4):
        plan = mesh_floorplan(mesh4)
        assert plan.block(block_name_for((2, 3))).name == "PE_2_3"

    def test_adjacency_count(self, mesh4):
        plan = mesh_floorplan(mesh4)
        # Undirected adjacencies = (W-1)*H + W*(H-1).
        assert len(plan.adjacency()) == 3 * 4 + 4 * 3

    def test_rejects_bad_area(self, mesh4):
        with pytest.raises(ValueError):
            mesh_floorplan(mesh4, unit_area_mm2=0)
