"""Tests for the HotSpot-style facade."""

import numpy as np
import pytest

from repro.noc.topology import MeshTopology
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.package import ThermalPackage


class TestSteadyStateFacade:
    def test_ambient_default(self, thermal4):
        assert thermal4.ambient_celsius == 40.0

    def test_keyed_by_coordinate(self, thermal4, uniform_power4, mesh4):
        temps = thermal4.steady_state_by_coord(uniform_power4)
        assert set(temps) == set(mesh4.coordinates())
        assert all(t > 40.0 for t in temps.values())

    def test_peak_temperature_shortcut(self, thermal4, uniform_power4):
        full = thermal4.steady_state(uniform_power4)
        assert thermal4.peak_temperature(uniform_power4) == pytest.approx(full.peak_celsius)

    def test_rejects_outside_coordinates(self, thermal4):
        with pytest.raises(ValueError):
            thermal4.steady_state({(9, 9): 1.0})

    def test_hotspot_location_matches_power(self, thermal4, uniform_power4):
        power = dict(uniform_power4)
        power[(3, 0)] = 8.0
        temps = thermal4.steady_state_by_coord(power)
        assert max(temps, key=temps.get) == (3, 0)

    def test_more_power_hotter(self, thermal4, uniform_power4):
        low = thermal4.peak_temperature(uniform_power4)
        high = thermal4.peak_temperature({c: 3.0 for c in uniform_power4})
        assert high > low

    def test_custom_ambient(self, mesh4, uniform_power4):
        cold = HotSpotModel(mesh4, package=ThermalPackage(ambient_celsius=20.0))
        hot = HotSpotModel(mesh4, package=ThermalPackage(ambient_celsius=40.0))
        delta = hot.peak_temperature(uniform_power4) - cold.peak_temperature(uniform_power4)
        assert delta == pytest.approx(20.0, abs=1e-6)


class TestTransientFacade:
    def test_transient_by_coordinate_power(self, thermal4, uniform_power4):
        result = thermal4.transient(uniform_power4, duration_s=1e-3)
        assert result.times_s[-1] == pytest.approx(1e-3, rel=1e-6)
        assert result.peak_celsius >= 40.0

    def test_warm_state_round_trip(self, thermal4, uniform_power4):
        warm = thermal4.warm_state(uniform_power4)
        steady = thermal4.steady_state(uniform_power4)
        result = thermal4.transient(uniform_power4, duration_s=1e-3, initial_state=warm)
        assert result.final_map().peak_celsius == pytest.approx(steady.peak_celsius, abs=0.01)

    def test_transient_sequence_facade(self, thermal4, uniform_power4):
        hot = {c: 3.0 for c in uniform_power4}
        result = thermal4.transient_sequence([(5e-4, uniform_power4), (5e-4, hot)])
        assert result.times_s[-1] == pytest.approx(1e-3, rel=1e-6)

    def test_time_constant_positive(self, thermal4):
        tau = thermal4.thermal_time_constant_s()
        assert 1e-5 < tau < 1.0


class TestMeshSizes:
    def test_5x5_model(self, mesh5):
        model = HotSpotModel(mesh5)
        power = {c: 1.5 for c in mesh5.coordinates()}
        temps = model.steady_state_by_coord(power)
        assert len(temps) == 25

    def test_larger_chip_same_per_unit_power_is_hotter(self, mesh4, mesh5):
        """More units at the same per-unit power dissipate more total heat."""
        p4 = HotSpotModel(mesh4).peak_temperature({c: 2.0 for c in mesh4.coordinates()})
        p5 = HotSpotModel(mesh5).peak_temperature({c: 2.0 for c in mesh5.coordinates()})
        assert p5 > p4
