"""Tests for the grid-mode (refined) thermal model."""

import pytest

from repro.thermal.floorplan import mesh_floorplan
from repro.thermal.grid import GridThermalModel, parent_block_name, refine_floorplan
from repro.thermal.hotspot import HotSpotModel


class TestRefineFloorplan:
    def test_cell_count(self, mesh4):
        plan = mesh_floorplan(mesh4)
        refined = refine_floorplan(plan, resolution=3)
        assert len(refined) == 16 * 9

    def test_resolution_one_is_identity(self, mesh4):
        plan = mesh_floorplan(mesh4)
        refined = refine_floorplan(plan, resolution=1)
        assert refined.names() == plan.names()

    def test_total_area_preserved(self, mesh4):
        plan = mesh_floorplan(mesh4)
        refined = refine_floorplan(plan, resolution=4)
        assert refined.total_area == pytest.approx(plan.total_area, rel=1e-9)

    def test_cells_do_not_overlap(self, mesh5):
        refined = refine_floorplan(mesh_floorplan(mesh5), resolution=2)
        refined.validate_no_overlap()

    def test_parent_names_recoverable(self, mesh4):
        refined = refine_floorplan(mesh_floorplan(mesh4), resolution=2)
        parents = {parent_block_name(cell.name) for cell in refined}
        assert parents == set(mesh_floorplan(mesh4).names())

    def test_rejects_bad_resolution(self, mesh4):
        with pytest.raises(ValueError):
            refine_floorplan(mesh_floorplan(mesh4), resolution=0)


class TestGridThermalModel:
    @pytest.fixture(scope="class")
    def grid3(self):
        from repro.noc.topology import MeshTopology

        return GridThermalModel(MeshTopology(4, 4), resolution=3)

    def test_num_cells(self, grid3):
        assert grid3.num_cells == 16 * 9

    def test_uniform_power_nearly_uniform_temperature(self, grid3, mesh4):
        power = {coord: 2.0 for coord in mesh4.coordinates()}
        result = grid3.steady_state(power)
        assert result.peak_celsius - min(result.block_mean_celsius.values()) < 2.0

    def test_hotspot_block_is_hottest(self, grid3, mesh4):
        power = {coord: 1.0 for coord in mesh4.coordinates()}
        power[(2, 1)] = 6.0
        result = grid3.steady_state(power)
        assert result.hottest_block() == "PE_2_1"

    def test_peak_at_least_block_mean(self, grid3, mesh4):
        power = {coord: 1.0 for coord in mesh4.coordinates()}
        power[(1, 1)] = 5.0
        result = grid3.steady_state(power)
        for block in result.block_peak_celsius:
            assert result.block_peak_celsius[block] >= result.block_mean_celsius[block] - 1e-9

    def test_close_to_block_model(self, mesh4):
        """The grid model's block means track the block model's temperatures
        (same physics, finer discretisation)."""
        power = {coord: 1.5 for coord in mesh4.coordinates()}
        power[(3, 2)] = 4.0
        block_model = HotSpotModel(mesh4)
        grid_model = GridThermalModel(mesh4, resolution=2)
        block_temps = block_model.steady_state_by_coord(power)
        grid_means = grid_model.steady_state_by_coord(power, statistic="mean")
        for coord in mesh4.coordinates():
            assert grid_means[coord] == pytest.approx(block_temps[coord], abs=2.5)

    def test_grid_reveals_intra_block_gradient(self, mesh4):
        """A hot unit next to cool neighbours shows an internal gradient: its
        peak cell is hotter than its mean."""
        grid_model = GridThermalModel(mesh4, resolution=3)
        power = {coord: 0.5 for coord in mesh4.coordinates()}
        power[(1, 2)] = 6.0
        result = grid_model.steady_state(power)
        assert result.block_peak_celsius["PE_1_2"] > result.block_mean_celsius["PE_1_2"] + 0.05

    def test_by_coord_statistics(self, mesh4):
        grid_model = GridThermalModel(mesh4, resolution=2)
        power = {coord: 2.0 for coord in mesh4.coordinates()}
        peaks = grid_model.steady_state_by_coord(power, statistic="peak")
        means = grid_model.steady_state_by_coord(power, statistic="mean")
        assert set(peaks) == set(mesh4.coordinates())
        for coord in mesh4.coordinates():
            assert peaks[coord] >= means[coord] - 1e-9

    def test_input_validation(self, mesh4):
        grid_model = GridThermalModel(mesh4, resolution=2)
        with pytest.raises(ValueError):
            grid_model.steady_state({(9, 9): 1.0})
        with pytest.raises(ValueError):
            grid_model.steady_state({(0, 0): -1.0})
        with pytest.raises(ValueError):
            GridThermalModel(mesh4, resolution=0)
