"""Tests for the RC thermal network construction."""

import numpy as np
import pytest

from repro.thermal.floorplan import mesh_floorplan
from repro.thermal.package import DEFAULT_PACKAGE, ThermalPackage
from repro.thermal.rc_model import build_thermal_network


@pytest.fixture
def network4(mesh4):
    return build_thermal_network(mesh_floorplan(mesh4))


class TestStructure:
    def test_node_count(self, network4):
        # die + spreader per block, plus periphery and sink.
        assert network4.num_nodes == 2 * 16 + 2

    def test_block_nodes_are_die_layer(self, network4):
        for name, idx in network4.block_node_index.items():
            assert idx < 16
            assert network4.node_names[idx] == f"die:{name}"

    def test_conductance_symmetric_nonnegative(self, network4):
        G = network4.conductance
        assert np.allclose(G, G.T)
        assert np.all(G >= 0)
        assert np.all(np.diag(G) == 0)

    def test_capacitances_positive(self, network4):
        assert np.all(network4.capacitance > 0)

    def test_only_sink_couples_to_ambient(self, network4):
        ambient = network4.ambient_conductance
        nonzero = np.nonzero(ambient)[0]
        assert list(nonzero) == [network4.num_nodes - 1]

    def test_ambient_temperature(self, network4):
        assert network4.ambient_kelvin == pytest.approx(40.0 + 273.15)

    def test_die_nodes_coupled_to_neighbors(self, network4, mesh4):
        G = network4.conductance
        idx = network4.block_node_index
        # (1,1) and (2,1) are adjacent: their die nodes must be coupled.
        assert G[idx["PE_1_1"], idx["PE_2_1"]] > 0
        # (0,0) and (3,3) are not adjacent.
        assert G[idx["PE_0_0"], idx["PE_3_3"]] == 0

    def test_die_couples_to_own_spreader(self, network4):
        G = network4.conductance
        n = len(network4.block_node_index)
        for name, die_idx in network4.block_node_index.items():
            assert G[die_idx, n + die_idx] > 0

    def test_system_matrix_is_diagonally_dominant(self, network4):
        A = network4.system_matrix()
        diag = np.diag(A)
        off = np.abs(A - np.diag(diag)).sum(axis=1)
        assert np.all(diag >= off - 1e-12)

    def test_system_matrix_invertible(self, network4):
        A = network4.system_matrix()
        assert np.linalg.cond(A) < 1e12


class TestPowerVector:
    def test_known_block(self, network4):
        power = network4.power_vector({"PE_0_0": 2.5})
        assert power[network4.block_node_index["PE_0_0"]] == 2.5
        assert power.sum() == pytest.approx(2.5)

    def test_unknown_block_rejected(self, network4):
        with pytest.raises(KeyError):
            network4.power_vector({"PE_9_9": 1.0})

    def test_negative_power_rejected(self, network4):
        with pytest.raises(ValueError):
            network4.power_vector({"PE_0_0": -1.0})


class TestPackageValidation:
    def test_default_ambient_is_40C(self):
        assert DEFAULT_PACKAGE.ambient_celsius == 40.0
        assert DEFAULT_PACKAGE.ambient_kelvin == pytest.approx(313.15)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            ThermalPackage(die_thickness_m=0)
        with pytest.raises(ValueError):
            ThermalPackage(convection_resistance_k_per_w=-1)

    def test_custom_package_propagates(self, mesh4):
        package = ThermalPackage(ambient_celsius=25.0)
        network = build_thermal_network(mesh_floorplan(mesh4), package)
        assert network.ambient_kelvin == pytest.approx(25.0 + 273.15)
