"""Tests for the shared ThermalModel protocol and the batch fast paths.

``HotSpotModel`` and ``GridThermalModel`` implement the same array-native
interface: multi-RHS steady batches against the cached factorisation, and
sequenced transients with the propagator cache and the spectral sampler.
The grid model must pass the same cache/spectral parity guards as the block
model — the resolution ablation has no physical reason to be slower.
"""

import numpy as np
import pytest

from repro.noc.topology import MeshTopology
from repro.power.trace import PowerTrace
from repro.thermal.grid import GridThermalModel
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.model import ThermalModel


@pytest.fixture(scope="module")
def mesh():
    return MeshTopology(4, 4)


@pytest.fixture(scope="module")
def block_model(mesh):
    return HotSpotModel(mesh)


@pytest.fixture(scope="module")
def grid_model(mesh):
    return GridThermalModel(mesh, resolution=3)


def _power_rows(mesh, count=5):
    rows = np.ones((count, mesh.num_nodes))
    for index in range(count):
        rows[index, index % mesh.num_nodes] = 4.0 + 0.5 * index
    return rows


def _trace(mesh, count=5, duration=1e-3):
    rows = _power_rows(mesh, count)
    return PowerTrace.from_arrays(mesh, np.full(count, duration), rows)


class TestProtocolConformance:
    def test_both_models_satisfy_protocol(self, block_model, grid_model):
        assert isinstance(block_model, ThermalModel)
        assert isinstance(grid_model, ThermalModel)


class TestSteadyBatch:
    @pytest.mark.parametrize("model_fixture", ["block_model", "grid_model"])
    def test_batch_matches_per_map_solves(self, model_fixture, mesh, request):
        model = request.getfixturevalue(model_fixture)
        rows = _power_rows(mesh)
        batch = model.steady_temperatures(rows)
        assert batch.shape == (rows.shape[0], mesh.num_nodes)
        coords = list(mesh.coordinates())
        for row_index in range(rows.shape[0]):
            power = {coord: rows[row_index, mesh.node_id(coord)] for coord in coords}
            reference = model.steady_state_by_coord(power)
            for unit_index, coord in enumerate(coords):
                assert batch[row_index, unit_index] == pytest.approx(
                    reference[coord], abs=1e-9
                )

    def test_batch_counts_as_one_solve(self, mesh):
        model = HotSpotModel(mesh)
        before = model.solver.steady_solve_count
        model.steady_temperatures(_power_rows(mesh, count=16))
        assert model.solver.steady_solve_count - before == 1

    def test_batch_rejects_negative_power(self, block_model, mesh):
        rows = _power_rows(mesh)
        rows[0, 0] = -1.0
        with pytest.raises(ValueError):
            block_model.steady_temperatures(rows)

    def test_grid_statistics_ordering(self, grid_model, mesh):
        rows = _power_rows(mesh)
        peaks = grid_model.steady_temperatures(rows, statistic="peak")
        means = grid_model.steady_temperatures(rows, statistic="mean")
        assert (peaks >= means - 1e-9).all()


class TestSequencedTransient:
    @pytest.mark.parametrize("model_fixture", ["block_model", "grid_model"])
    def test_trace_equals_dict_intervals(self, model_fixture, mesh, request):
        """The PowerTrace fast path and the dict-interval edge agree exactly."""
        model = request.getfixturevalue(model_fixture)
        trace = _trace(mesh)
        state = model.warm_state(trace.powers.mean(axis=0))
        from_trace = model.transient_sequence(
            trace, initial_state=state, time_step_s=2e-4
        )
        from_dicts = model.transient_sequence(
            trace.intervals(), initial_state=state, time_step_s=2e-4
        )
        assert from_trace.interval_ranges == from_dicts.interval_ranges
        for name in from_trace.block_celsius:
            assert np.array_equal(
                from_trace.block_celsius[name], from_dicts.block_celsius[name]
            )

    def test_grid_propagator_cache_single_factorisation(self, mesh):
        """The grid model inherits the propagator cache: one factorisation
        for a whole multi-interval trace (the solver-level regression guard
        the block model already has)."""
        model = GridThermalModel(mesh, resolution=3)
        trace = _trace(mesh, count=8)
        model.transient_sequence(trace, time_step_s=2e-4)
        assert model.solver.step_factorization_count == 1
        model.transient_sequence(trace, time_step_s=2e-4)
        assert model.solver.step_factorization_count == 1

    def test_grid_spectral_matches_euler(self, mesh):
        """Spectral sampling on the refined network reproduces the stepped
        implicit-Euler trajectory to <1e-9 (the block-solver parity bar)."""
        model = GridThermalModel(mesh, resolution=2)
        trace = _trace(mesh, count=6)
        state = model.warm_state(trace.powers.mean(axis=0))
        euler = model.transient_sequence(
            trace, initial_state=state, time_step_s=2e-4
        )
        spectral = model.transient_sequence(
            trace, initial_state=state, time_step_s=2e-4, method="spectral"
        )
        for name in euler.block_celsius:
            assert np.allclose(
                euler.block_celsius[name], spectral.block_celsius[name], atol=1e-9
            )

    @pytest.mark.parametrize("model_fixture", ["block_model", "grid_model"])
    def test_interval_ranges_partition_samples(self, model_fixture, mesh, request):
        model = request.getfixturevalue(model_fixture)
        trace = _trace(mesh, count=4)
        result = model.transient_sequence(trace, time_step_s=2e-4)
        ranges = result.interval_ranges
        assert ranges[0][0] == 0
        assert ranges[-1][1] == result.times_s.size
        for (_start_a, stop_a), (start_b, _stop_b) in zip(ranges, ranges[1:]):
            assert stop_a == start_b

    @pytest.mark.parametrize("model_fixture", ["block_model", "grid_model"])
    def test_unit_series_shape_and_final_state(self, model_fixture, mesh, request):
        model = request.getfixturevalue(model_fixture)
        trace = _trace(mesh, count=3)
        result = model.transient_sequence(trace, time_step_s=2e-4)
        series = model.unit_series(result)
        assert series.shape == (mesh.num_nodes, result.times_s.size)
        assert np.isfinite(series).all()

    def test_grid_warm_state_accepts_vector_and_dict(self, grid_model, mesh):
        vector = np.full(mesh.num_nodes, 2.0)
        as_dict = {coord: 2.0 for coord in mesh.coordinates()}
        assert np.allclose(
            grid_model.warm_state(vector), grid_model.warm_state(as_dict)
        )

    def test_grid_time_constant_positive(self, grid_model):
        assert grid_model.thermal_time_constant_s() > 0
