"""Integration of the LDPC workload and migration traffic with the NoC."""

import pytest

from repro.ldpc import striped_partition
from repro.ldpc.workload import LdpcNocWorkload, WorkloadParameters
from repro.migration import MigrationUnit, make_transform
from repro.noc import MeshTopology, NocSimulator
from repro.placement import Mapping
from repro.power.activity import activity_from_simulation, analytic_router_flits


@pytest.fixture(scope="module")
def workload16(small_code):
    _H, graph = small_code
    partition = striped_partition(graph, 16)
    return LdpcNocWorkload(partition, WorkloadParameters(max_packet_flits=8))


class TestLdpcIterationOnNetwork:
    def test_iteration_traffic_delivered(self, workload16):
        mesh = MeshTopology(4, 4)
        mapping = Mapping.identity(mesh)
        packets = workload16.iteration_packets(mapping)
        simulator = NocSimulator(mesh, buffer_depth=8)
        result = simulator.run_packets(packets, drain_limit=400_000)
        assert result.stats.packets_ejected == len(packets)

    def test_migrated_mapping_same_packet_count(self, workload16):
        """Migration permutes endpoints but the traffic volume is unchanged."""
        mesh = MeshTopology(4, 4)
        identity = Mapping.identity(mesh)
        migrated = identity.apply_transform(make_transform("xy-shift", mesh))
        assert len(workload16.iteration_packets(identity)) == len(
            workload16.iteration_packets(migrated)
        )

    def test_isometric_migration_preserves_delivery_time_scale(self, workload16):
        """An X-Y mirror preserves all pairwise distances, so the iteration
        completes in a similar number of cycles before and after migration."""
        mesh = MeshTopology(4, 4)
        identity = Mapping.identity(mesh)
        mirrored = identity.apply_transform(make_transform("xy-mirror", mesh))
        base = NocSimulator(mesh, buffer_depth=8).run_packets(
            workload16.iteration_packets(identity), drain_limit=400_000
        )
        after = NocSimulator(mesh, buffer_depth=8).run_packets(
            workload16.iteration_packets(mirrored), drain_limit=400_000
        )
        assert after.cycles == pytest.approx(base.cycles, rel=0.25)

    def test_simulated_activity_close_to_analytic(self, workload16):
        """Total router flit traversals from the cycle-accurate run match the
        analytic XY-route estimate (both count every router on each path)."""
        mesh = MeshTopology(4, 4)
        mapping = Mapping.identity(mesh)
        packets = workload16.iteration_packets(mapping)
        simulator = NocSimulator(mesh, buffer_depth=8)
        result = simulator.run_packets(packets, drain_limit=400_000)
        simulated_total = sum(a.flits_routed for a in result.router_activity.values())

        flows = {}
        for packet in packets:
            key = (packet.source, packet.destination)
            flows[key] = flows.get(key, 0.0) + packet.size_flits
        analytic = analytic_router_flits(mesh, flows)
        assert simulated_total == pytest.approx(sum(analytic.values()), rel=1e-6)


class TestMigrationTrafficOnNetwork:
    def test_migration_completes_within_schedule_bound_scale(self):
        """Replaying the migration's CONFIG packets on the real network takes
        the same order of cycles as the analytic congestion-free schedule."""
        mesh = MeshTopology(5, 5)
        unit = MigrationUnit(mesh)
        transform = make_transform("xy-shift", mesh)
        cost = unit.migration_cost(transform)
        packets = unit.migration_packets(transform)
        simulator = NocSimulator(mesh, buffer_depth=8)
        result = simulator.run_packets(packets, drain_limit=500_000)
        assert result.stats.packets_ejected == len(packets)
        # The analytic schedule serialises phases, the real network overlaps
        # them, so reality should not be slower than ~3x the schedule bound.
        assert result.cycles < 3 * max(cost.cycles, 1)

    def test_workload_and_migration_traffic_coexist(self, workload16):
        """Workload DATA packets and migration CONFIG packets injected together
        are all delivered (no deadlock from mixing traffic classes)."""
        mesh = MeshTopology(4, 4)
        mapping = Mapping.identity(mesh)
        unit = MigrationUnit(mesh)
        packets = workload16.iteration_packets(mapping)
        packets += unit.migration_packets(make_transform("rotation", mesh))
        simulator = NocSimulator(mesh, buffer_depth=8)
        result = simulator.run_packets(packets, drain_limit=800_000)
        assert result.stats.packets_ejected == len(packets)
