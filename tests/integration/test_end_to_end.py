"""Integration tests across the whole stack.

These exercise the same paths the benchmarks use, but at reduced scale, and
assert the qualitative results the paper reports (the shapes, not the exact
degrees).
"""

import pytest

from repro import (
    ExperimentSettings,
    NoMigrationPolicy,
    PeriodicMigrationPolicy,
    ThermalExperiment,
    get_configuration,
)
from repro.analysis import generate_figure1
from repro.chips import all_configurations
from repro.core.policy import make_policy
from repro.migration import FIGURE1_SCHEMES


FAST = ExperimentSettings(num_epochs=21, mode="steady", settle_epochs=20)


@pytest.fixture(scope="module")
def figure1():
    """Figure 1 at reduced epoch count (orbit lengths still divide 20)."""
    return generate_figure1(settings=FAST)


class TestFigure1Shapes:
    def test_all_bars_present(self, figure1):
        assert len(figure1.cells) == 5 * len(FIGURE1_SCHEMES)

    def test_xy_shift_has_highest_average_reduction(self, figure1):
        """Paper: X-Y shifting has the highest average reduction (4.62 degC)."""
        best = figure1.best_scheme()
        assert best == "xy-shift"
        assert figure1.average_reduction("xy-shift") > 2.0

    def test_maximum_reduction_several_degrees(self, figure1):
        """Paper: peak temperature reduced by up to ~8 degC."""
        assert 4.0 < figure1.max_reduction() < 12.0

    def test_rotation_negative_or_negligible_on_E(self, figure1):
        """Paper: rotation results in higher peak temperature on E."""
        assert figure1.reduction("E", "rotation") < 0.5

    def test_mirroring_weak_on_odd_meshes(self, figure1):
        """Rotation/mirroring ignore the central PE of the 5x5 chips, so they
        do much better on A/B than on C/D/E."""
        even_avg = (figure1.reduction("A", "xy-mirror") + figure1.reduction("B", "xy-mirror")) / 2
        odd_avg = (
            figure1.reduction("C", "xy-mirror")
            + figure1.reduction("D", "xy-mirror")
            + figure1.reduction("E", "xy-mirror")
        ) / 3
        assert even_avg > odd_avg + 1.0

    def test_right_shift_poor_where_hot_row_exists(self, figure1):
        """The warm band means right-shifting alone cannot balance heat."""
        for config in ("A", "B", "C", "D"):
            assert figure1.reduction(config, "right-shift") < figure1.reduction(
                config, "xy-shift"
            )

    def test_translation_more_effective_on_odd_meshes(self, figure1):
        """Paper: for the larger (5x5) configurations translation wins."""
        for config in ("C", "D", "E"):
            assert figure1.reduction(config, "xy-shift") >= figure1.reduction(
                config, "rotation"
            )

    def test_no_scheme_catastrophically_backfires(self, figure1):
        for cell in figure1.cells:
            assert cell.reduction_celsius > -1.5


class TestThroughputPenalty:
    def test_penalty_under_two_percent_at_109us(self):
        chip = get_configuration("A")
        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        result = ThermalExperiment(chip, policy, settings=FAST).run()
        assert result.throughput_penalty < 0.03

    def test_static_policy_penalty_zero(self):
        chip = get_configuration("C")
        result = ThermalExperiment(chip, NoMigrationPolicy(), settings=FAST).run()
        assert result.throughput_penalty == 0.0


class TestPolicyFactoryIntegration:
    @pytest.mark.parametrize("policy_name", ["static", "xy-shift", "adaptive"])
    def test_policies_run_on_every_configuration(self, policy_name):
        for config in all_configurations():
            policy = make_policy(policy_name, config.topology, period_us=109.0)
            result = ThermalExperiment(
                config,
                policy,
                settings=ExperimentSettings(num_epochs=11, settle_epochs=10),
            ).run()
            assert result.baseline_peak_celsius > 40.0
            assert result.settled_peak_celsius > 40.0


class TestAdaptivePolicyExtension:
    def test_adaptive_matches_or_beats_worst_fixed_scheme(self):
        """The adaptive transform choice should never be worse than the worst
        fixed scheme on the centre-hotspot configuration."""
        chip = get_configuration("E")
        adaptive = ThermalExperiment(
            chip, make_policy("adaptive", chip.topology), settings=FAST
        ).run()
        fixed = [
            ThermalExperiment(
                chip, make_policy(scheme, chip.topology), settings=FAST
            ).run()
            for scheme in FIGURE1_SCHEMES
        ]
        worst_fixed = min(result.peak_reduction_celsius for result in fixed)
        assert adaptive.peak_reduction_celsius >= worst_fixed
