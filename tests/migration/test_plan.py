"""Tests for staged migration plans (lowering, invariants, pricing)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.migration.plan import (
    MIGRATION_STYLES,
    MigrationPlan,
    congestion_factor,
    lower_transform,
    priced_stage_cycles,
)
from repro.migration.scheduler import PeMove, _links_of_route
from repro.migration.transforms import (
    IdentityTransform,
    MigrationTransform,
    RotationTransform,
    XYShiftTransform,
    make_transform,
)
from repro.migration.unit import MigrationUnit
from repro.noc.topology import MeshTopology
from repro.placement.mapping import Mapping
from repro.scenarios.noc_cost import NocCostModel


@pytest.fixture
def unit4(mesh4):
    return MigrationUnit(mesh4)


@pytest.fixture
def unit5(mesh5):
    return MigrationUnit(mesh5)


def _move_key(move):
    return (move.source, move.destination, move.payload_flits)


class PermutationTransform(MigrationTransform):
    """An arbitrary permutation, for property tests beyond the named schemes."""

    name = "perm"

    def __init__(self, topology, permutation):
        super().__init__(topology)
        self._permutation = permutation

    def apply(self, coord):
        return self._permutation[coord]


class TestSuddenLowering:
    """A sudden plan is the legacy whole-transform cost, restaged as 1 stage."""

    def test_single_stage(self, unit4, mesh4):
        plan = lower_transform(XYShiftTransform(mesh4), unit4, style="sudden")
        assert plan.num_stages == 1
        assert plan.style == "sudden"
        assert plan.units_per_epoch is None

    @pytest.mark.parametrize("scheme", ["xy-shift", "rotation", "x-mirror"])
    def test_bit_identical_to_legacy_cost(self, unit4, mesh4, scheme):
        """Same schedule, same float accumulation order — bit equality, not
        approx (the satellite regression for the shared move_cycles path)."""
        transform = make_transform(scheme, mesh4)
        nodes = {coord: 7 for coord in mesh4.coordinates()}
        legacy = unit4.migration_cost(transform, nodes)
        plan = lower_transform(transform, unit4, nodes, style="sudden")
        stage = plan.stages[0]
        assert stage.cycles == legacy.cycles
        assert stage.energy_j == legacy.total_energy_j
        assert dict(stage.energy_per_unit_j) == legacy.energy_per_unit_j

    def test_identity_transform_is_cost_only(self, unit4, mesh4):
        plan = lower_transform(IdentityTransform(mesh4), unit4, style="sudden")
        assert plan.num_stages == 1
        assert plan.total_cycles == 0
        assert plan.total_moved == 0
        assert plan.total_energy_j > 0  # fixed per-PE overhead still charged

    def test_rejects_unknown_style(self, unit4, mesh4):
        with pytest.raises(ValueError):
            lower_transform(XYShiftTransform(mesh4), unit4, style="teleport")
        with pytest.raises(ValueError):
            lower_transform(
                XYShiftTransform(mesh4), unit4, style="fluid", units_per_epoch=0
            )


class TestStagePartition:
    """Every style's stages partition the transform's move set exactly."""

    @pytest.mark.parametrize("style", MIGRATION_STYLES)
    @pytest.mark.parametrize("scheme", ["xy-shift", "rotation", "right-shift"])
    def test_moves_partition(self, unit5, mesh5, style, scheme):
        transform = make_transform(scheme, mesh5)
        reference = unit5.scheduler.moves_for_transform(transform)
        plan = lower_transform(
            transform, unit5, style=style, units_per_epoch=3
        )
        staged = [move for stage in plan.stages for move in stage.moves]
        assert sorted(map(_move_key, staged)) == sorted(
            map(_move_key, reference)
        )
        # No move appears in two stages.
        assert len(staged) == len({_move_key(move) for move in staged})

    @pytest.mark.parametrize("style", MIGRATION_STYLES)
    def test_composed_permutation_matches_transform(self, unit5, mesh5, style):
        transform = RotationTransform(mesh5)
        plan = lower_transform(transform, unit5, style=style, units_per_epoch=2)
        composed = plan.mapping_moves()
        expected = {
            coord: image
            for coord, image in transform.as_permutation().items()
            if coord != image
        }
        assert composed == expected


class TestFluidLowering:
    def test_budget_respected(self, unit5, mesh5):
        plan = lower_transform(
            XYShiftTransform(mesh5), unit5, style="fluid", units_per_epoch=4
        )
        assert plan.num_stages > 1
        longest_cycle = max(
            len(cycle)
            for cycle in _cycles_of(unit5, XYShiftTransform(mesh5))
        )
        for stage in plan.stages:
            assert stage.moved <= max(4, longest_cycle)

    def test_large_budget_collapses_to_one_stage(self, unit4, mesh4):
        plan = lower_transform(
            XYShiftTransform(mesh4), unit4, style="fluid", units_per_epoch=999
        )
        assert plan.num_stages == 1

    def test_mid_plan_mapping_stays_bijective(self, unit5, mesh5):
        plan = lower_transform(
            RotationTransform(mesh5), unit5, style="fluid", units_per_epoch=2
        )
        mapping = Mapping.identity(mesh5)
        for stage in plan.stages:
            moves = stage.mapping_moves()
            # Closed relocation: sources and destinations are the same set.
            assert set(moves) == set(moves.values()) or not moves
            mapping = Mapping(
                mesh5,
                {
                    task: moves.get(coord, coord)
                    for task, coord in mapping.physical_of_task.items()
                },
            )  # Mapping.__post_init__ validates bijectivity
        final = RotationTransform(mesh5).as_permutation()
        assert {
            task: final[coord]
            for task, coord in Mapping.identity(mesh5).physical_of_task.items()
        } == mapping.physical_of_task


def _stage_cycle_links(unit, stage):
    """Per permutation cycle of the stage, the union of its route links."""
    remote = [move for move in stage.moves if not move.is_local]
    link_sets = []
    for cycle in _permutation_cycle_groups(remote):
        links = set()
        for move in cycle:
            links |= _links_of_route(
                unit.routing.path(move.source, move.destination)
            )
        link_sets.append(links)
    return link_sets


def _permutation_cycle_groups(remote_moves):
    from repro.migration.plan import _permutation_cycles

    return _permutation_cycles(list(remote_moves))


def _assert_cycles_disjoint(unit, plan):
    """Batched invariant: the cycles grouped into one stage never share a
    link (moves *within* a cycle may — cycles are atomic and the stage's
    internal schedule phases them)."""
    for stage in plan.stages:
        link_sets = _stage_cycle_links(unit, stage)
        for i, links in enumerate(link_sets):
            for other in link_sets[i + 1:]:
                assert not (links & other)


class TestBatchedLowering:
    def test_cycles_within_stage_are_link_disjoint(self, unit5, mesh5):
        plan = lower_transform(RotationTransform(mesh5), unit5, style="batched")
        _assert_cycles_disjoint(unit5, plan)

    def test_stage_cycles_bounded_by_move_account(self, unit5, mesh5):
        """Each stage's duration sits between its slowest move and the fully
        serialised baseline (the shared move_cycles account both ways)."""
        plan = lower_transform(RotationTransform(mesh5), unit5, style="batched")
        scheduler = unit5.scheduler
        for stage in plan.stages:
            remote = [move for move in stage.moves if not move.is_local]
            if remote:
                slowest = max(scheduler.move_cycles(move) for move in remote)
                assert slowest <= stage.cycles <= scheduler.naive_cycles(remote)


class TestMoveCyclesAccount:
    """Satellite regression: one shared per-move cycle function."""

    def test_phase_cycles_routes_through_move_cycles(self, unit4, mesh4):
        scheduler = unit4.scheduler
        moves = scheduler.moves_for_transform(XYShiftTransform(mesh4))
        remote = [move for move in moves if not move.is_local]
        for move in remote:
            assert scheduler._phase_cycles([move]) == scheduler.move_cycles(move)

    def test_naive_cycles_is_sum_of_move_cycles(self, unit4, mesh4):
        scheduler = unit4.scheduler
        moves = scheduler.moves_for_transform(RotationTransform(mesh4))
        assert scheduler.naive_cycles(moves) == sum(
            scheduler.move_cycles(move) for move in moves if not move.is_local
        )

    def test_move_cycles_components(self, unit4):
        scheduler = unit4.scheduler
        move = PeMove(source=(0, 0), destination=(3, 2), payload_flits=10)
        expected = (
            10 * scheduler.state_model.serialization_cycles_per_flit
            + 5 * scheduler.router_pipeline_cycles
        )
        assert scheduler.move_cycles(move) == expected


class TestPlanCodec:
    @pytest.mark.parametrize("style", MIGRATION_STYLES)
    def test_round_trip(self, unit5, mesh5, style):
        nodes = {coord: 5 for coord in mesh5.coordinates()}
        plan = lower_transform(
            RotationTransform(mesh5), unit5, nodes, style=style, units_per_epoch=3
        )
        restored = MigrationPlan.from_dict(plan.to_dict(mesh5), mesh5)
        assert restored == plan


class TestCongestionPricing:
    def test_unpriced_is_unity(self):
        assert congestion_factor(None, 0.5) == 1.0
        model = NocCostModel(width=4, height=4)
        assert congestion_factor(model, None) == 1.0
        assert congestion_factor(model, 0.0) == 1.0
        assert congestion_factor(model, float("nan")) == 1.0

    def test_monotone_and_at_least_one(self):
        model = NocCostModel(width=4, height=4)
        low = congestion_factor(model, 0.01)
        high = congestion_factor(model, model.saturation_rate * 0.9)
        assert 1.0 <= low <= high
        assert high > 1.0

    def test_saturated_rate_caps(self):
        model = NocCostModel(width=4, height=4)
        at_cap = congestion_factor(model, model.saturation_rate)
        beyond = congestion_factor(model, model.saturation_rate * 10)
        assert math.isfinite(at_cap)
        assert beyond == at_cap

    def test_priced_stage_cycles_ceils(self, unit4, mesh4):
        plan = lower_transform(XYShiftTransform(mesh4), unit4, style="sudden")
        stage = plan.stages[0]
        assert priced_stage_cycles(stage, 1.0) == stage.cycles
        assert priced_stage_cycles(stage, 0.5) == stage.cycles
        assert priced_stage_cycles(stage, 1.5) == math.ceil(stage.cycles * 1.5)


def _cycles_of(unit, transform):
    from repro.migration.plan import _permutation_cycles

    moves = unit.scheduler.moves_for_transform(transform)
    return _permutation_cycles([move for move in moves if not move.is_local])


# ----------------------------------------------------------------------
# Property tests: arbitrary permutations, arbitrary budgets
# ----------------------------------------------------------------------
@st.composite
def permutations(draw):
    width = draw(st.integers(2, 5))
    height = draw(st.integers(2, 5))
    topology = MeshTopology(width, height)
    coords = list(topology.coordinates())
    images = draw(st.permutations(coords))
    return topology, dict(zip(coords, images))


class TestPlanProperties:
    @given(data=permutations(), units=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_fluid_partitions_and_stays_bijective(self, data, units):
        topology, permutation = data
        unit = MigrationUnit(topology)
        transform = PermutationTransform(topology, permutation)
        plan = lower_transform(
            transform, unit, style="fluid", units_per_epoch=units
        )
        reference = unit.scheduler.moves_for_transform(transform)
        staged = [move for stage in plan.stages for move in stage.moves]
        assert sorted(map(_move_key, staged)) == sorted(
            map(_move_key, reference)
        )
        mapping = Mapping.identity(topology)
        for stage in plan.stages:
            moves = stage.mapping_moves()
            mapping = Mapping(
                topology,
                {
                    task: moves.get(coord, coord)
                    for task, coord in mapping.physical_of_task.items()
                },
            )
        assert {
            task: permutation[coord]
            for task, coord in Mapping.identity(topology).physical_of_task.items()
        } == mapping.physical_of_task

    @given(data=permutations())
    @settings(max_examples=25, deadline=None)
    def test_batched_stages_link_disjoint(self, data):
        topology, permutation = data
        unit = MigrationUnit(topology)
        plan = lower_transform(
            PermutationTransform(topology, permutation), unit, style="batched"
        )
        _assert_cycles_disjoint(unit, plan)

    @given(data=permutations())
    @settings(max_examples=25, deadline=None)
    def test_sudden_equals_legacy_cost(self, data):
        topology, permutation = data
        unit = MigrationUnit(topology)
        transform = PermutationTransform(topology, permutation)
        legacy = unit.migration_cost(transform)
        plan = lower_transform(transform, unit, style="sudden")
        assert plan.stages[0].cycles == legacy.cycles
        assert plan.stages[0].energy_j == legacy.total_energy_j
