"""Tests for the PE state-transfer sizing model."""

import math

import pytest

from repro.migration.state_transfer import StateTransferModel


class TestStateTransferModel:
    def test_payload_bits_scale_with_nodes(self):
        model = StateTransferModel(configuration_bits=1000, state_bits_per_tanner_node=10)
        assert model.payload_bits(0) == 1000
        assert model.payload_bits(5) == 1050

    def test_payload_flits_ceiling(self):
        model = StateTransferModel(
            configuration_bits=100, state_bits_per_tanner_node=0, flit_payload_bits=64
        )
        assert model.payload_flits(0) == math.ceil(100 / 64)

    def test_packet_flits_adds_head(self):
        model = StateTransferModel()
        assert model.packet_flits(3) == model.payload_flits(3) + 1

    def test_serialization_cycles(self):
        model = StateTransferModel(serialization_cycles_per_flit=2)
        assert model.serialization_cycles(4) == 2 * model.payload_flits(4)

    def test_zero_state_zero_config(self):
        model = StateTransferModel(configuration_bits=0, state_bits_per_tanner_node=0)
        assert model.payload_bits(0) == 0
        assert model.payload_flits(0) == 0
        assert model.serialization_cycles(0) == 0

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            StateTransferModel().payload_bits(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StateTransferModel(configuration_bits=-1)
        with pytest.raises(ValueError):
            StateTransferModel(flit_payload_bits=0)
        with pytest.raises(ValueError):
            StateTransferModel(serialization_cycles_per_flit=0)

    def test_default_config_is_kilobytes_range(self):
        """The default PE configuration stream should be in the multi-kilobit
        range typical of an NoC PE (routing tables + microcode), which is what
        produces the paper's ~1.6 % penalty at the 109 us period."""
        model = StateTransferModel()
        assert 8_000 <= model.configuration_bits <= 64_000
