"""Tests for the Table 1 migration transforms."""

import pytest

from repro.migration.transforms import (
    FIGURE1_SCHEMES,
    IdentityTransform,
    RightShiftTransform,
    RotationTransform,
    XMirrorTransform,
    XYMirrorTransform,
    XYShiftTransform,
    YMirrorTransform,
    available_transforms,
    make_transform,
)
from repro.noc.topology import MeshTopology


class TestTable1Algebra:
    """Table 1's formulas, checked literally."""

    def test_rotation_formula(self, mesh4):
        transform = RotationTransform(mesh4)
        n = 4
        for x in range(n):
            for y in range(n):
                assert transform((x, y)) == (n - 1 - y, x)

    def test_x_mirror_formula(self, mesh5):
        transform = XMirrorTransform(mesh5)
        for x in range(5):
            for y in range(5):
                assert transform((x, y)) == (4 - x, y)

    def test_x_translation_formula(self, mesh4):
        transform = RightShiftTransform(mesh4, offset=1)
        for x in range(4):
            for y in range(4):
                assert transform((x, y)) == ((x + 1) % 4, y)

    def test_xy_mirror_formula(self, mesh4):
        transform = XYMirrorTransform(mesh4)
        assert transform((0, 0)) == (3, 3)
        assert transform((1, 2)) == (2, 1)

    def test_xy_shift_formula(self, mesh5):
        transform = XYShiftTransform(mesh5)
        assert transform((4, 4)) == (0, 0)
        assert transform((2, 3)) == (3, 4)


class TestGroupProperties:
    @pytest.mark.parametrize("scheme", FIGURE1_SCHEMES)
    @pytest.mark.parametrize("size", [4, 5])
    def test_bijection(self, scheme, size):
        topology = MeshTopology(size, size)
        transform = make_transform(scheme, topology)
        assert transform.is_bijection()

    def test_rotation_order_four(self, mesh4, mesh5):
        assert RotationTransform(mesh4).order() == 4
        assert RotationTransform(mesh5).order() == 4

    def test_mirror_order_two(self, mesh4):
        assert XMirrorTransform(mesh4).order() == 2
        assert XYMirrorTransform(mesh4).order() == 2
        assert YMirrorTransform(mesh4).order() == 2

    def test_shift_order_equals_width(self, mesh4, mesh5):
        assert RightShiftTransform(mesh4).order() == 4
        assert RightShiftTransform(mesh5).order() == 5
        assert XYShiftTransform(mesh4).order() == 4
        assert XYShiftTransform(mesh5).order() == 5

    def test_identity_order_one(self, mesh4):
        assert IdentityTransform(mesh4).order() == 1

    def test_orbit_returns_home(self, mesh5):
        transform = XYShiftTransform(mesh5)
        orbit = transform.orbit((1, 2))
        assert len(orbit) == 5
        assert orbit[0] == (1, 2)
        assert len(set(orbit)) == 5


class TestFixedPoints:
    def test_rotation_center_fixed_on_odd_mesh(self, mesh5):
        """The paper's explanation for rotation's weakness on 5x5 chips."""
        assert RotationTransform(mesh5).fixed_points() == [(2, 2)]

    def test_rotation_no_fixed_points_on_even_mesh(self, mesh4):
        assert RotationTransform(mesh4).fixed_points() == []

    def test_xy_mirror_center_fixed_on_odd_mesh(self, mesh5):
        assert XYMirrorTransform(mesh5).fixed_points() == [(2, 2)]

    def test_x_mirror_fixed_column_on_odd_mesh(self, mesh5):
        fixed = XMirrorTransform(mesh5).fixed_points()
        assert fixed == [(2, y) for y in range(5)]

    def test_shifts_have_no_fixed_points(self, mesh4, mesh5):
        assert RightShiftTransform(mesh4).fixed_points() == []
        assert XYShiftTransform(mesh5).fixed_points() == []

    def test_identity_everything_fixed(self, mesh4):
        assert len(IdentityTransform(mesh4).fixed_points()) == 16


class TestIsometry:
    def test_rotation_and_mirrors_preserve_distances(self, mesh4):
        assert RotationTransform(mesh4).preserves_relative_positions()
        assert XMirrorTransform(mesh4).preserves_relative_positions()
        assert XYMirrorTransform(mesh4).preserves_relative_positions()

    def test_shifts_wrap_and_break_some_distances(self, mesh4):
        assert not RightShiftTransform(mesh4).preserves_relative_positions()
        assert not XYShiftTransform(mesh4).preserves_relative_positions()


class TestConstructionErrors:
    def test_rotation_requires_square(self, mesh3x2):
        with pytest.raises(ValueError):
            RotationTransform(mesh3x2)

    def test_zero_shift_rejected(self, mesh4):
        with pytest.raises(ValueError):
            RightShiftTransform(mesh4, offset=4)
        with pytest.raises(ValueError):
            XYShiftTransform(mesh4, offset_x=0, offset_y=4)

    def test_unknown_transform_name(self, mesh4):
        with pytest.raises(ValueError):
            make_transform("diagonal-flip", mesh4)

    def test_factory_builds_all_advertised(self, mesh4):
        for name in available_transforms():
            transform = make_transform(name, mesh4)
            assert transform.name == name

    def test_figure1_schemes_subset_of_available(self):
        assert set(FIGURE1_SCHEMES) <= set(available_transforms())


class TestPermutationExport:
    def test_as_permutation_covers_mesh(self, mesh5):
        permutation = XYShiftTransform(mesh5).as_permutation()
        assert set(permutation.keys()) == set(mesh5.coordinates())
        assert set(permutation.values()) == set(mesh5.coordinates())

    def test_mirror_on_rectangular_mesh(self, mesh3x2):
        transform = XYMirrorTransform(mesh3x2)
        assert transform((0, 0)) == (2, 1)
        assert transform.is_bijection()
