"""Tests for the migration unit cost model."""

import pytest

from repro.migration.transforms import (
    IdentityTransform,
    RightShiftTransform,
    RotationTransform,
    XYShiftTransform,
)
from repro.migration.unit import MigrationUnit
from repro.noc.flit import PacketClass
from repro.noc.network import Network


@pytest.fixture
def unit4(mesh4):
    return MigrationUnit(mesh4)


@pytest.fixture
def unit5(mesh5):
    return MigrationUnit(mesh5)


class TestMigrationCost:
    def test_cost_components_positive(self, unit4, mesh4):
        cost = unit4.migration_cost(XYShiftTransform(mesh4))
        assert cost.cycles > 0
        assert cost.total_energy_j > 0
        assert cost.num_phases >= 1

    def test_energy_distributed_over_units(self, unit4, mesh4):
        cost = unit4.migration_cost(XYShiftTransform(mesh4))
        assert set(cost.energy_per_unit_j) == set(mesh4.coordinates())
        assert sum(cost.energy_per_unit_j.values()) == pytest.approx(cost.total_energy_j)

    def test_rotation_costs_more_energy_than_shift(self, unit5, mesh5):
        """Rotation moves payloads the furthest, giving it the largest energy
        penalty — the mechanism behind the paper's 0.3 degC observation."""
        rotation = unit5.migration_cost(RotationTransform(mesh5))
        shift = unit5.migration_cost(RightShiftTransform(mesh5))
        assert rotation.total_energy_j > shift.total_energy_j

    def test_identity_transform_costs_only_fixed_overhead(self, unit4, mesh4):
        cost = unit4.migration_cost(IdentityTransform(mesh4))
        # No transport, no phases; only the per-PE fixed/conversion terms.
        assert cost.cycles == 0
        transport_free = 16 * (
            unit4.fixed_energy_per_pe_j
            + unit4.state_model.payload_flits(0) * unit4.conversion_energy_per_flit_j
        )
        assert cost.total_energy_j == pytest.approx(transport_free)

    def test_state_size_increases_cost(self, unit4, mesh4):
        small = unit4.migration_cost(XYShiftTransform(mesh4))
        nodes = {coord: 50 for coord in mesh4.coordinates()}
        large = unit4.migration_cost(XYShiftTransform(mesh4), nodes)
        assert large.total_energy_j > small.total_energy_j
        assert large.cycles >= small.cycles

    def test_negative_conversion_energy_rejected(self, mesh4):
        with pytest.raises(ValueError):
            MigrationUnit(mesh4, conversion_energy_per_flit_j=-1.0)
        with pytest.raises(ValueError):
            MigrationUnit(mesh4, fixed_energy_per_pe_j=-1.0)


class TestThroughputPenalty:
    def test_penalty_in_unit_interval(self, unit5, mesh5):
        penalty = unit5.throughput_penalty(XYShiftTransform(mesh5), period_cycles=54500)
        assert 0.0 < penalty < 1.0

    def test_penalty_decreases_with_period(self, unit5, mesh5, chip_e):
        """The paper's period sweep: 109 us -> 1.6 %, 437.2 us -> <0.4 %,
        874.4 us -> <0.2 %.  Quadrupling the period must cut the penalty by
        roughly four."""
        transform = XYShiftTransform(mesh5)
        nodes = chip_e.tanner_nodes_per_pe()
        p109 = unit5.throughput_penalty(transform, chip_e.block_period_cycles(109.0), nodes)
        p437 = unit5.throughput_penalty(transform, chip_e.block_period_cycles(437.2), nodes)
        p874 = unit5.throughput_penalty(transform, chip_e.block_period_cycles(874.4), nodes)
        assert p109 > p437 > p874
        assert p437 == pytest.approx(p109 / 4.0, rel=0.1)
        assert p874 == pytest.approx(p109 / 8.0, rel=0.1)

    def test_penalty_magnitude_near_paper(self, unit4, mesh4, chip_a):
        """At the 109 us period the penalty should be a few percent at most."""
        nodes = chip_a.tanner_nodes_per_pe()
        penalty = unit4.throughput_penalty(
            XYShiftTransform(mesh4), chip_a.block_period_cycles(109.0), nodes
        )
        assert 0.001 < penalty < 0.05

    def test_invalid_period_rejected(self, unit4, mesh4):
        with pytest.raises(ValueError):
            unit4.throughput_penalty(XYShiftTransform(mesh4), period_cycles=0)


class TestMigrationPackets:
    def test_one_packet_per_moving_pe(self, unit5, mesh5):
        packets = unit5.migration_packets(RotationTransform(mesh5))
        # 25 PEs, one fixed point on the 5x5 mesh.
        assert len(packets) == 24
        assert all(p.packet_class == PacketClass.CONFIG for p in packets)

    def test_packets_replay_on_real_network(self, unit4, mesh4):
        """The migration's CONFIG packets must actually be deliverable by the
        cycle-accurate network (integration of migration with the NoC)."""
        packets = unit4.migration_packets(XYShiftTransform(mesh4))
        network = Network(mesh4, buffer_depth=8)
        for packet in packets:
            network.inject(packet)
        cycles = network.drain(max_cycles=500_000)
        assert network.stats.packets_ejected == len(packets)
        assert cycles > 0
