"""Tests for congestion-free migration scheduling."""

import pytest

from repro.migration.scheduler import MigrationScheduler, PeMove
from repro.migration.state_transfer import StateTransferModel
from repro.migration.transforms import (
    RightShiftTransform,
    RotationTransform,
    XYShiftTransform,
    make_transform,
)
from repro.noc.routing import XYRouting


@pytest.fixture
def scheduler4(mesh4):
    return MigrationScheduler(mesh4)


@pytest.fixture
def scheduler5(mesh5):
    return MigrationScheduler(mesh5)


class TestMoves:
    def test_one_move_per_pe(self, scheduler4, mesh4):
        moves = scheduler4.moves_for_transform(XYShiftTransform(mesh4))
        assert len(moves) == 16
        assert {move.source for move in moves} == set(mesh4.coordinates())
        assert {move.destination for move in moves} == set(mesh4.coordinates())

    def test_fixed_point_is_local_move(self, scheduler5, mesh5):
        moves = scheduler5.moves_for_transform(RotationTransform(mesh5))
        local = [move for move in moves if move.is_local]
        assert len(local) == 1
        assert local[0].source == (2, 2)

    def test_state_sizing_included(self, scheduler4, mesh4):
        nodes = {coord: 10 for coord in mesh4.coordinates()}
        moves = scheduler4.moves_for_transform(XYShiftTransform(mesh4), nodes)
        plain = scheduler4.moves_for_transform(XYShiftTransform(mesh4))
        assert moves[0].payload_flits > 0
        assert moves[0].payload_flits >= plain[0].payload_flits


class TestScheduleCorrectness:
    @pytest.mark.parametrize("scheme", ["rotation", "x-mirror", "xy-mirror", "right-shift", "xy-shift"])
    def test_phases_are_link_disjoint(self, scheduler5, mesh5, scheme):
        transform = make_transform(scheme, mesh5)
        schedule = scheduler5.schedule_for_transform(transform)
        routing = XYRouting(mesh5)
        for phase in schedule.phases:
            used = set()
            for move in phase:
                route = routing.path(move.source, move.destination)
                links = {(route[i], route[i + 1]) for i in range(len(route) - 1)}
                assert not (links & used), "two moves in one phase share a link"
                used |= links

    def test_all_moves_scheduled(self, scheduler4, mesh4):
        transform = RotationTransform(mesh4)
        moves = scheduler4.moves_for_transform(transform)
        schedule = scheduler4.schedule(moves)
        assert schedule.total_moves == len(moves)

    def test_local_moves_cost_no_network_time(self, scheduler5, mesh5):
        transform = RotationTransform(mesh5)
        schedule = scheduler5.schedule_for_transform(transform)
        assert all(not move.is_local for phase in schedule.phases for move in phase)
        assert len(schedule.local_moves) == 1

    def test_total_cycles_positive_and_deterministic(self, scheduler4, mesh4):
        transform = XYShiftTransform(mesh4)
        a = scheduler4.schedule_for_transform(transform).total_cycles
        b = scheduler4.schedule_for_transform(transform).total_cycles
        assert a == b > 0

    def test_phase_cycles_cover_serialization_and_hops(self, scheduler4, mesh4):
        state = StateTransferModel()
        transform = XYShiftTransform(mesh4)
        schedule = scheduler4.schedule_for_transform(transform)
        flits = state.payload_flits(0)
        for phase, cycles in zip(schedule.phases, schedule.cycles_per_phase):
            slowest = max(flits + move.hops * scheduler4.router_pipeline_cycles for move in phase)
            assert cycles == slowest


class TestPhasedVersusNaive:
    def test_phased_schedule_is_faster_than_naive(self, scheduler5, mesh5):
        """The congestion-free phasing must beat full serialisation — this is
        the benefit Section 2.2 claims."""
        transform = XYShiftTransform(mesh5)
        moves = scheduler5.moves_for_transform(transform)
        schedule = scheduler5.schedule(moves)
        assert schedule.total_cycles < scheduler5.naive_cycles(moves)

    def test_rotation_schedule_longer_than_shift(self, scheduler5, mesh5):
        """Rotation moves payloads further, so its deterministic migration
        time is at least as long as the short-hop shift's."""
        rotation = scheduler5.schedule_for_transform(RotationTransform(mesh5))
        shift = scheduler5.schedule_for_transform(RightShiftTransform(mesh5))
        assert rotation.total_cycles >= shift.total_cycles

    def test_migration_fits_in_paper_period(self, scheduler5, mesh5, chip_e):
        """The whole migration must fit comfortably inside the paper's
        shortest period (109 us = 54 500 cycles at 500 MHz), otherwise the
        reported ~1.6 % throughput penalty would be impossible."""
        nodes = chip_e.tanner_nodes_per_pe()
        schedule = scheduler5.schedule_for_transform(XYShiftTransform(mesh5), nodes)
        period_cycles = chip_e.block_period_cycles(109.0)
        assert schedule.total_cycles < 0.2 * period_cycles


class TestPeMove:
    def test_hops(self):
        move = PeMove(source=(0, 0), destination=(2, 3), payload_flits=4)
        assert move.hops == 5
        assert not move.is_local

    def test_local_move(self):
        move = PeMove(source=(1, 1), destination=(1, 1), payload_flits=4)
        assert move.is_local
        assert move.hops == 0

    def test_scheduler_rejects_bad_pipeline(self, mesh4):
        with pytest.raises(ValueError):
            MigrationScheduler(mesh4, router_pipeline_cycles=0)
