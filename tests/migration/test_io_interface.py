"""Tests for the transparent I/O address translation."""

import pytest

from repro.migration.io_interface import IoAddressTranslator
from repro.migration.transforms import RotationTransform, XYShiftTransform
from repro.noc.flit import Packet, PacketClass


@pytest.fixture
def translator4(mesh4):
    return IoAddressTranslator(mesh4)


class TestTracking:
    def test_identity_before_any_migration(self, translator4, mesh4):
        for coord in mesh4.coordinates():
            assert translator4.current_location(coord) == coord
            assert translator4.original_location(coord) == coord

    def test_single_migration(self, translator4, mesh4):
        transform = XYShiftTransform(mesh4)
        translator4.record_migration(transform)
        assert translator4.migrations_applied == 1
        assert translator4.current_location((0, 0)) == (1, 1)
        assert translator4.original_location((1, 1)) == (0, 0)

    def test_composition_of_migrations(self, translator4, mesh4):
        shift = XYShiftTransform(mesh4)
        rotation = RotationTransform(mesh4)
        translator4.record_migration(shift)
        translator4.record_migration(rotation)
        expected = rotation(shift((0, 0)))
        assert translator4.current_location((0, 0)) == expected
        assert translator4.history == ["xy-shift", "rotation"]

    def test_full_orbit_returns_home(self, translator4, mesh4):
        transform = XYShiftTransform(mesh4)
        for _ in range(transform.order()):
            translator4.record_migration(transform)
        for coord in mesh4.coordinates():
            assert translator4.current_location(coord) == coord

    def test_reset(self, translator4, mesh4):
        translator4.record_migration(XYShiftTransform(mesh4))
        translator4.reset()
        assert translator4.migrations_applied == 0
        assert translator4.current_location((3, 3)) == (3, 3)

    def test_outside_coordinate_rejected(self, translator4):
        with pytest.raises(ValueError):
            translator4.current_location((9, 9))
        with pytest.raises(ValueError):
            translator4.original_location((9, 9))


class TestPacketTranslation:
    def test_incoming_packet_redirected(self, translator4, mesh4):
        translator4.record_migration(XYShiftTransform(mesh4))
        external = Packet(source=(0, 0), destination=(2, 2), size_flits=3)
        translated = translator4.translate_incoming(external)
        assert translated.destination == (3, 3)
        assert translated.packet_class == PacketClass.IO
        assert translated.size_flits == 3

    def test_outgoing_packet_source_restored(self, translator4, mesh4):
        translator4.record_migration(XYShiftTransform(mesh4))
        # The workload originally at (2,2) now runs at (3,3) and sends a packet.
        outbound = Packet(source=(3, 3), destination=(0, 0), size_flits=2)
        translated = translator4.translate_outgoing(outbound)
        assert translated.source == (2, 2)

    def test_round_trip_transparency(self, translator4, mesh4):
        """The outside world addresses PE (1,2); after any number of
        migrations the reply appears to come from (1,2) again."""
        for transform in (XYShiftTransform(mesh4), RotationTransform(mesh4)):
            translator4.record_migration(transform)
        inbound = Packet(source=(0, 0), destination=(1, 2), size_flits=1)
        redirected = translator4.translate_incoming(inbound)
        reply = Packet(source=redirected.destination, destination=(0, 0), size_flits=1)
        restored = translator4.translate_outgoing(reply)
        assert restored.source == (1, 2)

    def test_no_migration_is_identity_translation(self, translator4):
        packet = Packet(source=(0, 0), destination=(2, 1), size_flits=2)
        assert translator4.translate_incoming(packet).destination == (2, 1)
        assert translator4.translate_outgoing(packet).source == (0, 0)
