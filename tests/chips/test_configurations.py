"""Tests for the five chip configurations A-E."""

import numpy as np
import pytest

from repro.chips.configurations import (
    PAPER_BASE_PEAKS_CELSIUS,
    all_configurations,
    configuration_names,
    get_configuration,
)
from repro.chips.profiles import row_powers


class TestRoster:
    def test_five_configurations(self):
        configs = all_configurations()
        assert [c.name for c in configs] == ["A", "B", "C", "D", "E"]

    def test_mesh_sizes_match_paper(self):
        """A and B are 4x4 chips; C, D and E are 5x5 chips."""
        for name in ("A", "B"):
            config = get_configuration(name)
            assert (config.topology.width, config.topology.height) == (4, 4)
        for name in ("C", "D", "E"):
            config = get_configuration(name)
            assert (config.topology.width, config.topology.height) == (5, 5)

    def test_unknown_configuration(self):
        with pytest.raises(ValueError):
            get_configuration("Z")

    def test_lowercase_accepted(self):
        assert get_configuration("a").name == "A"

    def test_configuration_names(self):
        assert configuration_names() == ("A", "B", "C", "D", "E")

    def test_cached_instances(self):
        assert get_configuration("A") is get_configuration("A")


class TestCalibration:
    @pytest.mark.parametrize("name", ["A", "B", "C", "D", "E"])
    def test_baseline_peak_matches_figure1_axis(self, name):
        """Baseline (static mapping) peak temperature must equal the value the
        paper prints under each configuration in Figure 1."""
        config = get_configuration(name)
        assert config.base_peak_temperature() == pytest.approx(
            PAPER_BASE_PEAKS_CELSIUS[name], abs=0.01
        )

    @pytest.mark.parametrize("name", ["A", "B", "C", "D", "E"])
    def test_total_power_plausible(self, name):
        """A 160 nm chip of 70-110 mm^2 dissipating tens of watts."""
        config = get_configuration(name)
        assert 10.0 < config.total_power_w < 80.0

    @pytest.mark.parametrize("name", ["A", "B", "C", "D", "E"])
    def test_warm_band_exists(self, name):
        """Every configuration has one row with significantly higher power."""
        config = get_configuration(name)
        rows = row_powers(config.topology, config.power_map())
        others = np.delete(rows, np.argmax(rows))
        assert rows.max() > 1.2 * others.mean()

    def test_configuration_e_center_is_hot(self):
        config = get_configuration("E")
        power = config.power_map()
        center_power = power[(2, 2)]
        mean_power = np.mean(list(power.values()))
        assert center_power > 1.5 * mean_power


class TestWorkloadLinkage:
    @pytest.mark.parametrize("name", ["A", "C"])
    def test_workload_covers_all_pes(self, name):
        config = get_configuration(name)
        assert config.workload.num_tasks == config.num_units
        sizes = config.workload.partition.task_sizes()
        assert all(size > 0 for size in sizes)

    def test_per_task_power_totals_match_unit_power(self, chip_a):
        per_task = chip_a.per_task_power()
        assert sum(per_task.values()) == pytest.approx(chip_a.total_power_w)

    def test_power_map_with_migrated_mapping(self, chip_a):
        from repro.migration.transforms import XYShiftTransform

        shifted = chip_a.static_mapping.apply_transform(XYShiftTransform(chip_a.topology))
        migrated_power = chip_a.power_map(shifted)
        static_power = chip_a.power_map()
        # Total power is conserved, the spatial arrangement is not.
        assert sum(migrated_power.values()) == pytest.approx(sum(static_power.values()))
        assert migrated_power != static_power

    def test_tanner_nodes_per_pe_total(self, chip_a):
        per_pe = chip_a.tanner_nodes_per_pe()
        assert sum(per_pe.values()) == chip_a.workload.partition.graph.num_nodes

    def test_block_period_cycles(self, chip_a):
        assert chip_a.block_period_cycles(109.0) == 54500

    def test_description_present(self):
        for config in all_configurations():
            assert config.description
