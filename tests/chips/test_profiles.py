"""Tests for the power-profile construction and calibration."""

import numpy as np
import pytest

from repro.chips.profiles import (
    calibrate_profile,
    center_hotspot_profile,
    hot_row_profile,
    profile_statistics,
    row_powers,
)
from repro.thermal.hotspot import HotSpotModel


class TestHotRowProfile:
    def test_hot_row_is_hottest(self, mesh4):
        profile = hot_row_profile(mesh4, hot_row=2, hot_multiplier=2.0)
        rows = row_powers(mesh4, profile)
        assert np.argmax(rows) == 2

    def test_all_values_positive(self, mesh5):
        profile = hot_row_profile(mesh5, hot_row=1, hot_multiplier=3.0, seed=1)
        assert all(value > 0 for value in profile.values())

    def test_rejects_row_outside_mesh(self, mesh4):
        with pytest.raises(ValueError):
            hot_row_profile(mesh4, hot_row=4)

    def test_rejects_non_hot_multiplier(self, mesh4):
        with pytest.raises(ValueError):
            hot_row_profile(mesh4, hot_row=1, hot_multiplier=1.0)

    def test_gradient_tilts_columns(self, mesh4):
        profile = hot_row_profile(mesh4, hot_row=0, hot_multiplier=2.0, gradient=0.3)
        assert profile[(3, 2)] > profile[(0, 2)]

    def test_seed_reproducibility(self, mesh4):
        a = hot_row_profile(mesh4, hot_row=1, hot_multiplier=2.0, seed=9)
        b = hot_row_profile(mesh4, hot_row=1, hot_multiplier=2.0, seed=9)
        assert a == b


class TestCenterHotspotProfile:
    def test_center_is_hottest(self, mesh5):
        profile = center_hotspot_profile(mesh5, center_multiplier=2.5)
        assert max(profile, key=profile.get) == (2, 2)

    def test_power_decays_with_distance_from_center(self, mesh5):
        profile = center_hotspot_profile(mesh5, center_multiplier=2.5)
        assert profile[(2, 2)] > profile[(1, 2)] > profile[(0, 2)]

    def test_optional_hot_row_layered(self, mesh5):
        base = center_hotspot_profile(mesh5, center_multiplier=2.0)
        with_row = center_hotspot_profile(
            mesh5, center_multiplier=2.0, hot_row=1, hot_row_multiplier=1.5
        )
        assert with_row[(0, 1)] > base[(0, 1)]

    def test_rejects_weak_center(self, mesh5):
        with pytest.raises(ValueError):
            center_hotspot_profile(mesh5, center_multiplier=1.0)


class TestCalibration:
    def test_hits_target_peak_exactly(self, mesh4, thermal4):
        profile = hot_row_profile(mesh4, hot_row=2, hot_multiplier=2.5)
        calibrated, scale = calibrate_profile(profile, thermal4, target_peak_celsius=85.44)
        assert scale > 0
        assert thermal4.peak_temperature(calibrated) == pytest.approx(85.44, abs=1e-6)

    def test_scale_preserves_shape(self, mesh4, thermal4):
        profile = hot_row_profile(mesh4, hot_row=2, hot_multiplier=2.5)
        calibrated, scale = calibrate_profile(profile, thermal4, target_peak_celsius=80.0)
        for coord, value in profile.items():
            assert calibrated[coord] == pytest.approx(value * scale)

    def test_rejects_target_below_ambient(self, mesh4, thermal4):
        profile = hot_row_profile(mesh4, hot_row=0, hot_multiplier=2.0)
        with pytest.raises(ValueError):
            calibrate_profile(profile, thermal4, target_peak_celsius=30.0)

    def test_zero_profile_rejected(self, mesh4, thermal4):
        with pytest.raises(ValueError):
            calibrate_profile({c: 0.0 for c in mesh4.coordinates()}, thermal4, 80.0)


class TestStatistics:
    def test_profile_statistics_keys(self, mesh4):
        profile = hot_row_profile(mesh4, hot_row=1, hot_multiplier=2.0)
        stats = profile_statistics(profile)
        assert stats["max_w"] >= stats["mean_w"] >= stats["min_w"] > 0
        assert stats["imbalance"] >= 1.0
        assert stats["total_w"] == pytest.approx(sum(profile.values()))

    def test_row_powers_shape(self, mesh5):
        profile = hot_row_profile(mesh5, hot_row=4, hot_multiplier=2.0)
        rows = row_powers(mesh5, profile)
        assert rows.shape == (5,)
        assert rows.sum() == pytest.approx(sum(profile.values()))
