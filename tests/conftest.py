"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chips import get_configuration
from repro.ldpc import LdpcEncoder, TannerGraph, array_code_parity_matrix, striped_partition
from repro.ldpc.workload import LdpcNocWorkload, WorkloadParameters
from repro.noc import MeshTopology, Network, NocSimulator
from repro.placement import Mapping
from repro.thermal import HotSpotModel


@pytest.fixture
def mesh4() -> MeshTopology:
    """A 4x4 mesh (the paper's smaller chip)."""
    return MeshTopology(4, 4)


@pytest.fixture
def mesh5() -> MeshTopology:
    """A 5x5 mesh (the paper's larger chip)."""
    return MeshTopology(5, 5)


@pytest.fixture
def mesh3x2() -> MeshTopology:
    """A small non-square mesh for edge cases."""
    return MeshTopology(3, 2)


@pytest.fixture
def network4(mesh4) -> Network:
    """An XY-routed 4x4 network."""
    return Network(mesh4, routing="xy", buffer_depth=4)


@pytest.fixture
def simulator4(mesh4) -> NocSimulator:
    return NocSimulator(mesh4)


@pytest.fixture(scope="session")
def small_code():
    """A small LDPC code (p=7 array code) and its Tanner graph."""
    H = array_code_parity_matrix(p=7, j=3, k=6)
    return H, TannerGraph(H)


@pytest.fixture(scope="session")
def small_encoder(small_code):
    H, _graph = small_code
    return LdpcEncoder(H)


@pytest.fixture(scope="session")
def small_workload(small_code) -> LdpcNocWorkload:
    """The small code striped over 16 PEs."""
    _H, graph = small_code
    partition = striped_partition(graph, 16)
    return LdpcNocWorkload(partition, WorkloadParameters())


@pytest.fixture
def identity_mapping4(mesh4) -> Mapping:
    return Mapping.identity(mesh4)


@pytest.fixture
def thermal4(mesh4) -> HotSpotModel:
    return HotSpotModel(mesh4)


@pytest.fixture(scope="session")
def chip_a():
    """Configuration A (cached at module scope in repro.chips already)."""
    return get_configuration("A")


@pytest.fixture(scope="session")
def chip_e():
    return get_configuration("E")


@pytest.fixture
def uniform_power4(mesh4):
    """A flat 2 W per-unit power map on the 4x4 mesh."""
    return {coord: 2.0 for coord in mesh4.coordinates()}
