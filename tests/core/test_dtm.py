"""Tests for the conventional DTM baselines (stop-go, DVFS)."""

import pytest

from repro.core.dtm import (
    DtmComparison,
    DvfsThrottling,
    StopGoThrottling,
    compare_with_migration,
)


class TestStopGoThrottling:
    def test_full_duty_cycle_is_baseline(self, chip_a):
        dtm = StopGoThrottling(chip_a)
        point = dtm.operating_point(1.0)
        assert point.peak_celsius == pytest.approx(chip_a.base_peak_temperature(), abs=1e-6)
        assert point.throughput_fraction == 1.0

    def test_lower_duty_cycle_is_cooler_and_slower(self, chip_a):
        dtm = StopGoThrottling(chip_a)
        full = dtm.operating_point(1.0)
        half = dtm.operating_point(0.5)
        assert half.peak_celsius < full.peak_celsius
        assert half.throughput_penalty == pytest.approx(0.5)

    def test_duty_cycle_for_peak_monotone(self, chip_a):
        dtm = StopGoThrottling(chip_a)
        base = chip_a.base_peak_temperature()
        mild = dtm.duty_cycle_for_peak(base - 2.0)
        aggressive = dtm.duty_cycle_for_peak(base - 8.0)
        assert 0 < aggressive < mild <= 1.0

    def test_duty_cycle_for_peak_achieves_target(self, chip_a):
        dtm = StopGoThrottling(chip_a)
        target = chip_a.base_peak_temperature() - 5.0
        duty = dtm.duty_cycle_for_peak(target)
        assert dtm.operating_point(duty).peak_celsius == pytest.approx(target, abs=0.2)

    def test_target_above_baseline_costs_nothing(self, chip_a):
        dtm = StopGoThrottling(chip_a)
        assert dtm.duty_cycle_for_peak(chip_a.base_peak_temperature() + 5.0) == 1.0

    def test_unreachable_target_rejected(self, chip_a):
        dtm = StopGoThrottling(chip_a)
        with pytest.raises(ValueError):
            dtm.duty_cycle_for_peak(30.0)  # below ambient

    def test_invalid_parameters(self, chip_a):
        with pytest.raises(ValueError):
            StopGoThrottling(chip_a, idle_fraction_of_power=1.0)
        dtm = StopGoThrottling(chip_a)
        with pytest.raises(ValueError):
            dtm.power_map(0.0)
        with pytest.raises(ValueError):
            dtm.power_map(1.5)


class TestDvfsThrottling:
    def test_full_frequency_is_baseline(self, chip_a):
        dvfs = DvfsThrottling(chip_a)
        assert dvfs.operating_point(1.0).peak_celsius == pytest.approx(
            chip_a.base_peak_temperature(), abs=1e-6
        )

    def test_voltage_scaling_cools_faster_than_frequency_alone(self, chip_a):
        with_voltage = DvfsThrottling(chip_a, scale_voltage=True)
        without_voltage = DvfsThrottling(chip_a, scale_voltage=False)
        assert (
            with_voltage.operating_point(0.7).peak_celsius
            < without_voltage.operating_point(0.7).peak_celsius
        )

    def test_frequency_for_peak_achieves_target(self, chip_a):
        dvfs = DvfsThrottling(chip_a)
        target = chip_a.base_peak_temperature() - 5.0
        ratio = dvfs.frequency_for_peak(target)
        assert 0 < ratio <= 1.0
        assert dvfs.operating_point(ratio).peak_celsius <= target + 1e-9

    def test_unreachable_target_rejected(self, chip_a):
        dvfs = DvfsThrottling(chip_a)
        with pytest.raises(ValueError):
            dvfs.frequency_for_peak(30.0)

    def test_invalid_parameters(self, chip_a):
        with pytest.raises(ValueError):
            DvfsThrottling(chip_a, leakage_fraction_of_power=1.5)
        with pytest.raises(ValueError):
            DvfsThrottling(chip_a, min_voltage_ratio=0.0)
        dvfs = DvfsThrottling(chip_a)
        with pytest.raises(ValueError):
            dvfs.power_map(0.0)
        with pytest.raises(ValueError):
            dvfs.frequency_for_peak(70.0, resolution=2.0)


class TestComparisonWithMigration:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.chips import get_configuration

        return compare_with_migration(
            get_configuration("A"), scheme="xy-shift", num_epochs=21
        )

    def test_rows_structure(self, comparison):
        rows = comparison.to_rows()
        assert len(rows) == 3
        assert {"technique", "peak_c", "throughput_penalty_pct"} <= set(rows[0])

    def test_migration_much_cheaper_than_global_throttling(self, comparison):
        """The paper's motivating claim: reaching the migrated peak
        temperature by slowing the whole chip costs far more throughput than
        migration does."""
        assert comparison.migration_penalty < 0.05
        assert comparison.stop_go_penalty > 3 * comparison.migration_penalty
        assert comparison.dvfs_penalty > comparison.migration_penalty

    def test_penalties_in_unit_interval(self, comparison):
        for value in (
            comparison.migration_penalty,
            comparison.stop_go_penalty,
            comparison.dvfs_penalty,
        ):
            assert 0.0 <= value < 1.0
