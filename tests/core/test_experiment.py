"""Tests for the end-to-end thermal experiment driver."""

import pytest

from repro.core.experiment import ExperimentSettings, ThermalExperiment
from repro.core.policy import (
    AdaptiveMigrationPolicy,
    NoMigrationPolicy,
    PeriodicMigrationPolicy,
    ThresholdMigrationPolicy,
)


FAST_STEADY = ExperimentSettings(num_epochs=21, mode="steady", settle_epochs=20)
FAST_TRANSIENT = ExperimentSettings(
    num_epochs=13, mode="transient", settle_epochs=8, transient_steps_per_epoch=4
)


class TestSettingsValidation:
    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            ExperimentSettings(mode="magic")

    def test_rejects_bad_epochs(self):
        with pytest.raises(ValueError):
            ExperimentSettings(num_epochs=0)

    def test_rejects_bad_settle(self):
        with pytest.raises(ValueError):
            ExperimentSettings(num_epochs=10, settle_epochs=11)
        with pytest.raises(ValueError):
            ExperimentSettings(settle_fraction=0.0)

    def test_settled_count_override(self):
        settings = ExperimentSettings(num_epochs=10, settle_epochs=4)
        assert settings.settled_count(10) == 4
        default = ExperimentSettings(num_epochs=10)
        assert default.settled_count(10) == 5


class TestStaticBaseline:
    def test_no_migration_changes_nothing(self, chip_a):
        experiment = ThermalExperiment(chip_a, NoMigrationPolicy(), settings=FAST_STEADY)
        result = experiment.run()
        assert result.migrations_performed == 0
        assert result.throughput_penalty == 0.0
        assert result.settled_peak_celsius == pytest.approx(result.baseline_peak_celsius, abs=1e-6)
        assert result.peak_reduction_celsius == pytest.approx(0.0, abs=1e-6)

    def test_baseline_matches_figure1_axis(self, chip_a):
        experiment = ThermalExperiment(chip_a, NoMigrationPolicy(), settings=FAST_STEADY)
        result = experiment.run()
        assert result.baseline_peak_celsius == pytest.approx(85.44, abs=0.01)


class TestPeriodicMigrationSteady:
    def test_xy_shift_reduces_peak_on_A(self, chip_a):
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        result = ThermalExperiment(chip_a, policy, settings=FAST_STEADY).run()
        assert result.peak_reduction_celsius > 2.0
        assert result.migrations_performed == FAST_STEADY.num_epochs - 1
        assert 0.0 < result.throughput_penalty < 0.05

    def test_rotation_does_not_help_on_E(self, chip_e):
        """The centre hotspot of configuration E is a fixed point of rotation,
        so rotation gives (at best) marginal reduction there — the paper even
        reports a small increase."""
        policy = PeriodicMigrationPolicy(chip_e.topology, "rotation", period_us=109.0)
        result = ThermalExperiment(chip_e, policy, settings=FAST_STEADY).run()
        assert result.peak_reduction_celsius < 1.0

    def test_migration_energy_raises_mean_temperature(self, chip_a):
        policy = PeriodicMigrationPolicy(chip_a.topology, "rotation", period_us=109.0)
        with_energy = ThermalExperiment(
            chip_a, policy, settings=ExperimentSettings(num_epochs=21, settle_epochs=20)
        ).run()
        without_energy = ThermalExperiment(
            chip_a,
            PeriodicMigrationPolicy(chip_a.topology, "rotation", period_us=109.0),
            settings=ExperimentSettings(
                num_epochs=21, settle_epochs=20, include_migration_energy=False
            ),
        ).run()
        assert with_energy.settled_mean_celsius > without_energy.settled_mean_celsius

    def test_epoch_records_complete(self, chip_a):
        policy = PeriodicMigrationPolicy(chip_a.topology, "x-mirror", period_us=109.0)
        result = ThermalExperiment(chip_a, policy, settings=FAST_STEADY).run()
        assert len(result.epochs) == FAST_STEADY.num_epochs
        assert result.epochs[0].transform_applied is None  # skip_first
        assert all(e.transform_applied == "x-mirror" for e in result.epochs[1:])

    def test_summary_round_trip(self, chip_a):
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        result = ThermalExperiment(chip_a, policy, settings=FAST_STEADY).run()
        summary = result.summary()
        assert summary["configuration"] == "A"
        assert summary["period_us"] == 109.0


class TestTransientMode:
    def test_transient_close_to_steady(self, chip_a):
        """With a 109 us period and millisecond-scale die time constants the
        within-period ripple is tiny, so transient and steady estimates of the
        settled peak agree closely (the paper's <0.1 degC observation)."""
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        steady = ThermalExperiment(chip_a, policy, settings=FAST_STEADY).run()
        policy2 = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        transient = ThermalExperiment(chip_a, policy2, settings=FAST_TRANSIENT).run()
        assert transient.settled_peak_celsius == pytest.approx(
            steady.settled_peak_celsius, abs=1.0
        )

    def test_transient_records_per_epoch_metrics(self, chip_a):
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        result = ThermalExperiment(chip_a, policy, settings=FAST_TRANSIENT).run()
        assert len(result.epochs) == FAST_TRANSIENT.num_epochs
        assert all(e.thermal.peak_celsius > 40.0 for e in result.epochs)


class TestOtherPolicies:
    def test_threshold_policy_runs(self, chip_a):
        policy = ThresholdMigrationPolicy(
            chip_a.topology, "xy-shift", trigger_celsius=80.0, period_us=109.0
        )
        result = ThermalExperiment(chip_a, policy, settings=FAST_STEADY).run()
        # Baseline peak is ~85 C (> trigger), so migrations must happen.
        assert result.migrations_performed > 0

    def test_threshold_policy_idle_when_cool(self, chip_a):
        policy = ThresholdMigrationPolicy(
            chip_a.topology, "xy-shift", trigger_celsius=150.0, period_us=109.0
        )
        result = ThermalExperiment(chip_a, policy, settings=FAST_STEADY).run()
        assert result.migrations_performed == 0

    def test_adaptive_policy_reduces_peak(self, chip_e):
        policy = AdaptiveMigrationPolicy(chip_e.topology, period_us=109.0)
        result = ThermalExperiment(chip_e, policy, settings=FAST_STEADY).run()
        assert result.peak_reduction_celsius > 0.0
