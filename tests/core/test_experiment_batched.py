"""Parity suite: the array-native batched pipeline vs the seed per-epoch path.

The seed experiment driver shuttled one ``Dict[Coordinate, float]`` power map
per epoch into the thermal model (one solve per epoch in steady mode, one
``transient()`` call per epoch in transient mode).  The batched pipeline must
reproduce those numbers to <1e-9 K on the paper's chip configurations; the
reference implementations below replicate the seed loops verbatim on top of
the public dict-view APIs.
"""

import numpy as np
import pytest

from repro.chips import get_configuration
from repro.core.controller import RuntimeReconfigurationController
from repro.core.experiment import ExperimentSettings, ThermalExperiment
from repro.core.metrics import ThermalMetrics
from repro.core.policy import PeriodicMigrationPolicy, PolicyContext
from repro.thermal.grid import GridThermalModel
from repro.thermal.model import ThermalModel

#: Configurations the parity suite pins (both mesh sizes plus the
#: centre-hotspot case where rotation's energy penalty matters).
PARITY_CONFIGURATIONS = ("A", "C", "E")

STEADY = ExperimentSettings(num_epochs=13, mode="steady", settle_epochs=12)
TRANSIENT = ExperimentSettings(
    num_epochs=9, mode="transient", settle_epochs=6, transient_steps_per_epoch=4
)


# ----------------------------------------------------------------------
# Seed-equivalent reference implementations (dict-per-epoch loops)
# ----------------------------------------------------------------------
def _reference_epochs(chip, policy, settings):
    """The seed policy/controller loop: one power dict per epoch."""
    policy.reset()
    controller = RuntimeReconfigurationController(
        chip, include_migration_energy=settings.include_migration_energy
    )
    period_s = policy.period_us * 1e-6
    epochs = []
    previous_power = controller.static_power_map()
    for epoch_index in range(settings.num_epochs):
        context = PolicyContext(
            epoch_index=epoch_index,
            current_thermal=None,
            current_power_map=previous_power,
            topology=chip.topology,
        )
        transform = policy.decide(context)
        cost = None
        name = None
        if transform is not None and transform.name != "identity":
            cost = controller.apply_migration(transform, epoch_index)
            name = transform.name
        power = controller.epoch_power_map(period_s, cost)
        epochs.append((power, cost, name))
        previous_power = power
        controller.advance_epoch()
    return epochs


def reference_steady(chip, policy, settings, thermal_model=None):
    """The seed steady mode: one solve per epoch plus baseline and average."""
    model = thermal_model or chip.thermal_model
    baseline = ThermalMetrics.from_map(
        model.steady_state_by_coord(chip.power_map())
    )
    epochs = _reference_epochs(chip, policy, settings)
    per_epoch = [
        ThermalMetrics.from_map(model.steady_state_by_coord(power))
        for power, _cost, _name in epochs
    ]
    settle_count = settings.settled_count(len(epochs))
    averaged = {coord: 0.0 for coord in chip.topology.coordinates()}
    for power, _cost, _name in epochs[-settle_count:]:
        for coord, watts in power.items():
            averaged[coord] += watts / settle_count
    settled = ThermalMetrics.from_map(model.steady_state_by_coord(averaged))
    return baseline, per_epoch, settled


def reference_transient(chip, policy, settings, thermal_model=None):
    """The seed transient mode: one ``transient()`` call per epoch."""
    model = thermal_model or chip.thermal_model
    period_s = policy.period_us * 1e-6
    time_step = period_s / settings.transient_steps_per_epoch
    epochs = _reference_epochs(chip, policy, settings)

    averaged = {coord: 0.0 for coord in chip.topology.coordinates()}
    for power, _cost, _name in epochs:
        for coord, watts in power.items():
            averaged[coord] += watts / len(epochs)
    state = model.warm_state(averaged)

    peak_by_epoch = []
    per_epoch = []
    for power, _cost, _name in epochs:
        result = model.transient(
            power,
            period_s,
            initial_state=state,
            time_step_s=time_step,
            method=settings.thermal_method,
        )
        state = result.final_state_kelvin
        series = model.unit_series(result)
        final = {
            coord: float(series[idx, -1])
            for idx, coord in enumerate(chip.topology.coordinates())
        }
        peak_by_epoch.append(float(series.max()))
        per_epoch.append(ThermalMetrics.from_map(final))

    settle_count = settings.settled_count(len(epochs))
    settled_peak = float(np.max(peak_by_epoch[-settle_count:]))
    settled_mean = float(
        np.mean([metric.mean_celsius for metric in per_epoch[-settle_count:]])
    )
    return per_epoch, peak_by_epoch, settled_peak, settled_mean


# ----------------------------------------------------------------------
@pytest.mark.parametrize("config_name", PARITY_CONFIGURATIONS)
class TestSteadyParity:
    def test_batched_steady_matches_seed_path(self, config_name):
        chip = get_configuration(config_name)
        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        result = ThermalExperiment(chip, policy, settings=STEADY).run()

        reference_policy = PeriodicMigrationPolicy(
            chip.topology, "xy-shift", period_us=109.0
        )
        baseline, per_epoch, settled = reference_steady(
            chip, reference_policy, STEADY
        )

        assert result.baseline_peak_celsius == pytest.approx(
            baseline.peak_celsius, abs=1e-9
        )
        assert result.baseline_mean_celsius == pytest.approx(
            baseline.mean_celsius, abs=1e-9
        )
        assert result.settled_peak_celsius == pytest.approx(
            settled.peak_celsius, abs=1e-9
        )
        assert result.settled_mean_celsius == pytest.approx(
            settled.mean_celsius, abs=1e-9
        )
        assert len(result.epochs) == len(per_epoch)
        for record, expected in zip(result.epochs, per_epoch):
            assert record.thermal.peak_celsius == pytest.approx(
                expected.peak_celsius, abs=1e-9
            )
            assert record.thermal.mean_celsius == pytest.approx(
                expected.mean_celsius, abs=1e-9
            )
            for coord, value in expected.per_unit_celsius.items():
                assert record.thermal.per_unit_celsius[coord] == pytest.approx(
                    value, abs=1e-9
                )

    def test_steady_mode_single_batched_solve(self, config_name):
        chip = get_configuration(config_name)
        solver = chip.thermal_model.solver
        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        experiment = ThermalExperiment(chip, policy, settings=STEADY)
        solves_before = solver.steady_solve_count
        factorizations_before = solver.step_factorization_count
        experiment.run()
        # One multi-RHS solve for baseline + all epochs + settled average,
        # zero transient step-matrix factorisations.
        assert solver.steady_solve_count - solves_before == 1
        assert solver.step_factorization_count == factorizations_before


@pytest.mark.parametrize("config_name", PARITY_CONFIGURATIONS)
@pytest.mark.parametrize("method", ["euler", "spectral"])
class TestTransientParity:
    def test_sequenced_transient_matches_seed_path(self, config_name, method):
        chip = get_configuration(config_name)
        settings = ExperimentSettings(
            num_epochs=TRANSIENT.num_epochs,
            mode="transient",
            settle_epochs=TRANSIENT.settle_epochs,
            transient_steps_per_epoch=TRANSIENT.transient_steps_per_epoch,
            thermal_method=method,
        )
        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        result = ThermalExperiment(chip, policy, settings=settings).run()

        reference_policy = PeriodicMigrationPolicy(
            chip.topology, "xy-shift", period_us=109.0
        )
        per_epoch, _peaks, settled_peak, settled_mean = reference_transient(
            chip, reference_policy, settings
        )

        assert result.settled_peak_celsius == pytest.approx(settled_peak, abs=1e-9)
        assert result.settled_mean_celsius == pytest.approx(settled_mean, abs=1e-9)
        for record, expected in zip(result.epochs, per_epoch):
            assert record.thermal.peak_celsius == pytest.approx(
                expected.peak_celsius, abs=1e-9
            )
            assert record.thermal.mean_celsius == pytest.approx(
                expected.mean_celsius, abs=1e-9
            )


class TestTransientGuards:
    def test_one_transient_sequence_no_per_epoch_solves(self, chip_a):
        solver = chip_a.thermal_model.solver
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        experiment = ThermalExperiment(chip_a, policy, settings=TRANSIENT)
        transients_before = solver.transient_count
        sequences_before = solver.transient_sequence_count
        experiment.run()
        # The whole trace goes through one transient_sequence call; the
        # experiment layer issues zero per-epoch transient() round-trips.
        assert solver.transient_count == transients_before
        assert solver.transient_sequence_count - sequences_before == 1


class TestGridModelExperiment:
    """The refined model satisfies the protocol and drives the experiment."""

    def test_models_satisfy_protocol(self, chip_a):
        grid = GridThermalModel(chip_a.topology, resolution=2)
        assert isinstance(chip_a.thermal_model, ThermalModel)
        assert isinstance(grid, ThermalModel)

    def test_steady_experiment_on_grid_model(self, chip_a):
        grid = GridThermalModel(
            chip_a.topology, resolution=2, package=chip_a.thermal_model.package
        )
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        result = ThermalExperiment(
            chip_a, policy, settings=STEADY, thermal_model=grid
        ).run()

        reference_policy = PeriodicMigrationPolicy(
            chip_a.topology, "xy-shift", period_us=109.0
        )
        baseline, per_epoch, settled = reference_steady(
            chip_a, reference_policy, STEADY, thermal_model=grid
        )
        assert result.baseline_peak_celsius == pytest.approx(
            baseline.peak_celsius, abs=1e-9
        )
        assert result.settled_peak_celsius == pytest.approx(
            settled.peak_celsius, abs=1e-9
        )
        for record, expected in zip(result.epochs, per_epoch):
            assert record.thermal.peak_celsius == pytest.approx(
                expected.peak_celsius, abs=1e-9
            )
        # Grid resolution should agree with the block model to within the
        # discretisation error, not exactly.
        block_result = ThermalExperiment(chip_a, policy, settings=STEADY).run()
        assert result.settled_peak_celsius == pytest.approx(
            block_result.settled_peak_celsius, abs=2.0
        )

    def test_transient_experiment_on_grid_model(self, chip_a):
        grid = GridThermalModel(
            chip_a.topology, resolution=2, package=chip_a.thermal_model.package
        )
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        result = ThermalExperiment(
            chip_a, policy, settings=TRANSIENT, thermal_model=grid
        ).run()
        assert len(result.epochs) == TRANSIENT.num_epochs
        assert all(e.thermal.peak_celsius > 40.0 for e in result.epochs)
        assert grid.solver.transient_count == 0
        assert grid.solver.transient_sequence_count == 1
