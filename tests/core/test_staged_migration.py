"""Staged-migration equivalence suite.

Two pins: the ``sudden`` default rides the unchanged legacy path (the
existing parity suite covers its numbers), and the staged execution
machinery — ``begin_plan``/``advance_plan`` driven from the epoch loop —
reproduces the legacy trajectory to <1e-9 when every plan collapses to one
stage (fluid with an over-sized budget).  The rest of the suite covers the
genuinely-staged behaviours: plan accounting, stall semantics, the
``migration_in_progress`` policy flag and the solve-count guarantee.
"""

import numpy as np
import pytest

from repro import obs
from repro.chips import get_configuration
from repro.core.experiment import ExperimentSettings, ThermalExperiment
from repro.core.policy import (
    AdaptiveMigrationPolicy,
    PeriodicMigrationPolicy,
    PolicyContext,
    ThresholdMigrationPolicy,
)
from repro.thermal.grid import GridThermalModel

STEADY = dict(num_epochs=13, mode="steady", settle_epochs=10)
TRANSIENT = dict(
    num_epochs=9, mode="transient", settle_epochs=6, transient_steps_per_epoch=4
)


def _policy(kind, topology):
    if kind == "threshold":
        return ThresholdMigrationPolicy(
            topology, "xy-shift", trigger_celsius=70.0, period_us=109.0
        )
    return AdaptiveMigrationPolicy(topology, period_us=109.0)


def _run(chip, policy_kind, mode_kwargs, thermal_model=None, **setting_overrides):
    settings = ExperimentSettings(**{**mode_kwargs, **setting_overrides})
    experiment = ThermalExperiment(
        chip,
        _policy(policy_kind, chip.topology),
        settings=settings,
        thermal_model=thermal_model,
    )
    return experiment, experiment.run()


def _assert_trajectories_match(result, reference, abs_tol=1e-9):
    assert result.migrations_performed == reference.migrations_performed
    assert result.throughput_penalty == pytest.approx(
        reference.throughput_penalty, abs=abs_tol
    )
    assert result.settled_peak_celsius == pytest.approx(
        reference.settled_peak_celsius, abs=abs_tol
    )
    assert result.settled_mean_celsius == pytest.approx(
        reference.settled_mean_celsius, abs=abs_tol
    )
    assert len(result.epochs) == len(reference.epochs)
    for record, expected in zip(result.epochs, reference.epochs):
        assert record.transform_applied == expected.transform_applied
        assert record.mapping_permutation == expected.mapping_permutation
        assert record.thermal.peak_celsius == pytest.approx(
            expected.thermal.peak_celsius, abs=abs_tol
        )
        assert record.thermal.mean_celsius == pytest.approx(
            expected.thermal.mean_celsius, abs=abs_tol
        )


@pytest.mark.parametrize("config_name", ["A", "E"])
@pytest.mark.parametrize("policy_kind", ["threshold", "adaptive"])
class TestSingleStageParity:
    """Fluid with a one-stage budget must match the legacy sudden path."""

    @pytest.mark.parametrize("mode_kwargs", [STEADY, TRANSIENT], ids=["steady", "transient"])
    def test_hotspot_model_parity(self, config_name, policy_kind, mode_kwargs):
        chip = get_configuration(config_name)
        _, sudden = _run(chip, policy_kind, mode_kwargs)
        _, staged = _run(
            chip,
            policy_kind,
            mode_kwargs,
            migration_style="fluid",
            units_per_epoch=chip.topology.num_nodes,
        )
        _assert_trajectories_match(staged, sudden)

    def test_grid_model_parity(self, config_name, policy_kind):
        chip = get_configuration(config_name)
        model = GridThermalModel(chip.topology, resolution=2)
        _, sudden = _run(chip, policy_kind, STEADY, thermal_model=model)
        _, staged = _run(
            chip,
            policy_kind,
            STEADY,
            thermal_model=model,
            migration_style="fluid",
            units_per_epoch=chip.topology.num_nodes,
        )
        _assert_trajectories_match(staged, sudden)


class TestSuddenDefault:
    def test_default_style_is_sudden(self):
        assert ExperimentSettings().migration_style == "sudden"
        assert ExperimentSettings().units_per_epoch == 2

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(migration_style="teleport")
        with pytest.raises(ValueError):
            ExperimentSettings(units_per_epoch=0)

    def test_explicit_sudden_is_bit_identical_to_default(self, chip_a):
        _, default = _run(chip_a, "threshold", STEADY)
        _, explicit = _run(chip_a, "threshold", STEADY, migration_style="sudden")
        for record, expected in zip(explicit.epochs, default.epochs):
            assert record.thermal.peak_celsius == expected.thermal.peak_celsius
            assert record.migration_cycles == expected.migration_cycles
            assert record.migration_energy_j == expected.migration_energy_j


class TestStagedExecution:
    def test_plan_counts_as_one_migration(self, chip_a):
        """A fluid plan spanning several epochs is still ONE migration."""
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        settings = ExperimentSettings(
            num_epochs=13,
            settle_epochs=10,
            migration_style="fluid",
            units_per_epoch=1,
        )
        experiment = ThermalExperiment(chip_a, policy, settings=settings)
        result = experiment.run()
        events = experiment.controller.events
        stage_counts = {event.stage_count for event in events}
        assert max(stage_counts) > 1  # genuinely staged
        plans = sum(1 for event in events if event.stage_index == 0)
        assert result.migrations_performed == plans
        # Per-event cycle/energy accounting folds back to the totals.
        assert sum(event.cycles for event in events) == sum(
            record.migration_cycles for record in result.epochs
        )

    def test_staged_final_mapping_matches_sudden(self, chip_a):
        """However a single plan unfolds, it composes to the same mapping."""
        def final_mapping(style, units):
            policy = PeriodicMigrationPolicy(
                chip_a.topology, "rotation", period_us=109.0
            )
            settings = ExperimentSettings(
                num_epochs=2,
                settle_epochs=1,
                migration_style=style,
                units_per_epoch=units,
            )
            experiment = ThermalExperiment(chip_a, policy, settings=settings)
            experiment.run()
            # Drain the in-flight plan so every style completes its one plan.
            while experiment.controller.migration_in_progress:
                experiment.controller.advance_plan()
            return experiment.controller.current_mapping.to_permutation()

        sudden = final_mapping("sudden", 2)
        assert final_mapping("fluid", 1) == sudden
        assert final_mapping("batched", 2) == sudden

    def test_policy_sees_migration_in_progress(self, chip_a):
        seen = []

        class RecordingPolicy(PeriodicMigrationPolicy):
            def decide(self, context: PolicyContext):
                seen.append(context.migration_in_progress)
                return super().decide(context)

        policy = RecordingPolicy(chip_a.topology, "rotation", period_us=109.0)
        settings = ExperimentSettings(
            num_epochs=8,
            settle_epochs=4,
            migration_style="fluid",
            units_per_epoch=1,
        )
        ThermalExperiment(chip_a, policy, settings=settings).run()
        assert any(seen)  # mid-plan epochs advertise the in-flight plan
        assert not seen[0]  # nothing in flight before the first decision

    def test_stalled_epochs_counted(self, chip_a):
        """Decisions that wanted a migration while a plan is in flight bump
        the ``migration.stalled_epochs`` counter."""
        registry = obs.get_registry()
        stalled = registry.counter("migration.stalled_epochs")
        obs.enable()
        try:
            before = stalled.value
            policy = PeriodicMigrationPolicy(
                chip_a.topology, "rotation", period_us=109.0
            )
            settings = ExperimentSettings(
                num_epochs=10,
                settle_epochs=5,
                migration_style="fluid",
                units_per_epoch=1,
            )
            ThermalExperiment(chip_a, policy, settings=settings).run()
            assert stalled.value > before
        finally:
            obs.disable()

    def test_staged_steady_run_is_one_batched_solve(self, chip_a):
        solver = chip_a.thermal_model.solver
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        settings = ExperimentSettings(
            num_epochs=13,
            settle_epochs=10,
            migration_style="fluid",
            units_per_epoch=2,
        )
        experiment = ThermalExperiment(chip_a, policy, settings=settings)
        before = solver.steady_solve_count
        experiment.run()
        assert solver.steady_solve_count - before == 1


class TestCyclesRunCheckpoint:
    def test_state_dict_round_trips_cycles_run(self, chip_a):
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        settings = ExperimentSettings(num_epochs=12, settle_epochs=6)
        experiment = ThermalExperiment(chip_a, policy, settings=settings)
        experiment.prepare(collect_records=False)
        experiment.step_window(6)
        state = experiment.state_dict()
        assert state["cycles_run"] == experiment._cycles_run
        assert state["cycles_run"] > 0

        resumed = ThermalExperiment(
            chip_a,
            PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0),
            settings=settings,
        )
        resumed.prepare(collect_records=False)
        resumed.restore_state(state)
        assert resumed._cycles_run == experiment._cycles_run

    def test_old_checkpoints_without_cycles_run_reconstruct(self, chip_a):
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        settings = ExperimentSettings(num_epochs=12, settle_epochs=6)
        experiment = ThermalExperiment(chip_a, policy, settings=settings)
        experiment.prepare(collect_records=False)
        experiment.step_window(6)
        state = experiment.state_dict()
        del state["cycles_run"]

        resumed = ThermalExperiment(
            chip_a,
            PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0),
            settings=settings,
        )
        resumed.prepare(collect_records=False)
        resumed.restore_state(state)
        # No period schedule ran, so the legacy product reconstructs exactly.
        assert resumed._cycles_run == experiment._cycles_run


class TestPeriodSchedule:
    def test_period_scale_shapes_validated(self, chip_a):
        settings = ExperimentSettings(num_epochs=4, settle_epochs=2)
        with pytest.raises(ValueError):
            ThermalExperiment(
                chip_a,
                PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0),
                settings=settings,
                period_scale=np.ones(3),
            )
        with pytest.raises(ValueError):
            ThermalExperiment(
                chip_a,
                PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0),
                settings=settings,
                period_scale=np.array([1.0, 0.0, 1.0, 1.0]),
            )

    def test_unit_schedule_matches_unscheduled_run(self, chip_a):
        policy = PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0)
        settings = ExperimentSettings(num_epochs=8, settle_epochs=4)
        plain = ThermalExperiment(
            chip_a,
            PeriodicMigrationPolicy(chip_a.topology, "xy-shift", period_us=109.0),
            settings=settings,
        )
        scheduled = ThermalExperiment(
            chip_a, policy, settings=settings, period_scale=np.ones(8)
        )
        plain_result = plain.run()
        scheduled_result = scheduled.run()
        assert scheduled._cycles_run == plain._cycles_run
        assert scheduled_result.settled_peak_celsius == pytest.approx(
            plain_result.settled_peak_celsius, abs=1e-9
        )

    def test_longer_periods_lower_throughput_penalty(self, chip_a):
        """Stretching the epochs amortises the same migration downtime over
        more workload cycles, so the penalty must drop."""
        def penalty(scale):
            policy = PeriodicMigrationPolicy(
                chip_a.topology, "xy-shift", period_us=109.0
            )
            settings = ExperimentSettings(num_epochs=8, settle_epochs=4)
            experiment = ThermalExperiment(
                chip_a, policy, settings=settings,
                period_scale=np.full(8, scale),
            )
            return experiment.run().throughput_penalty

        assert penalty(4.0) < penalty(1.0)
