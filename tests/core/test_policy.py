"""Tests for the reconfiguration policies."""

import pytest

from repro.core.metrics import ThermalMetrics
from repro.core.policy import (
    AdaptiveMigrationPolicy,
    NoMigrationPolicy,
    PeriodicMigrationPolicy,
    PolicyContext,
    ThresholdMigrationPolicy,
    make_policy,
)


def _context(mesh, epoch=1, peak=90.0, hottest=(2, 2)):
    per_unit = {coord: 60.0 for coord in mesh.coordinates()}
    per_unit[hottest] = peak
    return PolicyContext(
        epoch_index=epoch,
        current_thermal=ThermalMetrics.from_map(per_unit),
        current_power_map={coord: 1.0 for coord in mesh.coordinates()},
        topology=mesh,
    )


class TestNoMigration:
    def test_never_migrates(self, mesh4):
        policy = NoMigrationPolicy()
        for epoch in range(5):
            assert policy.decide(_context(mesh4, epoch=epoch)) is None


class TestPeriodic:
    def test_applies_same_transform_every_epoch(self, mesh4):
        policy = PeriodicMigrationPolicy(mesh4, "xy-shift", period_us=109.0)
        first = policy.decide(_context(mesh4, epoch=1))
        second = policy.decide(_context(mesh4, epoch=2))
        assert first is second
        assert first.name == "xy-shift"

    def test_skips_first_epoch_by_default(self, mesh4):
        policy = PeriodicMigrationPolicy(mesh4, "rotation")
        assert policy.decide(_context(mesh4, epoch=0)) is None
        assert policy.decide(_context(mesh4, epoch=1)) is not None

    def test_no_skip_option(self, mesh4):
        policy = PeriodicMigrationPolicy(mesh4, "rotation", skip_first=False)
        assert policy.decide(_context(mesh4, epoch=0)) is not None

    def test_invalid_period(self, mesh4):
        with pytest.raises(ValueError):
            PeriodicMigrationPolicy(mesh4, "rotation", period_us=0)

    def test_name_embeds_scheme(self, mesh4):
        assert PeriodicMigrationPolicy(mesh4, "x-mirror").name == "periodic-x-mirror"


class TestThreshold:
    def test_migrates_only_above_trigger(self, mesh4):
        policy = ThresholdMigrationPolicy(mesh4, "xy-shift", trigger_celsius=80.0)
        hot = _context(mesh4, peak=92.0)
        cool = _context(mesh4, peak=70.0)
        assert policy.decide(hot) is not None
        assert policy.decide(cool) is None
        assert policy.migrations_triggered == 1

    def test_no_thermal_info_no_migration(self, mesh4):
        policy = ThresholdMigrationPolicy(mesh4, "xy-shift", trigger_celsius=80.0)
        context = PolicyContext(
            epoch_index=0, current_thermal=None, current_power_map={}, topology=mesh4
        )
        assert policy.decide(context) is None

    def test_reset_clears_counter(self, mesh4):
        policy = ThresholdMigrationPolicy(mesh4, "xy-shift", trigger_celsius=80.0)
        policy.decide(_context(mesh4, peak=95.0))
        policy.reset()
        assert policy.migrations_triggered == 0


class TestAdaptive:
    def test_picks_a_candidate(self, mesh5):
        policy = AdaptiveMigrationPolicy(mesh5)
        transform = policy.decide(_context(mesh5, hottest=(2, 2)))
        assert transform is not None
        assert transform.name in {t.name for t in policy.candidates}

    def test_avoids_fixed_point_on_central_hotspot(self, mesh5):
        """With the hotspot at the 5x5 centre (a fixed point of rotation and
        mirroring), the adaptive policy must pick a translation."""
        policy = AdaptiveMigrationPolicy(mesh5)
        transform = policy.decide(_context(mesh5, hottest=(2, 2)))
        assert transform.name in ("right-shift", "xy-shift")

    def test_moves_corner_hotspot_far(self, mesh4):
        policy = AdaptiveMigrationPolicy(mesh4)
        transform = policy.decide(_context(mesh4, hottest=(3, 3)))
        moved = transform((3, 3))
        assert mesh4.manhattan_distance((3, 3), moved) >= 2

    def test_non_square_mesh_drops_rotation(self, mesh3x2):
        policy = AdaptiveMigrationPolicy(mesh3x2)
        names = {t.name for t in policy.candidates}
        assert "rotation" not in names
        assert names  # still has candidates

    def test_choices_recorded_and_reset(self, mesh5):
        policy = AdaptiveMigrationPolicy(mesh5)
        policy.decide(_context(mesh5))
        policy.decide(_context(mesh5))
        assert len(policy.choices) == 2
        policy.reset()
        assert policy.choices == []

    def test_requires_candidates(self, mesh3x2):
        with pytest.raises(ValueError):
            AdaptiveMigrationPolicy(mesh3x2, candidate_schemes=["rotation"])


class TestFactory:
    def test_static(self, mesh4):
        assert isinstance(make_policy("static", mesh4), NoMigrationPolicy)

    def test_scheme_names(self, mesh4):
        policy = make_policy("xy-shift", mesh4, period_us=437.2)
        assert isinstance(policy, PeriodicMigrationPolicy)
        assert policy.period_us == 437.2

    def test_adaptive(self, mesh4):
        assert isinstance(make_policy("adaptive", mesh4), AdaptiveMigrationPolicy)

    def test_threshold(self, mesh4):
        policy = make_policy("threshold-xy-shift", mesh4, trigger_celsius=85.0)
        assert isinstance(policy, ThresholdMigrationPolicy)
        assert policy.trigger_celsius == 85.0
