"""Tests for the runtime reconfiguration controller."""

import pytest

from repro.core.controller import RuntimeReconfigurationController
from repro.migration.transforms import RotationTransform, XYShiftTransform, make_transform


@pytest.fixture
def controller_a(chip_a):
    return RuntimeReconfigurationController(chip_a)


class TestMigrationApplication:
    def test_starts_at_static_mapping(self, controller_a, chip_a):
        assert controller_a.current_mapping == chip_a.static_mapping

    def test_apply_migration_updates_mapping(self, controller_a, chip_a):
        transform = XYShiftTransform(chip_a.topology)
        controller_a.apply_migration(transform)
        expected = chip_a.static_mapping.apply_transform(transform)
        assert controller_a.current_mapping == expected
        assert controller_a.migrations_performed == 1

    def test_migration_history_accumulates(self, controller_a, chip_a):
        transform = XYShiftTransform(chip_a.topology)
        for _ in range(3):
            controller_a.apply_migration(transform)
        assert controller_a.migrations_performed == 3
        assert controller_a.total_migration_cycles > 0
        assert controller_a.total_migration_energy_j > 0

    def test_io_translator_tracks_migrations(self, controller_a, chip_a):
        transform = XYShiftTransform(chip_a.topology)
        controller_a.apply_migration(transform)
        assert controller_a.io_translator.migrations_applied == 1
        assert controller_a.io_translator.current_location((0, 0)) == transform((0, 0))

    def test_event_records_moved_tasks(self, controller_a, chip_a):
        transform = XYShiftTransform(chip_a.topology)
        controller_a.apply_migration(transform)
        assert controller_a.events[0].moved_tasks == chip_a.num_units

    def test_rotation_on_odd_mesh_leaves_one_task(self, chip_e):
        controller = RuntimeReconfigurationController(chip_e)
        controller.apply_migration(RotationTransform(chip_e.topology))
        assert controller.events[0].moved_tasks == chip_e.num_units - 1

    def test_reset(self, controller_a, chip_a):
        controller_a.apply_migration(XYShiftTransform(chip_a.topology))
        controller_a.reset()
        assert controller_a.current_mapping == chip_a.static_mapping
        assert controller_a.migrations_performed == 0
        assert controller_a.io_translator.migrations_applied == 0


class TestMigrationCostCache:
    def test_orbit_computes_each_mapping_once(self, controller_a, chip_a):
        """A periodic transform revisits its orbit: one computation per step.

        xy-shift on the 4x4 mesh has order 4, so 12 applications see only 4
        distinct (transform, mapping) pairs — the rest are cache hits.
        """
        transform = XYShiftTransform(chip_a.topology)
        for _ in range(12):
            controller_a.apply_migration(transform)
        assert controller_a.migration_cost_computations == 4
        assert controller_a.migration_cache_hits == 8
        assert controller_a.migrations_performed == 12

    def test_cache_survives_reset(self, controller_a, chip_a):
        """Costs are pure functions of (transform, mapping): reuse across runs."""
        transform = XYShiftTransform(chip_a.topology)
        for _ in range(4):
            controller_a.apply_migration(transform)
        computed = controller_a.migration_cost_computations
        controller_a.reset()
        for _ in range(4):
            controller_a.apply_migration(transform)
        assert controller_a.migration_cost_computations == computed

    def test_cached_results_match_uncached(self, chip_a):
        cached = RuntimeReconfigurationController(chip_a)
        uncached = RuntimeReconfigurationController(chip_a, cache_migration_costs=False)
        transform = XYShiftTransform(chip_a.topology)
        for _ in range(8):
            cost_cached = cached.apply_migration(transform)
            cost_uncached = uncached.apply_migration(transform)
            assert cost_cached.cycles == cost_uncached.cycles
            assert cost_cached.total_energy_j == cost_uncached.total_energy_j
            assert cost_cached.energy_per_unit_j == cost_uncached.energy_per_unit_j
            assert cached.current_mapping == uncached.current_mapping
        assert uncached.migration_cache_hits == 0
        assert uncached.migration_cost_computations == 8
        assert cached.migration_cost_computations == 4

    def test_distinct_transforms_not_conflated(self, controller_a, chip_a):
        """Two transforms from the same mapping must cache separately."""
        shift = XYShiftTransform(chip_a.topology)
        rotation = RotationTransform(chip_a.topology)
        cost_shift = controller_a.apply_migration(shift)
        controller_a.reset()
        cost_rotation = controller_a.apply_migration(rotation)
        assert controller_a.migration_cost_computations == 2
        assert cost_shift.cycles != cost_rotation.cycles or (
            cost_shift.total_energy_j != cost_rotation.total_energy_j
        )


class TestEnergyAccounting:
    def test_energy_disabled_when_requested(self, chip_a):
        controller = RuntimeReconfigurationController(chip_a, include_migration_energy=False)
        controller.apply_migration(XYShiftTransform(chip_a.topology))
        assert controller.total_migration_energy_j == 0.0

    def test_epoch_power_map_adds_migration_energy(self, controller_a, chip_a):
        transform = XYShiftTransform(chip_a.topology)
        cost = controller_a.apply_migration(transform)
        period_s = 109e-6
        with_energy = controller_a.epoch_power_map(period_s, cost)
        without_energy = controller_a.epoch_power_map(period_s, None)
        assert sum(with_energy.values()) > sum(without_energy.values())
        extra = sum(with_energy.values()) - sum(without_energy.values())
        assert extra == pytest.approx(cost.total_energy_j / period_s, rel=1e-6)

    def test_epoch_power_map_moves_with_tasks(self, controller_a, chip_a):
        static_power = controller_a.epoch_power_map(109e-6)
        transform = XYShiftTransform(chip_a.topology)
        controller_a.apply_migration(transform)
        migrated_power = controller_a.epoch_power_map(109e-6)
        # The hottest unit's power moved to its transformed location.
        hottest = max(static_power, key=static_power.get)
        assert migrated_power[transform(hottest)] >= static_power[hottest] - 1e-9

    def test_epoch_power_requires_positive_period(self, controller_a):
        with pytest.raises(ValueError):
            controller_a.epoch_power_map(0.0)

    def test_static_power_map_matches_configuration(self, controller_a, chip_a):
        assert controller_a.static_power_map() == chip_a.power_map()
