"""Parity suite: exact time-varying ambient in transient mode.

The reference implementation is the bluntest possible one: for every epoch,
rebuild the whole thermal network with that epoch's ambient baked into the
package (``ambient_celsius + offset``) and integrate the epoch with a
per-interval ``transient()`` call, carrying the state by hand.  The batched
pipeline — one ``transient_sequence`` call with the per-interval affine
boundary term ``G_amb * (T_amb + dT_i)`` — must reproduce those trajectories
to <1e-9 on both integration methods and both thermal models, while issuing
zero extra solves.
"""

import dataclasses

import numpy as np
import pytest

from repro.chips import get_configuration
from repro.core.experiment import ExperimentSettings, ThermalExperiment
from repro.core.metrics import ThermalMetrics
from repro.core.policy import PeriodicMigrationPolicy
from repro.thermal.grid import GridThermalModel
from repro.thermal.hotspot import HotSpotModel

NUM_EPOCHS = 8
SETTLE = 6
STEPS_PER_EPOCH = 4
PERIOD_US = 109.0

#: A deliberately unsmooth schedule: ramp, step and a sign change, so the
#: quasi-static shift (the pre-fix behaviour) would be visibly wrong.
OFFSETS = np.array([0.0, 1.5, 3.0, 8.0, 8.0, -2.0, 4.0, 0.5])


def _settings(method: str) -> ExperimentSettings:
    return ExperimentSettings(
        num_epochs=NUM_EPOCHS,
        mode="transient",
        settle_epochs=SETTLE,
        transient_steps_per_epoch=STEPS_PER_EPOCH,
        thermal_method=method,
    )


def _policy(chip):
    return PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=PERIOD_US)


def _model_at_offset(chip, kind: str, offset: float):
    """A thermal model whose *network* is rebuilt at the shifted ambient."""
    package = dataclasses.replace(
        chip.thermal_model.package,
        ambient_celsius=chip.thermal_model.package.ambient_celsius + offset,
    )
    if kind == "hotspot":
        return HotSpotModel(
            chip.topology, package=package, floorplan=chip.thermal_model.floorplan
        )
    return GridThermalModel(chip.topology, resolution=2, package=package)


def _experiment_model(chip, kind: str):
    if kind == "hotspot":
        return chip.thermal_model
    return GridThermalModel(
        chip.topology, resolution=2, package=chip.thermal_model.package
    )


def _reference_rebuilt_networks(chip, kind: str, epoch_power_maps, method: str):
    """The seed-style loop with the network rebuilt per epoch's ambient."""
    period_s = PERIOD_US * 1e-6
    time_step = period_s / STEPS_PER_EPOCH
    coords = list(chip.topology.coordinates())

    averaged = {coord: 0.0 for coord in coords}
    for power in epoch_power_maps:
        for coord, watts in power.items():
            averaged[coord] += watts / len(epoch_power_maps)
    # Warm start at the epoch-0 ambient: the settled regime the run enters at.
    state = _model_at_offset(chip, kind, float(OFFSETS[0])).warm_state(averaged)

    peak_by_epoch = []
    per_epoch = []
    for power, offset in zip(epoch_power_maps, OFFSETS):
        model = _model_at_offset(chip, kind, float(offset))
        result = model.transient(
            power, period_s, initial_state=state, time_step_s=time_step, method=method
        )
        state = result.final_state_kelvin
        series = model.unit_series(result)
        peak_by_epoch.append(float(series.max()))
        per_epoch.append(
            ThermalMetrics.from_map(
                {coord: float(series[idx, -1]) for idx, coord in enumerate(coords)}
            )
        )

    settle_count = min(SETTLE, len(per_epoch))
    settled_peak = float(np.max(peak_by_epoch[-settle_count:]))
    settled_mean = float(
        np.mean([metric.mean_celsius for metric in per_epoch[-settle_count:]])
    )
    return per_epoch, settled_peak, settled_mean


@pytest.mark.parametrize("kind", ["hotspot", "grid"])
@pytest.mark.parametrize("method", ["euler", "spectral"])
class TestExactAmbientTransient:
    def test_matches_per_epoch_rebuilt_network_reference(self, kind, method):
        chip = get_configuration("A")
        result = ThermalExperiment(
            chip,
            _policy(chip),
            settings=_settings(method),
            thermal_model=_experiment_model(chip, kind),
            ambient_offsets_celsius=OFFSETS,
        ).run()

        per_epoch, settled_peak, settled_mean = _reference_rebuilt_networks(
            chip, kind, [record.power_map for record in result.epochs], method
        )

        assert result.settled_peak_celsius == pytest.approx(settled_peak, abs=1e-9)
        assert result.settled_mean_celsius == pytest.approx(settled_mean, abs=1e-9)
        for record, expected in zip(result.epochs, per_epoch):
            assert record.thermal.peak_celsius == pytest.approx(
                expected.peak_celsius, abs=1e-9
            )
            assert record.thermal.mean_celsius == pytest.approx(
                expected.mean_celsius, abs=1e-9
            )
            for coord, value in expected.per_unit_celsius.items():
                assert record.thermal.per_unit_celsius[coord] == pytest.approx(
                    value, abs=1e-9
                )

    def test_still_one_transient_sequence(self, kind, method):
        chip = get_configuration("A")
        model = _experiment_model(chip, kind)
        solver = model.solver
        sequences_before = solver.transient_sequence_count
        transients_before = solver.transient_count
        steady_before = solver.steady_solve_count
        jumps_before = solver.spectral_jump_count
        ThermalExperiment(
            chip,
            _policy(chip),
            settings=_settings(method),
            thermal_model=model,
            ambient_offsets_celsius=OFFSETS,
        ).run()
        # The boundary term is free: baseline + warm start (steady solves),
        # one sequence, zero per-epoch transients — identical counts to an
        # ambient-free run, and the spectral jump stays engaged.
        assert solver.transient_sequence_count - sequences_before == 1
        assert solver.transient_count == transients_before
        assert solver.steady_solve_count - steady_before == 2
        expected_jumps = 1 if method == "spectral" else 0
        assert solver.spectral_jump_count - jumps_before == expected_jumps


class TestQuasiStaticIsGone:
    def test_fast_ambient_step_differs_from_post_hoc_shift(self):
        """A step schedule must NOT equal 'nominal run + per-epoch shift'.

        The RC network low-passes a fast ambient step (the sink time constant
        is much longer than one epoch), so the exact trajectory responds far
        less than the instantaneous quasi-static shift the old pipeline
        applied.  If the two coincide, the boundary term is not being
        integrated.
        """
        chip = get_configuration("A")
        step = np.concatenate([np.zeros(4), np.full(4, 10.0)])

        nominal = ThermalExperiment(
            chip, _policy(chip), settings=_settings("euler")
        ).run()
        exact = ThermalExperiment(
            chip,
            _policy(chip),
            settings=_settings("euler"),
            ambient_offsets_celsius=step,
        ).run()

        quasi_static_peak = nominal.epochs[4].thermal.peak_celsius + 10.0
        exact_peak = exact.epochs[4].thermal.peak_celsius
        # The die barely moves within one epoch of a +10 C ambient step.
        assert exact_peak < quasi_static_peak - 5.0
        assert exact_peak > nominal.epochs[4].thermal.peak_celsius

    def test_constant_offsets_match_shifted_package(self):
        """A constant schedule must equal a run at the shifted ambient."""
        chip = get_configuration("A")
        offset = 6.5
        shifted_model = _model_at_offset(chip, "hotspot", offset)
        reference = ThermalExperiment(
            chip,
            _policy(chip),
            settings=_settings("spectral"),
            thermal_model=shifted_model,
        ).run()
        exact = ThermalExperiment(
            chip,
            _policy(chip),
            settings=_settings("spectral"),
            ambient_offsets_celsius=np.full(NUM_EPOCHS, offset),
        ).run()
        assert exact.settled_peak_celsius == pytest.approx(
            reference.settled_peak_celsius, abs=1e-9
        )
        for ours, theirs in zip(exact.epochs, reference.epochs):
            assert ours.thermal.peak_celsius == pytest.approx(
                theirs.thermal.peak_celsius, abs=1e-9
            )
