"""Tests for experiment metrics records."""

import numpy as np
import pytest

from repro.core.metrics import (
    EpochRecord,
    ExperimentResult,
    PerformanceMetrics,
    ThermalMetrics,
)


class TestThermalMetrics:
    def test_from_map(self):
        metrics = ThermalMetrics.from_map({(0, 0): 50.0, (1, 0): 70.0, (2, 0): 60.0})
        assert metrics.peak_celsius == 70.0
        assert metrics.min_celsius == 50.0
        assert metrics.mean_celsius == pytest.approx(60.0)
        assert metrics.spread_celsius == pytest.approx(20.0)
        assert metrics.hottest_unit() == (1, 0)

    def test_spatial_std(self):
        metrics = ThermalMetrics.from_map({(0, 0): 50.0, (1, 0): 50.0})
        assert metrics.spatial_std_celsius == pytest.approx(0.0)

    def test_empty_per_unit(self):
        metrics = ThermalMetrics(peak_celsius=10, mean_celsius=5, min_celsius=1)
        assert metrics.hottest_unit() is None
        assert metrics.spatial_std_celsius == 0.0


class TestPerformanceMetrics:
    def test_penalty(self):
        perf = PerformanceMetrics(total_cycles=1000, migration_cycles=16, migrations_performed=2)
        assert perf.throughput_penalty == pytest.approx(0.016)
        assert perf.throughput_fraction == pytest.approx(0.984)
        assert perf.useful_cycles == 984

    def test_zero_cycles(self):
        perf = PerformanceMetrics(total_cycles=0, migration_cycles=0, migrations_performed=0)
        assert perf.throughput_penalty == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PerformanceMetrics(total_cycles=10, migration_cycles=20, migrations_performed=1)
        with pytest.raises(ValueError):
            PerformanceMetrics(total_cycles=-1, migration_cycles=0, migrations_performed=0)


def _result(baseline_peak=85.0, settled_peak=80.0, baseline_mean=70.0, settled_mean=70.5):
    thermal = ThermalMetrics.from_map({(0, 0): settled_peak})
    epochs = [
        EpochRecord(
            epoch_index=0,
            mapping_permutation=[],
            transform_applied="xy-shift",
            migration_cycles=100,
            migration_energy_j=1e-6,
            thermal=thermal,
        )
    ]
    return ExperimentResult(
        configuration_name="A",
        scheme_name="periodic-xy-shift",
        period_us=109.0,
        baseline_peak_celsius=baseline_peak,
        baseline_mean_celsius=baseline_mean,
        epochs=epochs,
        performance=PerformanceMetrics(
            total_cycles=54500, migration_cycles=870, migrations_performed=1
        ),
        total_migration_energy_j=1e-6,
        settled_peak_celsius=settled_peak,
        settled_mean_celsius=settled_mean,
    )


class TestExperimentResult:
    def test_peak_reduction_sign_convention(self):
        result = _result(baseline_peak=85.0, settled_peak=80.0)
        assert result.peak_reduction_celsius == pytest.approx(5.0)
        worse = _result(baseline_peak=85.0, settled_peak=86.0)
        assert worse.peak_reduction_celsius == pytest.approx(-1.0)

    def test_mean_increase(self):
        result = _result(baseline_mean=70.0, settled_mean=70.3)
        assert result.mean_increase_celsius == pytest.approx(0.3)

    def test_epoch_record_migrated_flag(self):
        result = _result()
        assert result.epochs[0].migrated

    def test_peak_series(self):
        result = _result(settled_peak=81.0)
        series = result.peak_series()
        assert series.shape == (1,)
        assert series[0] == pytest.approx(81.0)

    def test_summary_dictionary(self):
        summary = _result().summary()
        assert summary["configuration"] == "A"
        assert summary["scheme"] == "periodic-xy-shift"
        assert "peak_reduction_c" in summary
        assert "throughput_penalty" in summary
