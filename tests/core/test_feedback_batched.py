"""Parity suite: the chunked feedback loop vs the seed per-epoch path.

Before the :class:`repro.core.experiment.FeedbackPlan`, threshold/adaptive
policies cost one dict-round-tripped steady solve per epoch plus a
standalone probe of the static pre-experiment power.  The reference
implementations below replicate that seed loop verbatim on the public
dict-view APIs; the batched pipeline must reproduce its trajectories —
decisions, migrations and thermal metrics — to <1e-9 at ``k=1`` across
threshold + adaptive policies, steady + transient modes, and the
block-level + grid thermal models.  Stride ``k>1`` runs are pinned to the
same decision trajectories under constant load, and every run is guarded
to ``ceil(num_epochs / k)`` feedback batches — never a per-epoch solve.
"""

import numpy as np
import pytest

from repro.chips import get_configuration
from repro.core.controller import RuntimeReconfigurationController
from repro.core.experiment import ExperimentSettings, FeedbackPlan, ThermalExperiment
from repro.core.metrics import ThermalMetrics
from repro.core.policy import (
    AdaptiveMigrationPolicy,
    PolicyContext,
    ReconfigurationPolicy,
    ThresholdMigrationPolicy,
)
from repro.power.trace import vector_to_map
from repro.thermal.grid import GridThermalModel

EPOCHS = 11

STEADY = ExperimentSettings(num_epochs=EPOCHS, mode="steady", settle_epochs=EPOCHS - 1)
TRANSIENT = ExperimentSettings(
    num_epochs=EPOCHS, mode="transient", settle_epochs=6, transient_steps_per_epoch=4
)


def _threshold(chip, trigger=70.0):
    return ThresholdMigrationPolicy(
        chip.topology, "xy-shift", trigger_celsius=trigger, period_us=109.0
    )


def _adaptive(chip):
    return AdaptiveMigrationPolicy(chip.topology, period_us=109.0)


def _grid_model(chip):
    return GridThermalModel(
        chip.topology,
        resolution=2,
        package=chip.thermal_model.package,
        floorplan=chip.thermal_model.floorplan,
    )


# ----------------------------------------------------------------------
# Seed-equivalent reference: per-epoch dict-path feedback loop
# ----------------------------------------------------------------------
def _reference_feedback_epochs(chip, policy, settings, model, ambient=None):
    """The seed feedback loop: probe + one dict-path solve per epoch."""
    policy.reset()
    controller = RuntimeReconfigurationController(
        chip, include_migration_energy=settings.include_migration_energy
    )
    topology = chip.topology
    period_s = policy.period_us * 1e-6

    def feedback(power_vector, epoch_index):
        temps = model.steady_state_by_coord(vector_to_map(topology, power_vector))
        if ambient is not None:
            offset = float(ambient[epoch_index])
            temps = {coord: value + offset for coord, value in temps.items()}
        return ThermalMetrics.from_map(temps)

    previous_power = controller.static_power_vector()
    previous_thermal = None
    epochs = []
    for epoch_index in range(settings.num_epochs):
        if previous_thermal is None:
            previous_thermal = feedback(previous_power, epoch_index)
        context = PolicyContext(
            epoch_index=epoch_index,
            current_thermal=previous_thermal,
            current_power_map=vector_to_map(topology, previous_power),
            topology=topology,
        )
        transform = policy.decide(context)
        cost = None
        name = None
        if transform is not None and transform.name != "identity":
            cost = controller.apply_migration(transform, epoch_index)
            name = transform.name
        power = controller.epoch_power_vector(period_s, cost)
        epochs.append((power, cost, name))
        previous_thermal = feedback(power, epoch_index)
        previous_power = power
        controller.advance_epoch()
    return epochs


def reference_steady_feedback(chip, policy, settings, model, ambient=None):
    """Seed steady mode on top of the per-epoch feedback loop."""
    epochs = _reference_feedback_epochs(chip, policy, settings, model, ambient)
    per_epoch = [
        ThermalMetrics.from_map(
            model.steady_state_by_coord(vector_to_map(chip.topology, power))
        )
        for power, _cost, _name in epochs
    ]
    settle_count = settings.settled_count(len(epochs))
    settled_power = np.mean([power for power, _c, _n in epochs[-settle_count:]], axis=0)
    settled = ThermalMetrics.from_map(
        model.steady_state_by_coord(vector_to_map(chip.topology, settled_power))
    )
    return epochs, per_epoch, settled


def reference_transient_feedback(chip, policy, settings, model):
    """Seed transient mode on top of the per-epoch feedback loop."""
    epochs = _reference_feedback_epochs(chip, policy, settings, model)
    period_s = policy.period_us * 1e-6
    time_step = period_s / settings.transient_steps_per_epoch
    averaged = np.mean([power for power, _c, _n in epochs], axis=0)
    state = model.warm_state(vector_to_map(chip.topology, averaged))

    peak_by_epoch = []
    per_epoch = []
    for power, _cost, _name in epochs:
        result = model.transient(
            vector_to_map(chip.topology, power),
            period_s,
            initial_state=state,
            time_step_s=time_step,
            method=settings.thermal_method,
        )
        state = result.final_state_kelvin
        series = model.unit_series(result)
        final = {
            coord: float(series[idx, -1])
            for idx, coord in enumerate(chip.topology.coordinates())
        }
        peak_by_epoch.append(float(series.max()))
        per_epoch.append(ThermalMetrics.from_map(final))

    settle_count = settings.settled_count(len(epochs))
    settled_peak = float(np.max(peak_by_epoch[-settle_count:]))
    settled_mean = float(
        np.mean([metric.mean_celsius for metric in per_epoch[-settle_count:]])
    )
    return epochs, per_epoch, settled_peak, settled_mean


def _assert_trajectory_matches(result, reference_epochs):
    assert len(result.epochs) == len(reference_epochs)
    for record, (_power, cost, name) in zip(result.epochs, reference_epochs):
        assert record.transform_applied == name
        assert record.migration_cycles == (cost.cycles if cost else 0)


# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy_factory", [_threshold, _adaptive])
@pytest.mark.parametrize("model_kind", ["hotspot", "grid"])
class TestK1SteadyParity:
    """k=1 must reproduce the seed per-epoch feedback path to <1e-9."""

    def test_matches_seed_feedback_path(self, policy_factory, model_kind):
        chip = get_configuration("A")
        model = chip.thermal_model if model_kind == "hotspot" else _grid_model(chip)
        result = ThermalExperiment(
            chip, policy_factory(chip), settings=STEADY, thermal_model=model
        ).run()

        reference_epochs, per_epoch, settled = reference_steady_feedback(
            chip, policy_factory(chip), STEADY, model
        )
        _assert_trajectory_matches(result, reference_epochs)
        assert result.settled_peak_celsius == pytest.approx(
            settled.peak_celsius, abs=1e-9
        )
        assert result.settled_mean_celsius == pytest.approx(
            settled.mean_celsius, abs=1e-9
        )
        for record, expected in zip(result.epochs, per_epoch):
            assert record.thermal.peak_celsius == pytest.approx(
                expected.peak_celsius, abs=1e-9
            )
            assert record.thermal.mean_celsius == pytest.approx(
                expected.mean_celsius, abs=1e-9
            )


@pytest.mark.parametrize("policy_factory", [_threshold, _adaptive])
@pytest.mark.parametrize("model_kind", ["hotspot", "grid"])
class TestK1TransientParity:
    def test_matches_seed_feedback_path(self, policy_factory, model_kind):
        chip = get_configuration("A")
        model = chip.thermal_model if model_kind == "hotspot" else _grid_model(chip)
        result = ThermalExperiment(
            chip, policy_factory(chip), settings=TRANSIENT, thermal_model=model
        ).run()

        reference_epochs, per_epoch, settled_peak, settled_mean = (
            reference_transient_feedback(chip, policy_factory(chip), TRANSIENT, model)
        )
        _assert_trajectory_matches(result, reference_epochs)
        assert result.settled_peak_celsius == pytest.approx(settled_peak, abs=1e-9)
        assert result.settled_mean_celsius == pytest.approx(settled_mean, abs=1e-9)
        for record, expected in zip(result.epochs, per_epoch):
            assert record.thermal.peak_celsius == pytest.approx(
                expected.peak_celsius, abs=1e-9
            )


class TestK1AmbientParity:
    def test_threshold_sees_offsets_identically(self):
        """Ambient-scheduled feedback matches the seed path at k=1."""
        chip = get_configuration("A")
        ambient = np.linspace(0.0, 5.0, EPOCHS)
        nominal_peak = chip.base_peak_temperature()
        make = lambda: _threshold(chip, trigger=nominal_peak + 2.5)

        result = ThermalExperiment(
            chip, make(), settings=STEADY, ambient_offsets_celsius=ambient
        ).run()
        reference_epochs, _per_epoch, _settled = reference_steady_feedback(
            chip, make(), STEADY, chip.thermal_model, ambient=ambient
        )
        _assert_trajectory_matches(result, reference_epochs)
        # The ramp crosses the trigger mid-run: some epochs migrate, some
        # don't, so the parity actually exercises the offset path.
        names = [record.transform_applied for record in result.epochs]
        assert None in names and "xy-shift" in names


# ----------------------------------------------------------------------
@pytest.mark.parametrize("stride", [2, 4])
@pytest.mark.parametrize("predictor", ["hold", "previous"])
class TestStrideTrajectories:
    """Stride-k runs under constant load keep the k=1 decision trajectory."""

    def test_threshold_decisions_unchanged(self, stride, predictor):
        chip = get_configuration("A")
        reference_epochs = _reference_feedback_epochs(
            chip, _threshold(chip), STEADY, chip.thermal_model
        )
        settings = ExperimentSettings(
            num_epochs=EPOCHS,
            mode="steady",
            settle_epochs=EPOCHS - 1,
            feedback_stride=stride,
            feedback_predictor=predictor,
        )
        result = ThermalExperiment(chip, _threshold(chip), settings=settings).run()
        _assert_trajectory_matches(result, reference_epochs)
        # Identical decisions mean identical power rows, so the settled
        # metrics agree with the per-epoch path bit-for-bit too.
        _epochs, per_epoch, settled = reference_steady_feedback(
            chip, _threshold(chip), STEADY, chip.thermal_model
        )
        assert result.settled_peak_celsius == pytest.approx(
            settled.peak_celsius, abs=1e-9
        )
        for record, expected in zip(result.epochs, per_epoch):
            assert record.thermal.peak_celsius == pytest.approx(
                expected.peak_celsius, abs=1e-9
            )

    def test_adaptive_decisions_unchanged(self, stride, predictor):
        chip = get_configuration("A")
        reference_epochs = _reference_feedback_epochs(
            chip, _adaptive(chip), STEADY, chip.thermal_model
        )
        settings = ExperimentSettings(
            num_epochs=EPOCHS,
            mode="steady",
            settle_epochs=EPOCHS - 1,
            feedback_stride=stride,
            feedback_predictor=predictor,
        )
        result = ThermalExperiment(chip, _adaptive(chip), settings=settings).run()
        _assert_trajectory_matches(result, reference_epochs)


# ----------------------------------------------------------------------
class TestSolveCounts:
    """The acceptance bound: <= ceil(num_epochs / k) + 1 steady solves."""

    @pytest.mark.parametrize("stride", [1, 2, 5, EPOCHS])
    def test_steady_feedback_solve_budget(self, stride):
        chip = get_configuration("A")
        solver = chip.thermal_model.solver
        settings = ExperimentSettings(
            num_epochs=EPOCHS,
            mode="steady",
            settle_epochs=EPOCHS - 1,
            feedback_stride=stride,
        )
        before = solver.steady_solve_count
        experiment = ThermalExperiment(chip, _threshold(chip), settings=settings)
        experiment.run()
        chunks = -(-EPOCHS // stride)
        # ceil(E/k) feedback batches + the one metrics batch, and never more.
        assert solver.steady_solve_count - before == chunks + 1
        assert experiment.feedback_plan.batch_solves == chunks

    @pytest.mark.parametrize("stride", [1, 4])
    def test_transient_feedback_solve_budget(self, stride):
        chip = get_configuration("A")
        solver = chip.thermal_model.solver
        settings = ExperimentSettings(
            num_epochs=EPOCHS,
            mode="transient",
            settle_epochs=6,
            transient_steps_per_epoch=4,
            feedback_stride=stride,
        )
        steady_before = solver.steady_solve_count
        transients_before = solver.transient_count
        sequences_before = solver.transient_sequence_count
        ThermalExperiment(chip, _threshold(chip), settings=settings).run()
        chunks = -(-EPOCHS // stride)
        # Feedback chunks + baseline + warm start; still exactly one
        # sequenced integration and zero per-epoch transient() round-trips.
        assert solver.steady_solve_count - steady_before == chunks + 2
        assert solver.transient_count == transients_before
        assert solver.transient_sequence_count - sequences_before == 1

    def test_probe_rides_the_batch_not_the_dict_path(self, monkeypatch):
        """The epoch-0 probe must not be a standalone dict-path solve."""
        chip = get_configuration("A")
        monkeypatch.setattr(
            chip.thermal_model,
            "steady_state_by_coord",
            lambda *_a, **_k: pytest.fail(
                "feedback took the per-map dict path; the probe and every "
                "refresh must ride the batched steady_temperatures call"
            ),
        )
        result = ThermalExperiment(chip, _threshold(chip), settings=STEADY).run()
        assert result.migrations_performed > 0

    def test_feedback_free_policies_build_no_plan(self):
        from repro.core.policy import PeriodicMigrationPolicy

        chip = get_configuration("A")
        solver = chip.thermal_model.solver
        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        before = solver.steady_solve_count
        experiment = ThermalExperiment(chip, policy, settings=STEADY)
        experiment.run()
        assert experiment.feedback_plan is None
        assert solver.steady_solve_count - before == 1


# ----------------------------------------------------------------------
class TestRequiresThermalFeedbackAttribute:
    """Custom policies no longer inherit the feedback path via isinstance."""

    class _CustomSilent(ReconfigurationPolicy):
        name = "custom-silent"

        def decide(self, context):
            # A custom policy that never reads temperatures; before the
            # attribute it silently paid one solve per epoch.
            assert context.current_thermal is None
            return None

    class _CustomFeedback(ReconfigurationPolicy):
        name = "custom-feedback"
        requires_thermal_feedback = True

        def __init__(self, period_us=109.0):
            super().__init__(period_us)
            self.peaks = []

        def decide(self, context):
            self.peaks.append(context.current_thermal.peak_celsius)
            return None

    def test_custom_policy_defaults_to_no_feedback(self):
        chip = get_configuration("A")
        solver = chip.thermal_model.solver
        before = solver.steady_solve_count
        ThermalExperiment(chip, self._CustomSilent(109.0), settings=STEADY).run()
        # Only the metrics batch: zero feedback solves for a policy that
        # did not opt in.
        assert solver.steady_solve_count - before == 1

    def test_opt_in_policy_receives_metrics(self):
        chip = get_configuration("A")
        policy = self._CustomFeedback()
        ThermalExperiment(chip, policy, settings=STEADY).run()
        assert len(policy.peaks) == EPOCHS
        assert all(peak > 40.0 for peak in policy.peaks)

    def test_builtin_policies_declare_correctly(self):
        from repro.core.policy import NoMigrationPolicy, PeriodicMigrationPolicy

        chip = get_configuration("A")
        assert _threshold(chip).requires_thermal_feedback
        assert _adaptive(chip).requires_thermal_feedback
        assert not NoMigrationPolicy().requires_thermal_feedback
        assert not PeriodicMigrationPolicy(
            chip.topology, "xy-shift"
        ).requires_thermal_feedback


# ----------------------------------------------------------------------
class TestVectorNativeContext:
    def test_dict_view_is_lazy_and_cached(self):
        chip = get_configuration("A")
        vector = np.linspace(0.0, 3.0, chip.topology.num_nodes)
        context = PolicyContext(
            epoch_index=0,
            current_thermal=None,
            topology=chip.topology,
            current_power_vector=vector,
        )
        assert context._power_map is None  # nothing built yet
        view = context.current_power_map
        assert view == vector_to_map(chip.topology, vector)
        assert context.current_power_map is view  # cached, not rebuilt

    def test_explicit_dict_still_accepted(self):
        chip = get_configuration("A")
        powers = {coord: 1.0 for coord in chip.topology.coordinates()}
        context = PolicyContext(
            epoch_index=0,
            current_thermal=None,
            current_power_map=powers,
            topology=chip.topology,
        )
        assert context.current_power_map == powers
        assert context.has_power

    def test_no_power_info(self):
        chip = get_configuration("A")
        context = PolicyContext(
            epoch_index=0, current_thermal=None, topology=chip.topology
        )
        assert not context.has_power
        assert context.current_power_map == {}

    def test_topology_required(self):
        with pytest.raises(TypeError, match="topology"):
            PolicyContext(epoch_index=0, current_thermal=None)


class TestFeedbackPlanUnit:
    def test_validation(self):
        chip = get_configuration("A")
        with pytest.raises(ValueError, match="stride"):
            FeedbackPlan(chip.thermal_model, chip.topology, stride=0)
        with pytest.raises(ValueError, match="predictor"):
            FeedbackPlan(
                chip.thermal_model, chip.topology, stride=1, predictor="oracle"
            )

    def test_unprimed_plan_fails_loudly(self):
        chip = get_configuration("A")
        plan = FeedbackPlan(chip.thermal_model, chip.topology, stride=1)
        with pytest.raises(RuntimeError, match="prime"):
            plan.thermal_for(0)

    def test_previous_predictor_reuses_prior_batch_rows(self):
        """Mid-chunk, epoch i is answered by the solved row of i-1-stride."""
        chip = get_configuration("A")
        stride = 3
        plan = FeedbackPlan(chip.thermal_model, chip.topology, stride=stride,
                            predictor="previous")
        rng = np.random.default_rng(3)
        rows = 1.0 + rng.random((2 * stride, chip.topology.num_nodes))
        plan.prime(chip.power_vector())
        plan.thermal_for(0)
        for epoch in range(stride):
            plan.observe(epoch, rows[epoch])
        # Refresh at the chunk boundary solves rows 0..stride-1.
        fresh = plan.thermal_for(stride)
        expected_last = chip.thermal_model.steady_temperatures(
            rows[stride - 1][np.newaxis, :]
        )[0]
        assert fresh.peak_celsius == pytest.approx(expected_last.max(), abs=1e-9)
        for epoch in range(stride, 2 * stride):
            plan.observe(epoch, rows[epoch])
        # Mid-chunk: epoch stride+1 wants T(rows[stride]); the predictor
        # serves the solved row of epoch (stride+1)-1-stride = 0.
        predicted = plan.thermal_for(stride + 1)
        expected_proxy = chip.thermal_model.steady_temperatures(
            rows[0][np.newaxis, :]
        )[0]
        assert predicted.peak_celsius == pytest.approx(
            expected_proxy.max(), abs=1e-9
        )
        assert plan.predictions_served == 1
