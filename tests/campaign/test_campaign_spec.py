"""Campaign spec expansion, serialization, and job-result records."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, JobResult, evaluate_job
from repro.scenarios import ScenarioSpec


def cheap_scenario(name="cheap", **overrides):
    params = dict(
        name=name,
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=6,
        settle_epochs=3,
    )
    params.update(overrides)
    return ScenarioSpec(**params)


class TestCampaignSpec:
    def test_round_trips_through_json(self):
        spec = CampaignSpec(
            name="demo",
            scenarios=("steady-baseline", cheap_scenario()),
            configurations=("A", "B"),
            schemes=("xy-shift", "rotation"),
            feedback_strides=(1, 4),
            thermal_methods=("euler",),
            description="round trip",
        )
        rebuilt = CampaignSpec.from_json(spec.to_json())
        assert rebuilt == spec
        # And the payload is plain data.
        json.loads(spec.to_json())

    def test_validation(self):
        with pytest.raises(ValueError, match="needs a name"):
            CampaignSpec(name="", scenarios=("steady-baseline",))
        with pytest.raises(ValueError, match="at least one scenario"):
            CampaignSpec(name="x", scenarios=())
        with pytest.raises(ValueError, match="duplicates"):
            CampaignSpec(
                name="x", scenarios=("steady-baseline",), configurations=("A", "A")
            )
        with pytest.raises(ValueError, match="non-empty"):
            CampaignSpec(name="x", scenarios=("steady-baseline",), schemes=())
        with pytest.raises(TypeError):
            CampaignSpec(name="x", scenarios=(42,))

    def test_unknown_fields_rejected(self):
        payload = CampaignSpec(name="x", scenarios=("steady-baseline",)).to_dict()
        payload["surprise"] = True
        with pytest.raises(ValueError, match="unknown campaign fields"):
            CampaignSpec.from_dict(payload)

    def test_expansion_is_the_full_cross_product(self):
        spec = CampaignSpec(
            name="grid",
            scenarios=(cheap_scenario("s1"), cheap_scenario("s2")),
            configurations=("A", "B", "C"),
            schemes=("xy-shift", "rotation"),
            feedback_strides=(1, 2),
        )
        jobs = spec.expand()
        assert len(jobs) == 2 * 3 * 2 * 2
        assert [job.index for job in jobs] == list(range(len(jobs)))
        assert len({job.job_id for job in jobs}) == len(jobs)
        # Axis substitution actually lands in the derived specs.
        assert {job.spec.configuration for job in jobs} == {"A", "B", "C"}
        assert {job.spec.scheme for job in jobs} == {"xy-shift", "rotation"}
        assert {job.spec.feedback_stride for job in jobs} == {1, 2}
        # The scenario name is left untouched so overlapping campaigns
        # derive byte-identical specs (shared cache keys).
        assert {job.spec.name for job in jobs} == {"s1", "s2"}

    def test_unpinned_axes_keep_scenario_settings(self):
        base = cheap_scenario(thermal_method="spectral", feedback_stride=3)
        jobs = CampaignSpec(name="keep", scenarios=(base,)).expand()
        assert len(jobs) == 1
        assert jobs[0].spec == base
        assert jobs[0].axes["thermal_method"] == "spectral"
        assert jobs[0].axes["feedback_stride"] == 3

    def test_expansion_is_deterministic(self):
        spec = CampaignSpec(
            name="det",
            scenarios=("steady-baseline", "burst-overload"),
            configurations=("B", "A"),
            schemes=("rotation", "xy-shift"),
        )
        first = [(job.job_id, job.spec.canonical_json()) for job in spec.expand()]
        second = [(job.job_id, job.spec.canonical_json()) for job in spec.expand()]
        assert first == second

    def test_registry_names_resolve(self):
        jobs = CampaignSpec(name="reg", scenarios=("steady-baseline",)).expand()
        assert jobs[0].spec.num_epochs == 41


class TestJobResult:
    def test_round_trips_exactly(self):
        job = CampaignSpec(name="r", scenarios=(cheap_scenario(),)).expand()[0]
        result = evaluate_job(job)
        rebuilt = JobResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result

    def test_unknown_fields_rejected(self):
        job = CampaignSpec(name="r", scenarios=(cheap_scenario(),)).expand()[0]
        payload = evaluate_job(job).to_dict()
        payload["extra"] = 1
        with pytest.raises(ValueError, match="unknown job-result fields"):
            JobResult.from_dict(payload)

    def test_optional_channels_populate(self):
        from repro.scenarios import get_scenario

        snr_job = CampaignSpec(name="snr", scenarios=("snr-fade",)).expand()[0]
        # Shrink the horizon so the decoder probe stays cheap.
        import dataclasses

        small = dataclasses.replace(
            snr_job.spec, num_epochs=4, settle_epochs=2
        )
        snr_result = evaluate_job(dataclasses.replace(snr_job, spec=small))
        assert snr_result.decoder_throughput_factor is not None

        noc_spec = get_scenario("noc-congestion-burst")
        noc_job = CampaignSpec(name="noc", scenarios=(noc_spec,)).expand()[0]
        noc_result = evaluate_job(noc_job)
        assert noc_result.noc_mean_latency_cycles is not None
        assert noc_result.noc_saturated_epochs == 12
