"""The campaign streaming axis: windowed evaluation as a first-class sweep.

``stream_windows`` is an *evaluation* axis: it changes how a job's scenario
is driven (whole-horizon batch vs the streaming engine in N-epoch windows),
not what scenario it derives — so batch campaigns keep byte-stable job ids
and cache keys, streamed jobs get distinct ones, and a streamed result
matches its batch twin to streaming-parity tolerance.
"""

import pytest

from repro.campaign import CampaignSpec, evaluate_job
from repro.campaign.cache import code_fingerprint, job_cache_key, modules_for_spec
from repro.campaign.executor import compute_job_keys
from repro.scenarios import ScenarioSpec


def cheap_scenario(name="cheap", **overrides):
    params = dict(
        name=name,
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=6,
        settle_epochs=3,
    )
    params.update(overrides)
    return ScenarioSpec(**params)


class TestStreamAxis:
    def test_expansion_suffixes_streamed_jobs(self):
        spec = CampaignSpec(
            name="streamed",
            scenarios=(cheap_scenario(),),
            schemes=("xy-shift",),
            stream_windows=(3, 6),
        )
        jobs = spec.expand()
        assert [job.job_id.split("/")[-1] for job in jobs] == ["w3", "w6"]
        assert [job.stream_window for job in jobs] == [3, 6]
        assert all(job.axes["stream_window"] == job.stream_window for job in jobs)

    def test_batch_expansion_is_untouched(self):
        # No stream_windows: ids and axes are byte-identical to before the
        # streaming axis existed (journals and caches stay valid).
        spec = CampaignSpec(
            name="batch", scenarios=(cheap_scenario(),), schemes=("xy-shift",)
        )
        jobs = spec.expand()
        assert len(jobs) == 1
        assert jobs[0].stream_window is None
        assert "stream_window" not in jobs[0].axes
        assert "/w" not in jobs[0].job_id

    def test_round_trips_through_json(self):
        spec = CampaignSpec(
            name="rt",
            scenarios=(cheap_scenario(),),
            stream_windows=(2, 4),
        )
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(
                name="x", scenarios=(cheap_scenario(),), stream_windows=(0,)
            )
        with pytest.raises(ValueError):
            CampaignSpec(
                name="x", scenarios=(cheap_scenario(),), stream_windows=(4, 4)
            )
        with pytest.raises(ValueError):
            CampaignSpec(
                name="x", scenarios=(cheap_scenario(),), stream_windows=()
            )


class TestStreamCacheKeys:
    def test_variant_separates_streamed_entries(self):
        scenario = cheap_scenario()
        fingerprint = code_fingerprint(modules_for_spec(scenario))
        batch = job_cache_key(scenario, fingerprint)
        w3 = job_cache_key(scenario, fingerprint, variant="stream:w3")
        w6 = job_cache_key(scenario, fingerprint, variant="stream:w6")
        assert len({batch, w3, w6}) == 3
        # None keeps the historical batch key.
        assert batch == job_cache_key(scenario, fingerprint, variant=None)

    def test_compute_job_keys_tracks_stream_sources(self):
        streamed = CampaignSpec(
            name="keys",
            scenarios=(cheap_scenario(),),
            stream_windows=(3,),
        ).expand()
        batch = CampaignSpec(name="keys", scenarios=(cheap_scenario(),)).expand()
        streamed_key = compute_job_keys(streamed)[streamed[0].job_id]
        batch_key = compute_job_keys(batch)[batch[0].job_id]
        assert streamed_key != batch_key
        # The streamed key binds the stream package's sources.
        core_fp = code_fingerprint(modules_for_spec(streamed[0].spec))
        stream_fp = code_fingerprint(
            modules_for_spec(streamed[0].spec) + ("stream",)
        )
        assert batch_key == job_cache_key(batch[0].spec, core_fp)
        assert streamed_key == job_cache_key(
            streamed[0].spec, stream_fp, variant="stream:w3"
        )


class TestStreamedEvaluation:
    def test_streamed_result_matches_batch(self):
        scenario = cheap_scenario()
        batch_job = CampaignSpec(name="b", scenarios=(scenario,)).expand()[0]
        stream_job = CampaignSpec(
            name="s", scenarios=(scenario,), stream_windows=(2,)
        ).expand()[0]
        batch = evaluate_job(batch_job)
        streamed = evaluate_job(stream_job)
        assert streamed.settled_peak_celsius == pytest.approx(
            batch.settled_peak_celsius, abs=1e-9
        )
        assert streamed.settled_mean_celsius == pytest.approx(
            batch.settled_mean_celsius, abs=1e-9
        )
        assert streamed.migrations == batch.migrations
        # The streamed budget is one steady solve per window (6 epochs / 2).
        assert batch.steady_solves == 1
        assert streamed.steady_solves == 3

    def test_streamed_result_serializes(self):
        stream_job = CampaignSpec(
            name="s", scenarios=(cheap_scenario(),), stream_windows=(3,)
        ).expand()[0]
        result = evaluate_job(stream_job)
        from repro.campaign import JobResult

        assert JobResult.from_dict(result.to_dict()) == result
