"""Campaign directory semantics: binding, journal replay, kill tolerance."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec
from repro.campaign import manifest

from test_campaign_spec import cheap_scenario


def demo_spec(**overrides):
    params = dict(name="demo", scenarios=(cheap_scenario(),))
    params.update(overrides)
    return CampaignSpec(**params)


class TestBindDirectory:
    def test_first_bind_writes_spec(self, tmp_path):
        spec = demo_spec()
        manifest.bind_directory(tmp_path / "camp", spec)
        assert manifest.load_spec(tmp_path / "camp") == spec

    def test_rebind_with_same_spec_is_a_noop(self, tmp_path):
        spec = demo_spec()
        manifest.bind_directory(tmp_path, spec)
        manifest.bind_directory(tmp_path, spec)
        assert manifest.load_spec(tmp_path) == spec

    def test_rebind_with_edited_spec_updates_the_file(self, tmp_path):
        manifest.bind_directory(tmp_path, demo_spec())
        edited = demo_spec(scenarios=(cheap_scenario(num_epochs=9),))
        manifest.bind_directory(tmp_path, edited)
        assert manifest.load_spec(tmp_path) == edited

    def test_rebind_with_different_campaign_refused(self, tmp_path):
        manifest.bind_directory(tmp_path, demo_spec())
        with pytest.raises(ValueError, match="belongs to campaign 'demo'"):
            manifest.bind_directory(tmp_path, demo_spec(name="other"))

    def test_load_spec_requires_a_campaign_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            manifest.load_spec(tmp_path)


class TestJournal:
    def entry(self, job_id="j1", key="k1", value=1.0):
        return {
            "job_id": job_id,
            "key": key,
            "from_cache": False,
            "wall_s": 0.01,
            "result": {"value": value},
        }

    def test_append_then_load_round_trips(self, tmp_path):
        first, second = self.entry("j1"), self.entry("j2", "k2")
        manifest.append_journal_entry(tmp_path, first)
        manifest.append_journal_entry(tmp_path, second)
        assert manifest.load_journal(tmp_path) == [first, second]

    def test_missing_journal_is_empty(self, tmp_path):
        assert manifest.load_journal(tmp_path) == []

    def test_truncated_final_line_is_dropped(self, tmp_path):
        manifest.append_journal_entry(tmp_path, self.entry("j1"))
        path = manifest.journal_path(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            # The write a kill interrupted: valid JSON prefix, no newline.
            handle.write(json.dumps(self.entry("j2"))[:25])
        assert manifest.load_journal(tmp_path) == [self.entry("j1")]

    def test_corrupt_interior_line_is_loud(self, tmp_path):
        path = manifest.journal_path(tmp_path)
        path.write_text('{"broken": \n' + json.dumps(self.entry("j2")) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line 1"):
            manifest.load_journal(tmp_path)

    def test_repair_truncates_torn_tail(self, tmp_path):
        manifest.append_journal_entry(tmp_path, self.entry("j1"))
        path = manifest.journal_path(tmp_path)
        intact = path.read_text()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        manifest.repair_journal(tmp_path)
        assert path.read_text() == intact
        # Appending after repair stays parseable end to end.
        manifest.append_journal_entry(tmp_path, self.entry("j2"))
        assert manifest.load_journal(tmp_path) == [self.entry("j1"), self.entry("j2")]

    def test_repair_is_a_noop_on_clean_or_missing_journals(self, tmp_path):
        manifest.repair_journal(tmp_path)  # no journal at all
        manifest.append_journal_entry(tmp_path, self.entry("j1"))
        before = manifest.journal_path(tmp_path).read_text()
        manifest.repair_journal(tmp_path)
        assert manifest.journal_path(tmp_path).read_text() == before

    def test_blank_lines_are_ignored(self, tmp_path):
        path = manifest.journal_path(tmp_path)
        path.write_text(json.dumps(self.entry("j1")) + "\n\n")
        assert manifest.load_journal(tmp_path) == [self.entry("j1")]


class TestReplay:
    def test_replay_keeps_only_current_keys(self, tmp_path):
        manifest.append_journal_entry(
            tmp_path, TestJournal().entry("j1", key="current")
        )
        manifest.append_journal_entry(tmp_path, TestJournal().entry("j2", key="stale"))
        valid = manifest.replay_journal(
            tmp_path, {"j1": "current", "j2": "now-different"}
        )
        assert set(valid) == {"j1"}

    def test_replay_drops_jobs_no_longer_expanded(self, tmp_path):
        manifest.append_journal_entry(tmp_path, TestJournal().entry("gone", key="k"))
        assert manifest.replay_journal(tmp_path, {"j1": "k"}) == {}

    def test_latest_entry_per_job_wins(self, tmp_path):
        manifest.append_journal_entry(
            tmp_path, TestJournal().entry("j1", key="k", value=1.0)
        )
        manifest.append_journal_entry(
            tmp_path, TestJournal().entry("j1", key="k", value=2.0)
        )
        valid = manifest.replay_journal(tmp_path, {"j1": "k"})
        assert valid["j1"]["result"] == {"value": 2.0}


class TestReport:
    def test_report_round_trips(self, tmp_path):
        payload = {"campaign": "demo", "jobs": 3}
        manifest.write_report(tmp_path, payload)
        assert manifest.load_report(tmp_path) == payload

    def test_missing_report_is_none(self, tmp_path):
        assert manifest.load_report(tmp_path) is None
