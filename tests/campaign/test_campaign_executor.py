"""End-to-end campaign execution: cache, resume, sharding, dry runs."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaign import CampaignSpec, auto_plan, campaign_status, run_campaign
from repro.campaign import executor as executor_module
from repro.campaign import manifest
from repro.chips import get_configuration

from test_campaign_spec import cheap_scenario


def grid_spec(name="grid", scenarios=None, **overrides):
    params = dict(
        name=name,
        scenarios=scenarios or (cheap_scenario("s1"), cheap_scenario("s2")),
        configurations=("A", "B"),
        schemes=("xy-shift", "rotation"),
    )
    params.update(overrides)
    return CampaignSpec(**params)


def result_payloads(run):
    return [result.to_dict() for result in run.results]


class TestColdRun:
    def test_evaluates_every_job_and_reports(self, tmp_path):
        spec = grid_spec()
        run = run_campaign(spec, tmp_path / "camp")
        assert run.evaluated == len(run.jobs) == 8
        assert run.cache_hits == 0 and run.resumed == 0
        assert all(result is not None for result in run.results)
        assert run.report is not None and run.report.jobs == 8
        assert manifest.load_report(tmp_path / "camp") == run.report.to_dict()
        assert len(manifest.load_journal(tmp_path / "camp")) == 8

    def test_duplicate_grid_cells_evaluate_once(self, tmp_path):
        twin = cheap_scenario("twin")
        spec = CampaignSpec(name="twins", scenarios=(twin, twin))
        run = run_campaign(spec, tmp_path / "camp")
        assert len(run.jobs) == 2
        assert run.evaluated == 1
        assert run.results[0] == run.results[1]


class TestWarmRun:
    def test_zero_evaluations_and_bit_identical_results(self, tmp_path):
        spec = grid_spec()
        cold = run_campaign(spec, tmp_path / "camp")
        solver = get_configuration("A").thermal_model.solver
        solves_before = solver.steady_solve_count
        warm = run_campaign(spec, tmp_path / "camp")
        assert warm.evaluated == 0
        assert warm.resumed == len(warm.jobs)
        # The hard guarantee: a warm re-run performs no scenario
        # evaluations — the shared chip's solver counters do not move.
        assert solver.steady_solve_count == solves_before
        assert result_payloads(warm) == result_payloads(cold)

    def test_fresh_directory_shared_cache_hits_everything(self, tmp_path):
        spec = grid_spec()
        shared = tmp_path / "shared-cache"
        cold = run_campaign(spec, tmp_path / "one", cache_root=shared)
        warm = run_campaign(spec, tmp_path / "two", cache_root=shared)
        assert warm.evaluated == 0
        assert warm.cache_hits == len(warm.jobs)
        assert warm.resumed == 0
        assert result_payloads(warm) == result_payloads(cold)

    def test_overlapping_campaign_shares_cache_entries(self, tmp_path):
        shared = tmp_path / "shared-cache"
        run_campaign(grid_spec(), tmp_path / "one", cache_root=shared)
        # A differently shaped campaign whose grid overlaps on (s1, A/B x
        # xy-shift): those four cells must be cache hits.
        overlap = CampaignSpec(
            name="overlap",
            scenarios=(cheap_scenario("s1"),),
            configurations=("A", "B"),
            schemes=("xy-shift", "right-shift"),
        )
        run = run_campaign(overlap, tmp_path / "two", cache_root=shared)
        assert run.cache_hits == 2
        assert run.evaluated == 2


class TestInvalidation:
    def test_scenario_edit_invalidates_only_its_jobs(self, tmp_path):
        spec = grid_spec()
        run_campaign(spec, tmp_path / "camp")
        edited = grid_spec(
            scenarios=(cheap_scenario("s1"), cheap_scenario("s2", num_epochs=7))
        )
        rerun = run_campaign(edited, tmp_path / "camp")
        # Only s2's 4 cells re-run; s1's replay from the journal.
        assert rerun.evaluated == 4
        assert rerun.resumed == 4
        assert all(job.axes["scenario"] == "s2"
                   for job, result in zip(rerun.jobs, rerun.results)
                   if job.job_id not in
                   {j.job_id for j in spec.expand()})

    def test_code_fingerprint_change_invalidates_everything(
        self, tmp_path, monkeypatch
    ):
        spec = grid_spec()
        run_campaign(spec, tmp_path / "camp")
        monkeypatch.setattr(
            executor_module, "code_fingerprint", lambda groups, root=None: "0" * 64
        )
        rerun = run_campaign(spec, tmp_path / "camp")
        assert rerun.evaluated == len(rerun.jobs)
        assert rerun.resumed == 0

    def test_different_campaign_name_refused(self, tmp_path):
        run_campaign(grid_spec(), tmp_path / "camp")
        with pytest.raises(ValueError, match="belongs to campaign"):
            run_campaign(grid_spec(name="imposter"), tmp_path / "camp")


class TestResume:
    def test_killed_campaign_resumes_exactly(self, tmp_path):
        spec = grid_spec()
        complete = run_campaign(spec, tmp_path / "full")
        # Replay the first 3 journal lines plus a torn 4th into a fresh
        # directory — the on-disk state an interrupted run leaves behind.
        journal = manifest.journal_path(tmp_path / "full").read_text()
        lines = journal.splitlines(keepends=True)
        interrupted = tmp_path / "killed"
        manifest.bind_directory(interrupted, spec)
        manifest.journal_path(interrupted).write_text(
            "".join(lines[:3]) + lines[3][:20]
        )
        resumed = run_campaign(spec, interrupted)
        assert resumed.resumed == 3
        assert resumed.evaluated == len(resumed.jobs) - 3
        assert result_payloads(resumed) == result_payloads(complete)
        status = campaign_status(interrupted)
        assert status["completed"] == len(resumed.jobs)
        assert status["pending"] == 0

    def test_status_of_partial_campaign(self, tmp_path):
        spec = grid_spec()
        run_campaign(spec, tmp_path / "full")
        journal = manifest.journal_path(tmp_path / "full").read_text()
        partial = tmp_path / "partial"
        manifest.bind_directory(partial, spec)
        manifest.journal_path(partial).write_text(
            "".join(journal.splitlines(keepends=True)[:5])
        )
        status = campaign_status(partial)
        assert status["jobs"] == 8
        assert status["completed"] == 5
        assert status["pending"] == 3


class TestSharding:
    def test_sharded_results_bit_identical_to_serial(self, tmp_path, monkeypatch):
        spec = grid_spec()
        serial = run_campaign(spec, tmp_path / "serial", n_jobs=1)
        # Force a genuine 2-worker thread fan-out regardless of host CPUs
        # or the cost-aware downgrade (the jobs here are tiny).
        monkeypatch.setattr(
            "repro.analysis.runner.plan_execution",
            lambda n_jobs, num_tasks, est_task_seconds=None, executor="process": (
                2,
                "thread",
            ),
        )
        sharded = run_campaign(
            spec, tmp_path / "sharded", n_jobs=2, executor="thread"
        )
        assert result_payloads(sharded) == result_payloads(serial)
        # And the journals carry the same payloads (completion order may
        # differ; compare as sets of canonical lines).
        def journal_results(directory):
            return sorted(
                json.dumps(entry["result"], sort_keys=True)
                for entry in manifest.load_journal(directory)
            )

        assert journal_results(tmp_path / "sharded") == journal_results(
            tmp_path / "serial"
        )


class TestDryRun:
    def test_dry_run_touches_nothing(self, tmp_path):
        spec = grid_spec()
        directory = tmp_path / "camp"
        forecast = run_campaign(spec, directory, dry_run=True)
        assert forecast.forecast_evaluations == len(forecast.jobs)
        assert forecast.evaluated == 0
        assert not directory.exists()

    def test_dry_run_forecasts_cache_hits(self, tmp_path):
        spec = grid_spec()
        directory = tmp_path / "camp"
        run_campaign(spec, directory)
        edited = grid_spec(
            scenarios=(cheap_scenario("s1"), cheap_scenario("s2", num_epochs=9))
        )
        journal_before = manifest.journal_path(directory).read_text()
        forecast = run_campaign(edited, directory, dry_run=True)
        assert forecast.resumed == 4
        assert forecast.forecast_evaluations == 4
        # Read-only: journal and spec file untouched.
        assert manifest.journal_path(directory).read_text() == journal_before
        assert manifest.load_spec(directory) == spec


class TestAutoPlan:
    def test_single_cpu_hosts_stay_serial(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert auto_plan(100) == (1, "thread")

    def test_single_pending_job_stays_serial(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        assert auto_plan(1) == (1, "thread")

    def test_weak_recorded_speedup_stays_serial(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        monkeypatch.setattr(
            executor_module,
            "_perf_record",
            lambda path=None: {"speedup": 1.01, "n_jobs": 4, "executor": "thread"},
        )
        assert auto_plan(100) == (1, "thread")

    def test_strong_recorded_speedup_reuses_the_shape(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        monkeypatch.setattr(
            executor_module,
            "_perf_record",
            lambda path=None: {"speedup": 2.4, "n_jobs": 4, "executor": "thread"},
        )
        assert auto_plan(100) == (4, "thread")
        # Capped by the pending job count.
        assert auto_plan(3) == (3, "thread")

    def test_no_history_fans_over_cpus(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        monkeypatch.setattr(executor_module, "_perf_record", lambda path=None: None)
        assert auto_plan(100) == (4, "thread")
