"""Content-addressed cache keys: fingerprints, invalidation, determinism."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    ResultCache,
    code_fingerprint,
    job_cache_key,
    modules_for_spec,
)
from repro.scenarios import NocChannel, ScenarioSpec
from repro.scenarios.patterns import RampPattern

from test_campaign_spec import cheap_scenario


class TestModulesForSpec:
    def test_core_only_for_plain_scenarios(self):
        assert modules_for_spec(cheap_scenario()) == ("core",)

    def test_snr_channel_adds_ldpc(self):
        spec = cheap_scenario(snr_db=RampPattern(start=3.0, end=2.0))
        assert modules_for_spec(spec) == ("core", "ldpc")

    def test_noc_channel_adds_noc(self):
        spec = cheap_scenario(noc=NocChannel())
        assert modules_for_spec(spec) == ("core", "noc")


class TestCodeFingerprint:
    def _tree(self, root: Path) -> Path:
        for group in ("core", "ldpc", "noc"):
            (root / group).mkdir(parents=True)
            (root / group / "mod.py").write_text(f"VALUE = {group!r}\n")
        return root

    def test_stable_for_unchanged_sources(self, tmp_path):
        root = self._tree(tmp_path)
        assert code_fingerprint(("core",), root) == code_fingerprint(("core",), root)

    def test_edit_changes_fingerprint(self, tmp_path):
        root = self._tree(tmp_path)
        before = code_fingerprint(("core",), root)
        (root / "core" / "mod.py").write_text("VALUE = 'edited'\n")
        assert code_fingerprint(("core",), root) != before

    def test_rename_changes_fingerprint(self, tmp_path):
        root = self._tree(tmp_path)
        before = code_fingerprint(("core",), root)
        (root / "core" / "mod.py").rename(root / "core" / "renamed.py")
        assert code_fingerprint(("core",), root) != before

    def test_groups_are_independent(self, tmp_path):
        root = self._tree(tmp_path)
        core_before = code_fingerprint(("core",), root)
        both_before = code_fingerprint(("core", "ldpc"), root)
        (root / "ldpc" / "mod.py").write_text("VALUE = 'edited'\n")
        assert code_fingerprint(("core",), root) == core_before
        assert code_fingerprint(("core", "ldpc"), root) != both_before

    def test_group_order_is_irrelevant(self, tmp_path):
        root = self._tree(tmp_path)
        assert code_fingerprint(("ldpc", "core"), root) == code_fingerprint(
            ("core", "ldpc"), root
        )

    def test_unknown_group_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown module groups"):
            code_fingerprint(("warp-drive",), tmp_path)

    def test_default_root_covers_real_package(self):
        fingerprint = code_fingerprint(("core", "ldpc", "noc"))
        assert len(fingerprint) == 64
        # Memoized: the second call must agree.
        assert code_fingerprint(("core", "ldpc", "noc")) == fingerprint


class TestJobCacheKey:
    def test_same_spec_same_code_same_key(self):
        spec = cheap_scenario()
        assert job_cache_key(spec, "f" * 64) == job_cache_key(spec, "f" * 64)

    def test_spec_edit_changes_key(self):
        import dataclasses

        spec = cheap_scenario()
        edited = dataclasses.replace(spec, num_epochs=7)
        assert job_cache_key(spec, "f" * 64) != job_cache_key(edited, "f" * 64)

    def test_fingerprint_change_changes_key(self):
        spec = cheap_scenario()
        assert job_cache_key(spec, "a" * 64) != job_cache_key(spec, "b" * 64)

    def test_key_is_identical_across_processes(self):
        """The whole point of content addressing: no per-process salt."""
        spec = cheap_scenario(
            period_us=109.7,
            noc=NocChannel(injection_rate=0.0123, traffic_kwargs={"hotspots": [[1, 1]]}),
            snr_db=RampPattern(start=3.0, end=1.25),
        )
        spec = ScenarioSpec.from_json(spec.to_json())
        here = job_cache_key(spec, "ab" * 32)
        script = (
            "import sys, json\n"
            "from repro.scenarios import ScenarioSpec\n"
            "from repro.campaign import job_cache_key\n"
            "spec = ScenarioSpec.from_json(sys.stdin.read())\n"
            "print(job_cache_key(spec, 'ab' * 32))\n"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        completed = subprocess.run(
            [sys.executable, "-c", script],
            input=spec.to_json(),
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "random"},
            check=True,
        )
        assert completed.stdout.strip() == here


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, {"value": 1.25})
        assert cache.get(key) == {"value": 1.25}
        assert len(cache) == 1

    def test_entries_shard_by_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        cache.put(key, {})
        assert (tmp_path / "cd" / f"{key}.json").exists()

    def test_torn_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "2" * 62
        (tmp_path / "ef").mkdir(parents=True)
        (tmp_path / "ef" / f"{key}.json").write_text('{"value": 1')
        assert cache.get(key) is None
        cache.put(key, {"value": 2})
        assert cache.get(key) == {"value": 2}

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" + "3" * 62, {"x": 1})
        leftovers = [p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")]
        assert leftovers == []
