"""EpochWindow: validation, broadcasting, trimming and the JSONL codec."""

import numpy as np
import pytest

from repro.stream import EpochWindow
from repro.stream.window import _as_schedule


class TestValidation:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="at least one epoch"):
            EpochWindow(num_epochs=0)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start_epoch"):
            EpochWindow(num_epochs=3, start_epoch=-1)

    def test_rejects_wrong_length_schedule(self):
        with pytest.raises(ValueError, match="ambient_offsets"):
            EpochWindow(num_epochs=3, ambient_offsets=[0.0, 1.0])

    def test_rejects_non_finite_modulation(self):
        with pytest.raises(ValueError, match="finite"):
            EpochWindow(num_epochs=2, load_modulation=[1.0, np.nan])

    def test_rejects_negative_modulation(self):
        with pytest.raises(ValueError, match="non-negative"):
            EpochWindow(num_epochs=2, load_modulation=[1.0, -0.1])

    def test_rejects_negative_noc_rates(self):
        with pytest.raises(ValueError, match="noc_rates"):
            EpochWindow(num_epochs=2, noc_rates=[0.1, -0.1])

    def test_schedule_helper_passes_none(self):
        assert _as_schedule(None, "x", 4) is None


class TestModulationMatrix:
    def test_global_modulation_broadcasts(self):
        window = EpochWindow(num_epochs=3, load_modulation=[0.5, 1.0, 1.5])
        matrix = window.modulation_matrix(4)
        assert matrix.shape == (3, 4)
        assert np.array_equal(matrix[:, 0], [0.5, 1.0, 1.5])
        assert np.array_equal(matrix[:, 3], [0.5, 1.0, 1.5])
        matrix[0, 0] = 9.0  # the broadcast is a writable copy
        assert window.load_modulation[0] == 0.5

    def test_per_unit_modulation_passes_through(self):
        values = np.ones((2, 4))
        window = EpochWindow(num_epochs=2, load_modulation=values)
        assert np.array_equal(window.modulation_matrix(4), values)

    def test_per_unit_modulation_unit_mismatch(self):
        window = EpochWindow(num_epochs=2, load_modulation=np.ones((2, 4)))
        with pytest.raises(ValueError, match="chip has 9"):
            window.modulation_matrix(9)

    def test_no_modulation_is_none(self):
        assert EpochWindow(num_epochs=2).modulation_matrix(4) is None


class TestHead:
    def test_trims_every_schedule(self):
        window = EpochWindow(
            num_epochs=4,
            start_epoch=8,
            load_modulation=[1.0, 2.0, 3.0, 4.0],
            ambient_offsets=[0.0, 0.5, 1.0, 1.5],
            snr_schedule=[3.0, 3.1, 3.2, 3.3],
            noc_rates=[0.1, 0.2, 0.3, 0.4],
        )
        head = window.head(2)
        assert head.num_epochs == 2
        assert head.start_epoch == 8
        assert np.array_equal(head.load_modulation, [1.0, 2.0])
        assert np.array_equal(head.ambient_offsets, [0.0, 0.5])
        assert np.array_equal(head.snr_schedule, [3.0, 3.1])
        assert np.array_equal(head.noc_rates, [0.1, 0.2])

    def test_full_head_is_self(self):
        window = EpochWindow(num_epochs=3)
        assert window.head(3) is window

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            EpochWindow(num_epochs=3).head(4)
        with pytest.raises(ValueError):
            EpochWindow(num_epochs=3).head(0)


class TestJsonlCodec:
    def test_round_trip(self):
        window = EpochWindow(
            num_epochs=3,
            start_epoch=6,
            load_modulation=[0.5, 1.0, 1.5],
            ambient_offsets=[0.0, 1.0, 2.0],
            snr_schedule=[3.0, 3.5, 4.0],
            noc_rates=[0.05, 0.06, 0.07],
        )
        back = EpochWindow.from_json_line(window.to_json_line())
        assert back.num_epochs == 3
        assert back.start_epoch == 6
        assert np.array_equal(back.load_modulation, window.load_modulation)
        assert np.array_equal(back.ambient_offsets, window.ambient_offsets)
        assert np.array_equal(back.snr_schedule, window.snr_schedule)
        assert np.array_equal(back.noc_rates, window.noc_rates)

    def test_optional_fields_omitted(self):
        window = EpochWindow(num_epochs=2)
        assert window.to_dict() == {"num_epochs": 2}
        back = EpochWindow.from_json_line(window.to_json_line())
        assert back.load_modulation is None
        assert back.start_epoch is None

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown EpochWindow fields"):
            EpochWindow.from_dict({"num_epochs": 2, "epochs": 2})

    def test_missing_num_epochs_rejected(self):
        with pytest.raises(ValueError, match="num_epochs"):
            EpochWindow.from_dict({"start_epoch": 0})

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            EpochWindow.from_json_line("[1, 2, 3]")

    def test_per_unit_modulation_round_trips(self):
        window = EpochWindow(
            num_epochs=2, load_modulation=[[1.0, 2.0], [3.0, 4.0]]
        )
        back = EpochWindow.from_json_line(window.to_json_line())
        assert back.load_modulation.shape == (2, 2)
        assert np.array_equal(back.load_modulation, window.load_modulation)
