"""CheckpointStore: durable appends, torn-tail repair and atomic compaction."""

import json

import pytest

from repro.stream import CheckpointStore, TornCheckpointError


class TestSaveLoad:
    def test_round_trip_newest_last(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"next_epoch": 4})
        store.save({"next_epoch": 8})
        assert store.load_latest() == {"next_epoch": 8}
        assert [entry["next_epoch"] for entry in store.load_all()] == [4, 8]

    def test_empty_directory_is_fresh(self, tmp_path):
        store = CheckpointStore(tmp_path / "never-created")
        assert store.load_latest() is None
        assert store.load_all() == []

    def test_validates_retention_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, keep=0)
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, keep=4, max_entries=2)


class TestTornTail:
    def test_torn_final_line_is_skipped_on_load(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"next_epoch": 4})
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"next_epoch": 8')  # crash mid-append
        assert store.load_latest() == {"next_epoch": 4}

    def test_repair_truncates_torn_tail(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"next_epoch": 4})
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        assert store.repair() is True
        assert store.path.read_text().endswith("\n")
        assert store.load_latest() == {"next_epoch": 4}
        # Idempotent: a clean journal is untouched.
        assert store.repair() is False

    def test_save_repairs_before_appending(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"next_epoch": 4})
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        store.save({"next_epoch": 8})
        assert [e["next_epoch"] for e in store.load_all()] == [4, 8]

    def test_interior_corruption_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"next_epoch": 4})
        store.save({"next_epoch": 8})
        lines = store.path.read_text().splitlines()
        lines[0] = '{"broken'
        store.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TornCheckpointError, match="line 1"):
            store.load_all()


class TestCompaction:
    def test_compacts_past_max_entries(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3, max_entries=6)
        for epoch in range(8):
            store.save({"next_epoch": epoch})
        entries = store.load_all()
        # Every save past max_entries compacts down to the newest `keep`.
        assert len(entries) <= store.max_entries
        assert entries[-1] == {"next_epoch": 7}
        with store.path.open("rb") as handle:
            assert sum(1 for _ in handle) == len(entries)

    def test_compaction_preserves_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2, max_entries=2)
        for epoch in range(5):
            store.save({"next_epoch": epoch})
        assert store.load_latest() == {"next_epoch": 4}
        # No temp files left behind by the atomic rewrite.
        leftovers = [p for p in tmp_path.iterdir() if p.name != store.path.name]
        assert leftovers == []

    def test_payloads_survive_compaction_byte_exact(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=1, max_entries=1)
        payload = {"identity": "x/y", "state": {"temps": [1.5, 2.25]}}
        store.save({"identity": "old"})
        store.save(payload)
        assert store.load_latest() == json.loads(json.dumps(payload))
