"""Window sources: scenario pattern cursors and the JSONL wire format."""

import itertools

import numpy as np
import pytest

from repro.scenarios.compile import compile_scenario
from repro.scenarios.patterns import DiurnalPattern, RampPattern
from repro.scenarios.spec import ScenarioSpec
from repro.stream import EpochWindow, jsonl_windows, scenario_windows


def _compiled(num_epochs=12):
    spec = ScenarioSpec(
        name="source-test",
        configuration="A",
        scheme="xy-shift",
        num_epochs=num_epochs,
        settle_epochs=4,
        load=DiurnalPattern(mean=0.9, amplitude=0.2, period_epochs=8),
        ambient_celsius=RampPattern(start=0.0, end=2.0, end_epoch=10),
    )
    return compile_scenario(spec)


class TestScenarioWindows:
    def test_covers_horizon_with_trimmed_tail(self):
        compiled = _compiled()
        windows = list(scenario_windows(compiled, 5, max_epochs=12))
        assert [w.num_epochs for w in windows] == [5, 5, 2]
        assert [w.start_epoch for w in windows] == [0, 5, 10]

    def test_windows_match_batch_schedules(self):
        compiled = _compiled()
        windows = list(scenario_windows(compiled, 5, max_epochs=12))
        stitched = np.concatenate(
            [w.modulation_matrix(compiled.load_modulation.shape[1]) for w in windows]
        )
        assert np.array_equal(stitched, compiled.load_modulation)
        offsets = np.concatenate([w.ambient_offsets for w in windows])
        assert np.array_equal(offsets, compiled.ambient_offsets)

    def test_unbounded_stream_keeps_producing(self):
        compiled = _compiled()
        windows = list(itertools.islice(scenario_windows(compiled, 4), 10))
        assert len(windows) == 10
        # Cursors run past the spec's horizon without complaint.
        assert windows[-1].start_epoch == 36

    def test_start_epoch_offset(self):
        compiled = _compiled()
        windows = list(scenario_windows(compiled, 4, max_epochs=12, start_epoch=8))
        assert [w.start_epoch for w in windows] == [8]
        full = list(scenario_windows(compiled, 4, max_epochs=12))
        assert np.array_equal(
            windows[0].modulation_matrix(16), full[2].modulation_matrix(16)
        )

    def test_exhausted_range_is_empty(self):
        compiled = _compiled()
        assert list(scenario_windows(compiled, 4, max_epochs=8, start_epoch=8)) == []

    def test_validates_arguments(self):
        compiled = _compiled()
        with pytest.raises(ValueError):
            next(scenario_windows(compiled, 0))
        with pytest.raises(ValueError):
            next(scenario_windows(compiled, 4, start_epoch=-1))


class TestJsonlWindows:
    def test_parses_lines_and_skips_blanks(self):
        lines = [
            EpochWindow(num_epochs=3, start_epoch=0).to_json_line(),
            "",
            "   \n",
            EpochWindow(num_epochs=2, start_epoch=3).to_json_line(),
        ]
        windows = list(jsonl_windows(lines))
        assert [w.num_epochs for w in windows] == [3, 2]
        assert [w.start_epoch for w in windows] == [0, 3]

    def test_reports_one_based_line_number(self):
        lines = [EpochWindow(num_epochs=1).to_json_line(), "{not json"]
        with pytest.raises(ValueError, match="line 2"):
            list(jsonl_windows(lines))

    def test_invalid_record_reports_line(self):
        with pytest.raises(ValueError, match="line 1"):
            list(jsonl_windows(['{"num_epochs": 0}']))
