"""Crash/resume regression: a killed stream resumes bit-identically.

The scenario the checkpoint layer exists for: a stream dies mid-run (even
mid-append, leaving a torn journal line), a fresh process re-arms the same
experiment, restores the newest intact checkpoint and replays the producer —
and the final numbers are *bit-identical* to the uninterrupted run.
"""

import numpy as np
import pytest

from repro.scenarios.compile import compile_scenario
from repro.scenarios.patterns import DiurnalPattern
from repro.scenarios.spec import ScenarioSpec
from repro.stream import (
    CheckpointStore,
    EpochWindow,
    StreamingExperiment,
    scenario_windows,
)


def _spec(**kwargs):
    defaults = dict(
        name="resume-test",
        configuration="A",
        scheme="threshold-xy-shift",
        policy_params={"trigger_celsius": 75.0},
        mode="steady",
        num_epochs=24,
        settle_epochs=6,
        load=DiurnalPattern(mean=0.9, amplitude=0.25, period_epochs=12),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def _run(compiled, windows_iter, store=None):
    engine = StreamingExperiment.from_scenario(compiled, checkpoint=store)
    resume = engine.prepare()
    updates = list(
        engine.process(windows_iter(resume), max_epochs=compiled.spec.num_epochs)
    )
    return engine, engine.finalize(), updates


class TestCrashResume:
    def test_killed_stream_resumes_bit_identically(self, tmp_path):
        spec = _spec()
        compiled = compile_scenario(spec)

        # Reference: one uninterrupted streamed run (no checkpointing).
        _engine, reference, _updates = _run(
            compiled, lambda r: scenario_windows(compiled, 6, 24, start_epoch=r)
        )

        # First process: dies after two of four windows...
        store = CheckpointStore(tmp_path)
        engine = StreamingExperiment.from_scenario(compiled, checkpoint=store)
        engine.prepare()
        windows = scenario_windows(compiled, 6, max_epochs=24)
        processed = 0
        for _update in engine.process(windows, max_epochs=24):
            processed += 1
            if processed == 2:
                break  # simulated crash: no finalize, no more windows
        # ... and tears the journal mid-append on the way down.
        with store.path.open("a", encoding="utf-8") as handle:
            handle.write('{"identity": "torn-mid-append')

        # Second process: fresh engine, same spec, same journal.
        resumed_store = CheckpointStore(tmp_path)
        resumed_engine = StreamingExperiment.from_scenario(
            compiled, checkpoint=resumed_store
        )
        resume_epoch = resumed_engine.prepare()
        assert resume_epoch == 12  # two 6-epoch windows survived
        _updates = list(
            resumed_engine.process(
                scenario_windows(compiled, 6, max_epochs=24, start_epoch=resume_epoch),
                max_epochs=24,
            )
        )
        resumed = resumed_engine.finalize()

        assert resumed.settled_peak_celsius == reference.settled_peak_celsius
        assert resumed.settled_mean_celsius == reference.settled_mean_celsius
        assert resumed.peak_reduction_celsius == reference.peak_reduction_celsius
        assert resumed.migrations_performed == reference.migrations_performed
        assert resumed.throughput_penalty == reference.throughput_penalty
        # The rolling summary is restored exactly too.
        assert resumed_engine.summary.epochs == 24
        assert resumed_engine.summary.windows == 4

    def test_resume_skips_replayed_windows(self, tmp_path):
        spec = _spec()
        compiled = compile_scenario(spec)
        store = CheckpointStore(tmp_path)
        engine = StreamingExperiment.from_scenario(compiled, checkpoint=store)
        engine.prepare()
        for index, _update in enumerate(engine.process(
            scenario_windows(compiled, 6, max_epochs=24), max_epochs=24
        )):
            if index == 1:
                break

        # A naive producer that replays from epoch 0: covered windows skip.
        resumed = StreamingExperiment.from_scenario(
            compiled, checkpoint=CheckpointStore(tmp_path)
        )
        resumed.prepare()
        updates = list(
            resumed.process(scenario_windows(compiled, 6, max_epochs=24), max_epochs=24)
        )
        assert [u.start_epoch for u in updates] == [12, 18]
        assert resumed.finalize().settled_peak_celsius == pytest.approx(
            compiled.experiment().run().settled_peak_celsius, abs=1e-9
        )

    def test_identity_mismatch_refuses_restore(self, tmp_path):
        spec = _spec()
        compiled = compile_scenario(spec)
        store = CheckpointStore(tmp_path)
        engine = StreamingExperiment.from_scenario(compiled, checkpoint=store)
        engine.prepare()
        next(iter(engine.process(scenario_windows(compiled, 6, 24), max_epochs=24)))

        other = compile_scenario(
            _spec(name="other-stream", scheme="adaptive", policy_params=None)
        )
        stranger = StreamingExperiment.from_scenario(
            other, checkpoint=CheckpointStore(tmp_path)
        )
        with pytest.raises(ValueError, match="identity mismatch"):
            stranger.prepare()


class TestStreamSemantics:
    def test_misaligned_window_raises(self):
        compiled = compile_scenario(_spec())
        engine = StreamingExperiment.from_scenario(compiled)
        engine.prepare()
        windows = [
            EpochWindow(num_epochs=6, start_epoch=0),
            EpochWindow(num_epochs=6, start_epoch=9),  # gap: cursor will be 6
        ]
        with pytest.raises(ValueError, match="cursor is at 6"):
            list(engine.process(iter(windows)))

    def test_max_epochs_trims_final_window(self):
        compiled = compile_scenario(_spec())
        engine = StreamingExperiment.from_scenario(compiled)
        engine.prepare()
        updates = list(
            engine.process(scenario_windows(compiled, 10), max_epochs=24)
        )
        assert [u.outcome.num_epochs for u in updates] == [10, 10, 4]
        assert engine.summary.epochs == 24

    def test_constant_memory_invariant(self):
        # Per-epoch logs are folded into counters every window: nothing on
        # the experiment grows with the number of processed windows.
        compiled = compile_scenario(_spec())
        engine = StreamingExperiment.from_scenario(compiled)
        engine.prepare()
        experiment = engine.experiment
        for _update in engine.process(scenario_windows(compiled, 4), max_epochs=24):
            assert experiment.controller.events == []
            assert experiment.controller.io_translator.history == []
