"""RollingSummary: exact incremental aggregates in O(1) state."""

import json

import numpy as np
import pytest

from repro.core.controller import MigrationEvent
from repro.core.experiment import WindowOutcome
from repro.stream import RollingSummary


def _outcome(start, peaks, means):
    peaks = np.asarray(peaks, dtype=float)
    means = np.asarray(means, dtype=float)
    return WindowOutcome(
        start_epoch=start,
        num_epochs=peaks.size,
        trace=None,
        costs=[None] * peaks.size,
        names=[None] * peaks.size,
        epoch_metrics=[],
        peak_by_epoch=peaks,
        mean_by_epoch=means,
    )


def _event(transform="xy-shift", cycles=10, energy=1e-6):
    return MigrationEvent(
        epoch_index=0,
        transform_name=transform,
        cycles=cycles,
        energy_j=energy,
        moved_tasks=4,
    )


class TestThermalAggregates:
    def test_empty_summary(self):
        summary = RollingSummary()
        assert summary.peak_celsius is None
        assert summary.mean_celsius is None
        row = summary.snapshot()
        assert row["windows"] == 0 and row["epochs"] == 0

    def test_running_peak_and_weighted_mean(self):
        summary = RollingSummary()
        summary.observe_window(_outcome(0, [70.0, 90.0], [60.0, 62.0]))
        summary.observe_window(_outcome(2, [80.0, 85.0, 75.0], [64.0, 66.0, 68.0]))
        assert summary.windows == 2
        assert summary.epochs == 5
        assert summary.peak_celsius == 90.0
        assert summary.last_peak_celsius == 75.0
        assert summary.last_mean_celsius == 68.0
        assert summary.mean_celsius == pytest.approx((60 + 62 + 64 + 66 + 68) / 5)

    def test_migration_accounting(self):
        summary = RollingSummary()
        summary.observe_window(
            _outcome(0, [70.0], [60.0]),
            events=[_event("xy-shift"), _event("rotation", cycles=20, energy=2e-6)],
        )
        assert summary.migrations == 2
        assert summary.migration_cycles == 30
        assert summary.migration_energy_j == pytest.approx(3e-6)
        assert summary.transform_counts == {"xy-shift": 1, "rotation": 1}


class TestChannelAggregates:
    def test_decoder_epoch_weighting(self):
        summary = RollingSummary()
        summary.observe_decoder(2, mean_iterations=4.0, success_rate=1.0,
                                throughput_factor=0.9)
        summary.observe_decoder(6, mean_iterations=8.0, success_rate=0.5,
                                throughput_factor=0.8)
        assert summary.decoder_mean_iterations == pytest.approx((2 * 4 + 6 * 8) / 8)
        assert summary.decoder_success_rate == pytest.approx((2 * 1.0 + 6 * 0.5) / 8)
        assert summary.last_throughput_factor == 0.8

    def test_noc_aggregates(self):
        summary = RollingSummary()
        summary.observe_noc(np.array([10.0, 30.0]), np.array([False, True]))
        summary.observe_noc(np.array([20.0]), np.array([False]))
        assert summary.noc_mean_latency_cycles == pytest.approx(20.0)
        assert summary.noc_peak_latency_cycles == 30.0
        assert summary.noc_saturated_epochs == 1

    def test_snapshot_gates_channel_keys(self):
        summary = RollingSummary()
        summary.observe_window(_outcome(0, [70.0], [60.0]))
        row = summary.snapshot()
        assert "decoder_mean_iterations" not in row
        assert "noc_mean_latency_cyc" not in row
        summary.observe_decoder(1, 5.0, 1.0, 0.95)
        summary.observe_noc(np.array([12.0]), np.array([False]))
        row = summary.snapshot()
        assert row["decoder_mean_iterations"] == 5.0
        assert row["noc_mean_latency_cyc"] == 12.0


class TestStateRoundTrip:
    def test_state_dict_is_json_safe_and_exact(self):
        summary = RollingSummary()
        summary.observe_window(
            _outcome(0, [70.0, 90.0], [60.0, 62.0]), events=[_event()]
        )
        summary.observe_decoder(2, 4.5, 0.75, 0.9)
        summary.observe_noc(np.array([15.0]), np.array([True]))
        state = json.loads(json.dumps(summary.state_dict()))
        restored = RollingSummary()
        restored.restore_state(state)
        assert restored.snapshot() == summary.snapshot()
        assert restored.state_dict() == summary.state_dict()
        # Restored summaries keep accumulating correctly.
        restored.observe_window(_outcome(2, [95.0], [63.0]))
        assert restored.peak_celsius == 95.0
        assert restored.epochs == 3
