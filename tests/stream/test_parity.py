"""Streaming-vs-batch parity: windowed streams reproduce whole-horizon runs.

The contract the streaming engine is built on: a stream capped at the batch
horizon produces the *same numbers* (< 1e-9, and in practice bit-identical)
as the one-shot batch run, for any window size — and a window sized to the
horizon costs exactly as many solves as the batch run.  The matrix below
crosses steady/transient modes, the block-level and grid thermal models, and
threshold/adaptive feedback policies.

Transient streams warm-start from the whole-trace average power; a mid-
stream engine cannot know the future trace, so exact parity requires the
batch warm vector passed in explicitly (``warm_power``) — that semantic
difference is itself pinned by ``test_transient_default_warm_start_differs``.
"""

import numpy as np
import pytest

from repro.chips import get_configuration
from repro.scenarios.compile import compile_scenario
from repro.scenarios.patterns import DiurnalPattern, RampPattern
from repro.scenarios.spec import ScenarioSpec
from repro.stream import StreamingExperiment, scenario_windows
from repro.thermal.grid import GridThermalModel


def _spec(name, **kwargs):
    defaults = dict(
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=12,
        settle_epochs=4,
        load=DiurnalPattern(mean=0.9, amplitude=0.2, period_epochs=8),
        ambient_celsius=RampPattern(start=0.0, end=2.0, end_epoch=10),
    )
    defaults.update(kwargs)
    return ScenarioSpec(name=name, **defaults)


def _grid_model(spec):
    chip = get_configuration(spec.configuration)
    return GridThermalModel(
        chip.topology,
        resolution=2,
        package=chip.thermal_model.package,
        floorplan=chip.thermal_model.floorplan,
    )


def _batch_warm_power(compiled, thermal_model=None):
    """The whole-trace average power the batch transient run warm-starts from.

    Replays the batch horizon through the public window API (so feedback
    policies see their ambient offsets) and averages the resulting trace.
    """
    probe = compiled.experiment(thermal_model=thermal_model)
    probe.prepare(total_epochs=compiled.spec.num_epochs)
    outcome = probe.step_window(
        compiled.spec.num_epochs,
        power_modulation=compiled.load_modulation,
        ambient_offsets=compiled.ambient_offsets,
        is_last=True,
    )
    return outcome.trace.average_vector()


def _stream(compiled, window_epochs, thermal_model=None, warm_power=None):
    engine = StreamingExperiment.from_scenario(
        compiled, thermal_model=thermal_model, warm_power=warm_power
    )
    for _update in engine.process(
        scenario_windows(
            compiled, window_epochs, max_epochs=compiled.spec.num_epochs
        )
    ):
        pass
    return engine


def _assert_parity(batch, streamed):
    assert streamed.baseline_peak_celsius == pytest.approx(
        batch.baseline_peak_celsius, abs=1e-9
    )
    assert streamed.settled_peak_celsius == pytest.approx(
        batch.settled_peak_celsius, abs=1e-9
    )
    assert streamed.settled_mean_celsius == pytest.approx(
        batch.settled_mean_celsius, abs=1e-9
    )
    assert streamed.peak_reduction_celsius == pytest.approx(
        batch.peak_reduction_celsius, abs=1e-9
    )
    assert streamed.migrations_performed == batch.migrations_performed
    assert streamed.throughput_penalty == pytest.approx(
        batch.throughput_penalty, abs=1e-12
    )


class TestSteadyParity:
    @pytest.mark.parametrize("window_epochs", [12, 5, 1])
    def test_threshold_hotspot(self, window_epochs):
        spec = _spec(
            "stream-threshold",
            scheme="threshold-xy-shift",
            policy_params={"trigger_celsius": 75.0},
        )
        compiled = compile_scenario(spec)
        batch = compiled.experiment().run()
        engine = _stream(compiled, window_epochs)
        _assert_parity(batch, engine.finalize())

    @pytest.mark.parametrize("window_epochs", [12, 5])
    def test_adaptive_grid(self, window_epochs):
        spec = _spec("stream-adaptive-grid", scheme="adaptive")
        compiled = compile_scenario(spec)
        batch = compiled.experiment(thermal_model=_grid_model(spec)).run()
        engine = _stream(compiled, window_epochs, thermal_model=_grid_model(spec))
        _assert_parity(batch, engine.finalize())

    def test_window_equals_horizon_solve_count(self):
        # The chip's thermal model (and its counters) is shared across the
        # process, so budgets are measured as deltas around each run.
        spec = _spec("stream-solves", scheme="xy-shift")
        compiled = compile_scenario(spec)
        batch_exp = compiled.experiment()
        solver = batch_exp.thermal_model.solver
        before = solver.steady_solve_count
        batch = batch_exp.run()
        batch_solves = solver.steady_solve_count - before
        before = solver.steady_solve_count
        engine = _stream(compiled, spec.num_epochs)
        streamed = engine.finalize()
        stream_solves = solver.steady_solve_count - before
        _assert_parity(batch, streamed)
        # One window = one multi-RHS solve: identical budgets.
        assert stream_solves == batch_solves == compiled.expected_steady_solves()

    def test_multi_window_solve_budget(self):
        spec = _spec("stream-budget", scheme="xy-shift")
        compiled = compile_scenario(spec)
        solver = compiled.experiment().thermal_model.solver
        before = solver.steady_solve_count
        engine = _stream(compiled, 4)
        engine.finalize()
        # A feedback-free steady stream costs one multi-RHS solve per window.
        assert (
            solver.steady_solve_count - before
            == compiled.expected_steady_solves(windows=3)
            == 3
        )


class TestTransientParity:
    def test_single_window_is_batch(self):
        spec = _spec("stream-transient", mode="transient", scheme="adaptive")
        compiled = compile_scenario(spec)
        batch_exp = compiled.experiment()
        solver = batch_exp.thermal_model.solver
        before = (solver.steady_solve_count, solver.transient_sequence_count)
        batch = batch_exp.run()
        batch_cost = (
            solver.steady_solve_count - before[0],
            solver.transient_sequence_count - before[1],
        )
        before = (solver.steady_solve_count, solver.transient_sequence_count)
        engine = _stream(compiled, spec.num_epochs)
        _assert_parity(batch, engine.finalize())
        stream_cost = (
            solver.steady_solve_count - before[0],
            solver.transient_sequence_count - before[1],
        )
        assert stream_cost == batch_cost
        assert stream_cost[1] == 1

    @pytest.mark.parametrize("window_epochs", [5, 3])
    def test_multi_window_adaptive_hotspot(self, window_epochs):
        spec = _spec("stream-transient-multi", mode="transient", scheme="adaptive")
        compiled = compile_scenario(spec)
        batch = compiled.experiment().run()
        warm = _batch_warm_power(compiled)
        engine = _stream(compiled, window_epochs, warm_power=warm)
        _assert_parity(batch, engine.finalize())

    def test_multi_window_threshold_grid(self):
        spec = _spec(
            "stream-transient-grid",
            mode="transient",
            scheme="threshold-xy-shift",
            policy_params={"trigger_celsius": 75.0},
        )
        compiled = compile_scenario(spec)
        batch = compiled.experiment(thermal_model=_grid_model(spec)).run()
        warm = _batch_warm_power(compiled, thermal_model=_grid_model(spec))
        engine = _stream(
            compiled, 4, thermal_model=_grid_model(spec), warm_power=warm
        )
        _assert_parity(batch, engine.finalize())

    def test_multi_window_solve_budget(self):
        spec = _spec("stream-transient-budget", mode="transient", scheme="xy-shift")
        compiled = compile_scenario(spec)
        solver = compiled.experiment().thermal_model.solver
        before = (solver.steady_solve_count, solver.transient_sequence_count)
        engine = _stream(compiled, 4)
        engine.finalize()
        # Baseline + settled evaluation are steady solves; each window is one
        # sequenced transient.
        assert (
            solver.steady_solve_count - before[0]
            == compiled.expected_steady_solves(windows=3)
            == 2
        )
        assert solver.transient_sequence_count - before[1] == 3

    def test_transient_default_warm_start_differs(self):
        # Without the batch warm vector a mid-stream engine warm-starts from
        # the first window's average — a *documented* semantic difference,
        # not silent noise.  Pin that it stays a warm-start effect (finite,
        # same migrations) rather than an accidental parity.
        spec = _spec("stream-transient-warm", mode="transient", scheme="xy-shift")
        compiled = compile_scenario(spec)
        batch = compiled.experiment().run()
        engine = _stream(compiled, 4)
        streamed = engine.finalize()
        assert streamed.migrations_performed == batch.migrations_performed
        assert np.isfinite(streamed.settled_peak_celsius)
        assert streamed.settled_peak_celsius != pytest.approx(
            batch.settled_peak_celsius, abs=1e-9
        )
