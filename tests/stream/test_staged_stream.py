"""Streaming staged migrations: plans straddling window boundaries.

A fluid plan armed near the end of a window is still mid-flight when the
checkpoint publishes; the journal must carry the in-flight plan (and the
wall-clock cycle accumulator) so a crashed stream resumes bit-identically
into the remaining stages.
"""

import json

import numpy as np
import pytest

from repro.scenarios.compile import compile_scenario
from repro.scenarios.patterns import BurstPattern, ConstantPattern
from repro.scenarios.spec import ScenarioSpec
from repro.stream import (
    CheckpointStore,
    EpochWindow,
    StreamingExperiment,
    scenario_windows,
)


def _staged_spec(**kwargs):
    # Rotation on the 4x4 mesh decomposes into eight 2-cycles, so a
    # units_per_epoch=1 plan unfolds over eight epochs — long enough to
    # straddle any small window boundary.
    defaults = dict(
        name="staged-stream-test",
        configuration="A",
        scheme="rotation",
        mode="steady",
        num_epochs=24,
        settle_epochs=6,
        migration_style="fluid",
        units_per_epoch=1,
        load=BurstPattern(base=1.0, peak=1.3, start_epoch=4, length=4, every=8),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestMidPlanResume:
    def test_mid_plan_checkpoint_resumes_bit_identically(self, tmp_path):
        """Kill the stream on a window boundary that bisects a fluid plan;
        the resumed stream must finish the plan's remaining stages exactly."""
        spec = _staged_spec()
        compiled = compile_scenario(spec)

        # Reference: uninterrupted streamed run with small windows.
        reference_engine = StreamingExperiment.from_scenario(compiled)
        reference_engine.prepare()
        list(
            reference_engine.process(
                scenario_windows(compiled, 2, 24), max_epochs=24
            )
        )
        reference = reference_engine.finalize()

        # Interrupted run: crash after two 2-epoch windows, four epochs into
        # the first plan's eight stages.
        store = CheckpointStore(tmp_path)
        engine = StreamingExperiment.from_scenario(compiled, checkpoint=store)
        engine.prepare()
        processed = 0
        for _update in engine.process(
            scenario_windows(compiled, 2, 24), max_epochs=24
        ):
            processed += 1
            if processed == 2:
                break
        assert engine.experiment.controller.migration_in_progress

        # The published checkpoint carries the in-flight plan.
        payload = CheckpointStore(tmp_path).load_latest()
        controller_state = payload["experiment"]["controller"]
        assert "plan" in controller_state
        assert controller_state["plan"]["next_stage"] >= 1

        resumed_engine = StreamingExperiment.from_scenario(
            compiled, checkpoint=CheckpointStore(tmp_path)
        )
        resume_epoch = resumed_engine.prepare()
        assert resume_epoch == 4
        assert resumed_engine.experiment.controller.migration_in_progress
        list(
            resumed_engine.process(
                scenario_windows(compiled, 2, 24, start_epoch=resume_epoch),
                max_epochs=24,
            )
        )
        resumed = resumed_engine.finalize()

        assert resumed.settled_peak_celsius == reference.settled_peak_celsius
        assert resumed.settled_mean_celsius == reference.settled_mean_celsius
        assert resumed.migrations_performed == reference.migrations_performed
        assert resumed.throughput_penalty == reference.throughput_penalty
        assert (
            resumed_engine.experiment.controller.current_mapping.to_permutation()
            == reference_engine.experiment.controller.current_mapping.to_permutation()
        )

    def test_staged_stream_matches_batch_run(self):
        """Window boundaries are invisible: the streamed staged run equals
        the whole-horizon batch run of the same compiled scenario."""
        spec = _staged_spec()
        compiled = compile_scenario(spec)
        batch = compiled.experiment().run()

        engine = StreamingExperiment.from_scenario(compiled)
        engine.prepare()
        list(engine.process(scenario_windows(compiled, 5, 24), max_epochs=24))
        streamed = engine.finalize()

        assert streamed.settled_peak_celsius == pytest.approx(
            batch.settled_peak_celsius, abs=1e-9
        )
        assert streamed.migrations_performed == batch.migrations_performed
        assert streamed.throughput_penalty == pytest.approx(
            batch.throughput_penalty, abs=1e-9
        )

    def test_identity_distinguishes_migration_style(self, tmp_path):
        sudden = StreamingExperiment.from_scenario(
            compile_scenario(_staged_spec(migration_style="sudden"))
        )
        fluid = StreamingExperiment.from_scenario(
            compile_scenario(_staged_spec())
        )
        assert "mig:" not in sudden.identity  # sudden journals keep their key
        assert "mig:fluidx1" in fluid.identity

    def test_summary_counts_plans_not_stages(self):
        spec = _staged_spec()
        compiled = compile_scenario(spec)
        engine = StreamingExperiment.from_scenario(compiled)
        engine.prepare()
        updates = list(
            engine.process(scenario_windows(compiled, 6, 24), max_epochs=24)
        )
        summary = updates[-1].summary
        result = engine.finalize()
        assert summary["migrations"] == result.migrations_performed


class TestPeriodScaleWindows:
    def test_jsonl_round_trip(self):
        window = EpochWindow(
            num_epochs=3,
            start_epoch=6,
            load_modulation=[1.0, 1.1, 0.9],
            period_scale=[1.0, 2.0, 0.5],
        )
        restored = EpochWindow.from_json_line(window.to_json_line())
        assert np.array_equal(restored.period_scale, window.period_scale)
        record = json.loads(window.to_json_line())
        assert record["period_scale"] == [1.0, 2.0, 0.5]

    def test_head_trims_period_scale(self):
        window = EpochWindow(num_epochs=3, period_scale=[1.0, 2.0, 3.0])
        assert np.array_equal(window.head(2).period_scale, [1.0, 2.0])

    def test_rejects_non_positive_period_scale(self):
        with pytest.raises(ValueError, match="period_scale"):
            EpochWindow(num_epochs=2, period_scale=[1.0, 0.0])

    def test_scenario_windows_carry_period_schedule(self):
        spec = _staged_spec(
            migration_style="sudden",
            load=ConstantPattern(1.0),
            period=ConstantPattern(2.0),
        )
        compiled = compile_scenario(spec)
        windows = list(scenario_windows(compiled, 6, 12))
        assert all(window.period_scale is not None for window in windows)
        assert np.array_equal(windows[0].period_scale, np.full(6, 2.0))
