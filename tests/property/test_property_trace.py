"""Property-based tests: PowerTrace round-trips arbitrary power maps.

The array-native trace must be a lossless container: dict in, dict out
(modulo zero-fill for missing coordinates), arrays in, arrays out, and the
aggregates must match their dict-loop definitions.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.noc.topology import MeshTopology
from repro.power.trace import PowerTrace, map_to_vector, vector_to_map

_MESH = MeshTopology(4, 4)
_COORDS = list(_MESH.coordinates())

power_values = st.floats(
    min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
power_rows = st.lists(power_values, min_size=16, max_size=16)
durations = st.floats(
    min_value=1e-6, max_value=10.0, allow_nan=False, allow_infinity=False
)


def _to_map(values):
    return {coord: values[_MESH.node_id(coord)] for coord in _COORDS}


class TestVectorMapRoundTrip:
    @given(values=power_rows)
    @settings(max_examples=50, deadline=None)
    def test_map_vector_map(self, values):
        mapping = _to_map(values)
        assert vector_to_map(_MESH, map_to_vector(_MESH, mapping)) == mapping

    @given(values=power_rows)
    @settings(max_examples=50, deadline=None)
    def test_vector_map_vector(self, values):
        vector = np.array(values)
        assert np.array_equal(
            map_to_vector(_MESH, vector_to_map(_MESH, vector)), vector
        )


class TestTraceRoundTrip:
    @given(rows=st.lists(st.tuples(durations, power_rows), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_dict_in_dict_out(self, rows):
        trace = PowerTrace(_MESH)
        for duration, values in rows:
            trace.add_interval(duration, _to_map(values))
        assert len(trace) == len(rows)
        for index, (duration, values) in enumerate(rows):
            assert trace.power_map(index) == _to_map(values)
            assert float(trace.durations[index]) == duration
            sample = trace.sample(index)
            assert sample.duration_s == duration
            assert sample.power_w == _to_map(values)

    @given(rows=st.lists(st.tuples(durations, power_rows), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_arrays_in_arrays_out(self, rows):
        dur = np.array([duration for duration, _values in rows])
        powers = np.array([values for _duration, values in rows])
        trace = PowerTrace.from_arrays(_MESH, dur, powers)
        out_durations, out_powers = trace.as_matrix()
        assert np.array_equal(out_durations, dur)
        assert np.array_equal(out_powers, powers)

    @given(rows=st.lists(st.tuples(durations, power_rows), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_incremental_equals_bulk(self, rows):
        incremental = PowerTrace(_MESH)
        for duration, values in rows:
            incremental.add_interval(duration, np.array(values))
        bulk = PowerTrace.from_arrays(
            _MESH,
            np.array([duration for duration, _values in rows]),
            np.array([values for _duration, values in rows]),
        )
        assert np.array_equal(incremental.powers, bulk.powers)
        assert np.array_equal(incremental.durations, bulk.durations)


class TestExtendBuilder:
    """The streaming builder: chunked extends == one at-once construction."""

    @given(
        rows=st.lists(st.tuples(durations, power_rows), min_size=1, max_size=24),
        chunk=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_extend_equals_at_once(self, rows, chunk):
        dur = np.array([duration for duration, _values in rows])
        powers = np.array([values for _duration, values in rows])
        at_once = PowerTrace.from_arrays(_MESH, dur, powers)
        incremental = PowerTrace(_MESH)
        for start in range(0, len(rows), chunk):
            incremental.extend(
                dur[start : start + chunk], powers[start : start + chunk]
            )
        assert np.array_equal(incremental.durations, at_once.durations)
        assert np.array_equal(incremental.powers, at_once.powers)
        assert incremental.total_energy_j == at_once.total_energy_j
        assert np.array_equal(
            incremental.average_vector(), at_once.average_vector()
        )

    @given(rows=st.lists(st.tuples(durations, power_rows), min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_extend_interleaves_with_append(self, rows):
        mixed = PowerTrace(_MESH)
        reference = PowerTrace(_MESH)
        for index, (duration, values) in enumerate(rows):
            reference.add_interval(duration, np.array(values))
            if index % 2:
                mixed.extend(np.array([duration]), np.array([values]))
            else:
                mixed.add_interval(duration, np.array(values))
        assert np.array_equal(mixed.durations, reference.durations)
        assert np.array_equal(mixed.powers, reference.powers)

    def test_growth_is_amortised_logarithmic(self):
        # Appending n rows one at a time must reallocate O(log n) times —
        # the guard that keeps unbounded streams from quadratic recopying.
        import math

        trace = PowerTrace(_MESH)
        n = 4096
        for _ in range(n):
            trace.add_interval(1.0, np.zeros(16))
        assert len(trace) == n
        assert trace.growth_count <= math.ceil(math.log2(n)) + 1

    def test_empty_extend_is_a_no_op(self):
        trace = PowerTrace(_MESH)
        trace.extend(np.zeros(0), np.zeros((0, 16)))
        assert len(trace) == 0
        assert trace.growth_count == 0


class TestTraceAggregates:
    @given(rows=st.lists(st.tuples(durations, power_rows), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_aggregates_match_dict_loop(self, rows):
        trace = PowerTrace(_MESH)
        for duration, values in rows:
            trace.add_interval(duration, _to_map(values))

        total_duration = sum(duration for duration, _values in rows)
        total_energy = sum(
            duration * sum(values) for duration, values in rows
        )
        assert trace.total_duration_s == pytest_approx(total_duration)
        assert trace.total_energy_j == pytest_approx(total_energy)

        expected_average = {coord: 0.0 for coord in _COORDS}
        for duration, values in rows:
            mapping = _to_map(values)
            for coord, watts in mapping.items():
                expected_average[coord] += watts * duration / total_duration
        averages = trace.average_power_per_unit()
        for coord in _COORDS:
            assert averages[coord] == pytest_approx(expected_average[coord])

        assert trace.peak_unit_power() == pytest_approx(
            max(max(values) for _duration, values in rows)
        )

    @given(rows=st.lists(power_rows, min_size=1, max_size=8), tail=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_mean_tail_matches_dict_loop(self, rows, tail):
        tail = min(tail, len(rows))
        trace = PowerTrace.from_arrays(
            _MESH, np.ones(len(rows)), np.array(rows)
        )
        expected = {coord: 0.0 for coord in _COORDS}
        for values in rows[-tail:]:
            for coord, watts in _to_map(values).items():
                expected[coord] += watts / tail
        settled = vector_to_map(_MESH, trace.mean_tail_vector(tail))
        for coord in _COORDS:
            assert settled[coord] == pytest_approx(expected[coord])


def pytest_approx(value, rel=1e-9, abs_tol=1e-12):
    import pytest

    return pytest.approx(value, rel=rel, abs=abs_tol)
