"""Property-based tests for the NoC substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.noc.routing import available_algorithms, make_routing
from repro.noc.topology import MeshTopology

dims = st.tuples(st.integers(2, 6), st.integers(2, 6))


def coords_for(width, height):
    return st.tuples(st.integers(0, width - 1), st.integers(0, height - 1))


class TestRoutingProperties:
    @given(
        dims=dims,
        algorithm=st.sampled_from(available_algorithms()),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_routes_are_minimal_and_terminate(self, dims, algorithm, data):
        width, height = dims
        topology = MeshTopology(width, height)
        routing = make_routing(algorithm, topology)
        src = data.draw(coords_for(width, height))
        dst = data.draw(coords_for(width, height))
        path = routing.path(src, dst)
        assert path[0] == src
        assert path[-1] == dst
        assert len(path) - 1 == topology.manhattan_distance(src, dst)
        for a, b in zip(path, path[1:]):
            assert topology.manhattan_distance(a, b) == 1


class TestDeliveryProperties:
    @given(
        dims=dims,
        data=st.data(),
        num_packets=st.integers(1, 20),
        size=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_injected_packet_is_delivered_exactly_once(
        self, dims, data, num_packets, size
    ):
        width, height = dims
        topology = MeshTopology(width, height)
        network = Network(topology, buffer_depth=4)
        packets = []
        for _ in range(num_packets):
            src = data.draw(coords_for(width, height))
            dst = data.draw(coords_for(width, height))
            packet = Packet(source=src, destination=dst, size_flits=size)
            packets.append(packet)
            network.inject(packet)
        network.drain(max_cycles=200_000)
        assert network.stats.packets_ejected == num_packets
        assert network.stats.flits_ejected == num_packets * size
        assert len(network.ejected_packets) == num_packets
        assert {p.packet_id for p in network.ejected_packets} == {
            p.packet_id for p in packets
        }

    @given(dims=dims, data=st.data(), size=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_latency_at_least_hop_count_plus_serialization(self, dims, data, size):
        width, height = dims
        topology = MeshTopology(width, height)
        network = Network(topology, buffer_depth=4)
        src = data.draw(coords_for(width, height))
        dst = data.draw(coords_for(width, height))
        packet = Packet(source=src, destination=dst, size_flits=size)
        network.inject(packet)
        network.drain(max_cycles=100_000)
        hops = topology.manhattan_distance(src, dst)
        assert packet.latency >= hops + size - 1
