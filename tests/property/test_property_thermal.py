"""Property-based tests for the thermal model (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.noc.topology import MeshTopology
from repro.thermal.floorplan import mesh_floorplan
from repro.thermal.hotspot import HotSpotModel
from repro.thermal.rc_model import build_thermal_network
from repro.thermal.solver import ThermalSolver

# Shared 4x4 model: building the RC network is the expensive part, the solves
# are cheap, so hypothesis examples reuse one instance.
_MESH = MeshTopology(4, 4)
_MODEL = HotSpotModel(_MESH)

power_values = st.floats(min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False)
power_maps = st.lists(power_values, min_size=16, max_size=16)


def _to_map(values):
    return {coord: values[_MESH.node_id(coord)] for coord in _MESH.coordinates()}


class TestSteadyStateProperties:
    @given(values=power_maps)
    @settings(max_examples=40, deadline=None)
    def test_temperatures_never_below_ambient(self, values):
        temps = _MODEL.steady_state_by_coord(_to_map(values))
        assert all(t >= 40.0 - 1e-6 for t in temps.values())

    @given(values=power_maps, scale=st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_linearity_of_temperature_rise(self, values, scale):
        base = _to_map(values)
        scaled = {coord: watts * scale for coord, watts in base.items()}
        base_peak_rise = _MODEL.peak_temperature(base) - 40.0
        scaled_peak_rise = _MODEL.peak_temperature(scaled) - 40.0
        assert np.isclose(scaled_peak_rise, scale * base_peak_rise, rtol=1e-6, atol=1e-9)

    @given(values=power_maps, extra=st.floats(0.1, 5.0), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_monotonicity_adding_power_never_cools(self, values, extra, data):
        base = _to_map(values)
        target = data.draw(st.sampled_from(list(_MESH.coordinates())))
        hotter = dict(base)
        hotter[target] = hotter[target] + extra
        base_temps = _MODEL.steady_state_by_coord(base)
        hot_temps = _MODEL.steady_state_by_coord(hotter)
        # Every unit's temperature is a non-decreasing function of any unit's power.
        for coord in _MESH.coordinates():
            assert hot_temps[coord] >= base_temps[coord] - 1e-9

    @given(values=power_maps)
    @settings(max_examples=30, deadline=None)
    def test_peak_is_max_of_map(self, values):
        power = _to_map(values)
        temps = _MODEL.steady_state_by_coord(power)
        assert _MODEL.peak_temperature(power) == max(temps.values())


class TestEnergyConservation:
    @given(values=power_maps)
    @settings(max_examples=20, deadline=None)
    def test_heat_flow_to_ambient_matches_input_power(self, values):
        """In steady state, all dissipated power leaves through the sink's
        convection resistance: (T_sink - T_amb) / R_conv == total power."""
        power = _to_map(values)
        total_power = sum(power.values())
        network = _MODEL.network
        solver = ThermalSolver(network)
        block_power = {f"PE_{x}_{y}": w for (x, y), w in power.items()}
        temps = solver.steady_state(block_power)
        sink_index = network.num_nodes - 1
        sink_kelvin = temps.node_kelvin[sink_index]
        conduction = network.ambient_conductance[sink_index] * (
            sink_kelvin - network.ambient_kelvin
        )
        assert np.isclose(conduction, total_power, rtol=1e-6, atol=1e-9)


class TestPermutationInvariance:
    @given(values=power_maps, seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_total_rise_bounded_by_uniform_equivalents(self, values, seed):
        """Rearranging the same power values over the die changes the peak but
        never the total dissipated power, so the sink temperature is identical
        and the mean die temperature moves only a little."""
        rng = np.random.default_rng(seed)
        base = _to_map(values)
        permuted_values = rng.permutation(values)
        permuted = _to_map(list(permuted_values))
        base_temps = _MODEL.steady_state_by_coord(base)
        perm_temps = _MODEL.steady_state_by_coord(permuted)
        assert np.isclose(
            np.mean(list(base_temps.values())),
            np.mean(list(perm_temps.values())),
            atol=1.5,
        )
