"""Property-based tests for the migration transforms (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.migration.transforms import available_transforms, make_transform
from repro.noc.topology import MeshTopology
from repro.placement.mapping import Mapping

mesh_sizes = st.tuples(st.integers(2, 7), st.integers(2, 7))
square_sizes = st.integers(2, 7)
scheme_names = st.sampled_from([n for n in available_transforms() if n != "identity"])
square_only = {"rotation"}


def _make(scheme, width, height):
    topology = MeshTopology(width, height)
    if scheme in square_only and width != height:
        return None, topology
    return make_transform(scheme, topology), topology


class TestBijectionProperties:
    @given(scheme=scheme_names, size=square_sizes)
    @settings(max_examples=60, deadline=None)
    def test_transform_is_bijection_on_square_meshes(self, scheme, size):
        transform, topology = _make(scheme, size, size)
        images = {transform(coord) for coord in topology.coordinates()}
        assert len(images) == topology.num_nodes
        assert all(topology.contains(image) for image in images)

    @given(scheme=scheme_names, dims=mesh_sizes)
    @settings(max_examples=60, deadline=None)
    def test_transform_is_bijection_on_rectangular_meshes(self, scheme, dims):
        width, height = dims
        transform, topology = _make(scheme, width, height)
        if transform is None:
            return
        images = {transform(coord) for coord in topology.coordinates()}
        assert len(images) == topology.num_nodes

    @given(scheme=scheme_names, size=square_sizes)
    @settings(max_examples=40, deadline=None)
    def test_orbit_length_divides_order(self, scheme, size):
        transform, topology = _make(scheme, size, size)
        order = transform.order()
        for coord in topology.coordinates():
            assert order % len(transform.orbit(coord)) == 0

    @given(scheme=scheme_names, size=square_sizes)
    @settings(max_examples=40, deadline=None)
    def test_applying_order_times_returns_identity(self, scheme, size):
        transform, topology = _make(scheme, size, size)
        order = transform.order()
        for coord in topology.coordinates():
            current = coord
            for _ in range(order):
                current = transform(current)
            assert current == coord


class TestMirrorAndRotationIsometry:
    @given(size=square_sizes, scheme=st.sampled_from(["rotation", "x-mirror", "y-mirror", "xy-mirror"]))
    @settings(max_examples=40, deadline=None)
    def test_isometries_preserve_pairwise_distances(self, size, scheme):
        transform, topology = _make(scheme, size, size)
        coords = list(topology.coordinates())
        for a in coords[:: max(1, len(coords) // 6)]:
            for b in coords[:: max(1, len(coords) // 6)]:
                assert topology.manhattan_distance(a, b) == topology.manhattan_distance(
                    transform(a), transform(b)
                )


class TestMappingProperties:
    @given(scheme=scheme_names, size=square_sizes, repeats=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_repeated_transforms_keep_mapping_bijective(self, scheme, size, repeats):
        topology = MeshTopology(size, size)
        if scheme in square_only and not topology.is_square:
            return
        transform = make_transform(scheme, topology)
        mapping = Mapping.identity(topology)
        for _ in range(repeats):
            mapping = mapping.apply_transform(transform)
        permutation = mapping.to_permutation()
        assert sorted(permutation) == list(range(topology.num_nodes))

    @given(scheme=scheme_names, size=square_sizes)
    @settings(max_examples=30, deadline=None)
    def test_power_is_conserved_under_migration(self, scheme, size):
        """Migration moves power around; it never creates or destroys it."""
        topology = MeshTopology(size, size)
        if scheme in square_only and not topology.is_square:
            return
        transform = make_transform(scheme, topology)
        mapping = Mapping.identity(topology)
        per_task = {task: float(task % 5) + 0.5 for task in range(topology.num_nodes)}
        before = sum(mapping.as_power_map(per_task).values())
        migrated = mapping.apply_transform(transform)
        after = sum(migrated.as_power_map(per_task).values())
        assert abs(before - after) < 1e-9
