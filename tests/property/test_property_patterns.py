"""Property-based tests for scenario pattern composition and serialization.

The algebra the scenario compiler relies on: composition is pointwise (sum
and product of the component series), combinators flatten associatively, and
every pattern survives a JSON round-trip bit-for-bit.
"""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.noc.topology import MeshTopology
from repro.scenarios.patterns import (
    BurstPattern,
    ConstantPattern,
    DiurnalPattern,
    DutyCyclePattern,
    FaultPattern,
    HotspotPattern,
    RampPattern,
    StepPattern,
    pattern_from_dict,
)

_MESH = MeshTopology(4, 4)
_COORDS = list(_MESH.coordinates())

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.1, max_value=10.0, allow_nan=False, allow_infinity=False)
epochs = st.integers(min_value=1, max_value=40)
epoch_index = st.integers(min_value=0, max_value=32)
coords = st.sampled_from(_COORDS)

temporal_patterns = st.one_of(
    st.builds(ConstantPattern, value=finite),
    st.builds(StepPattern, before=finite, after=finite, step_epoch=epoch_index),
    st.builds(
        RampPattern,
        start=finite,
        end=finite,
        start_epoch=st.integers(min_value=0, max_value=10),
        end_epoch=st.integers(min_value=11, max_value=40),
    ),
    st.builds(
        BurstPattern,
        base=finite,
        peak=finite,
        start_epoch=epoch_index,
        length=st.integers(min_value=1, max_value=6),
        every=st.one_of(st.none(), st.integers(min_value=6, max_value=12)),
    ),
    st.builds(
        DiurnalPattern,
        mean=finite,
        amplitude=finite,
        period_epochs=positive,
        phase_epochs=finite,
    ),
    st.builds(
        DutyCyclePattern,
        on_value=finite,
        off_value=finite,
        on_epochs=st.integers(min_value=1, max_value=6),
        off_epochs=st.integers(min_value=1, max_value=6),
        start_epoch=epoch_index,
    ),
)

spatial_patterns = st.one_of(
    st.builds(
        HotspotPattern,
        center=coords,
        peak=finite,
        sigma=positive,
        background=finite,
    ),
    st.builds(
        FaultPattern,
        units=st.lists(coords, min_size=1, max_size=4, unique=True).map(tuple),
        level=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        start_epoch=epoch_index,
    ),
)

any_pattern = st.one_of(temporal_patterns, spatial_patterns)


class TestCompositionAlgebra:
    @given(a=temporal_patterns, b=temporal_patterns, num_epochs=epochs)
    @settings(max_examples=60, deadline=None)
    def test_sum_is_pointwise(self, a, b, num_epochs):
        combined = (a + b).evaluate(num_epochs)
        expected = a.evaluate(num_epochs) + b.evaluate(num_epochs)
        assert np.allclose(combined, expected, atol=0, rtol=0)

    @given(a=temporal_patterns, b=temporal_patterns, num_epochs=epochs)
    @settings(max_examples=60, deadline=None)
    def test_product_is_pointwise(self, a, b, num_epochs):
        combined = (a * b).evaluate(num_epochs)
        expected = a.evaluate(num_epochs) * b.evaluate(num_epochs)
        assert np.allclose(combined, expected, atol=0, rtol=0)

    @given(a=temporal_patterns, b=spatial_patterns, num_epochs=epochs)
    @settings(max_examples=40, deadline=None)
    def test_temporal_broadcasts_over_spatial(self, a, b, num_epochs):
        combined = (a * b).evaluate(num_epochs, _MESH)
        expected = a.evaluate(num_epochs)[:, np.newaxis] * b.evaluate(num_epochs, _MESH)
        assert combined.shape == (num_epochs, _MESH.num_nodes)
        assert np.allclose(combined, expected, atol=0, rtol=0)

    @given(a=any_pattern, b=any_pattern, c=any_pattern, num_epochs=epochs)
    @settings(max_examples=40, deadline=None)
    def test_flattened_operators_associate(self, a, b, c, num_epochs):
        left = ((a + b) + c).evaluate(num_epochs, _MESH)
        right = (a + (b + c)).evaluate(num_epochs, _MESH)
        assert np.allclose(left, right, atol=1e-12)

    @given(pattern=any_pattern, num_epochs=epochs)
    @settings(max_examples=60, deadline=None)
    def test_evaluate_shape_and_finiteness(self, pattern, num_epochs):
        values = pattern.evaluate(num_epochs, _MESH)
        if pattern.is_spatial:
            assert values.shape == (num_epochs, _MESH.num_nodes)
        else:
            assert values.shape == (num_epochs,)
        assert np.all(np.isfinite(values))


class TestWindowCursor:
    """The streaming contract: a window equals the slice of the full series."""

    @given(
        pattern=any_pattern,
        start=st.integers(min_value=0, max_value=30),
        length=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_equals_evaluate_slice(self, pattern, start, length):
        end = start + length
        full = pattern.evaluate(end, _MESH)
        window = pattern.evaluate_window(start, end, _MESH)
        assert np.array_equal(window, full[start:end])

    @given(
        a=any_pattern,
        b=any_pattern,
        start=st.integers(min_value=0, max_value=20),
        length=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_commutes_with_composition(self, a, b, start, length):
        end = start + length
        combined = (a + b).evaluate_window(start, end, _MESH)
        left = a.evaluate_window(start, end, _MESH)
        right = b.evaluate_window(start, end, _MESH)
        # Temporal series broadcast over spatial maps, as in composition.
        if left.ndim != right.ndim:
            if left.ndim == 1:
                left = left[:, np.newaxis]
            else:
                right = right[:, np.newaxis]
        assert np.allclose(combined, left + right, atol=0, rtol=0)

    @given(pattern=any_pattern)
    @settings(max_examples=20, deadline=None)
    def test_window_validates_bounds(self, pattern):
        import pytest

        with pytest.raises(ValueError):
            pattern.evaluate_window(-1, 4, _MESH)
        with pytest.raises(ValueError):
            pattern.evaluate_window(4, 4, _MESH)


class TestSerializationProperties:
    @given(pattern=any_pattern)
    @settings(max_examples=80, deadline=None)
    def test_json_round_trip_is_identity(self, pattern):
        payload = json.loads(json.dumps(pattern.to_dict()))
        rebuilt = pattern_from_dict(payload)
        assert rebuilt == pattern

    @given(a=any_pattern, b=any_pattern)
    @settings(max_examples=40, deadline=None)
    def test_composed_round_trip_preserves_series(self, a, b):
        pattern = a * b + ConstantPattern(0.5)
        payload = json.loads(json.dumps(pattern.to_dict()))
        rebuilt = pattern_from_dict(payload)
        original = pattern.evaluate(11, _MESH)
        assert np.array_equal(rebuilt.evaluate(11, _MESH), original)
