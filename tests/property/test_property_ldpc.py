"""Property-based tests for the LDPC code machinery (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ldpc.encoder import LdpcEncoder
from repro.ldpc.matrix import array_code_parity_matrix, gf2_rank
from repro.ldpc.partition import striped_partition, weighted_partition
from repro.ldpc.tanner import TannerGraph

primes = st.sampled_from([5, 7, 11, 13])


class TestCodeProperties:
    @given(p=primes, j=st.integers(2, 3), k=st.integers(3, 5))
    @settings(max_examples=20, deadline=None)
    def test_array_code_weights(self, p, j, k):
        if j > p or k > p:
            return
        H = array_code_parity_matrix(p=p, j=j, k=k)
        assert H.shape == (j * p, k * p)
        assert np.all(H.sum(axis=0) == j)
        assert np.all(H.sum(axis=1) == k)

    @given(p=primes)
    @settings(max_examples=10, deadline=None)
    def test_rank_bounds(self, p):
        H = array_code_parity_matrix(p=p, j=3, k=5)
        rank = gf2_rank(H)
        assert 0 < rank <= min(H.shape)

    @given(p=primes, seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_every_encoded_word_is_a_codeword(self, p, seed):
        H = array_code_parity_matrix(p=p, j=3, k=5)
        encoder = LdpcEncoder(H)
        rng = np.random.default_rng(seed)
        info = rng.integers(0, 2, size=encoder.k, dtype=np.uint8)
        codeword = encoder.encode(info)
        assert not np.any((H @ codeword) % 2)

    @given(p=primes, seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_codewords_closed_under_addition(self, p, seed):
        H = array_code_parity_matrix(p=p, j=2, k=4)
        encoder = LdpcEncoder(H)
        rng = np.random.default_rng(seed)
        a = encoder.encode(rng.integers(0, 2, size=encoder.k, dtype=np.uint8))
        b = encoder.encode(rng.integers(0, 2, size=encoder.k, dtype=np.uint8))
        assert encoder.is_codeword(a ^ b)


class TestPartitionProperties:
    @given(p=primes, num_tasks=st.sampled_from([4, 9, 16, 25]))
    @settings(max_examples=20, deadline=None)
    def test_striped_partition_invariants(self, p, num_tasks):
        graph = TannerGraph(array_code_parity_matrix(p=p, j=3, k=5))
        partition = striped_partition(graph, num_tasks)
        # Conservation: every node assigned exactly once.
        assert sum(partition.task_sizes()) == graph.num_nodes
        # Traffic matrix symmetry and zero diagonal.
        matrix = partition.traffic_matrix()
        assert np.array_equal(matrix, matrix.T)
        assert np.all(np.diag(matrix) == 0)
        # Cut + internal edges account for every Tanner edge.
        assert partition.cut_edges() + partition.internal_edges() == graph.num_edges

    @given(
        p=primes,
        seed=st.integers(0, 100),
        hot_share=st.floats(1.5, 6.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_weighted_partition_total_conserved(self, p, seed, hot_share):
        graph = TannerGraph(array_code_parity_matrix(p=p, j=3, k=5))
        num_tasks = 9
        shares = [hot_share] + [1.0] * (num_tasks - 1)
        partition = weighted_partition(graph, num_tasks, task_shares=shares, seed=seed)
        sizes = partition.task_sizes()
        assert sum(sizes) == graph.num_nodes
        assert all(size > 0 for size in sizes)
