"""Tests for the scenario pattern catalog: shapes, values, composition."""

import numpy as np
import pytest

from repro.noc import MeshTopology
from repro.scenarios.patterns import (
    BurstPattern,
    ConstantPattern,
    DiurnalPattern,
    DutyCyclePattern,
    FaultPattern,
    HotspotPattern,
    ProductPattern,
    RampPattern,
    StepPattern,
    SumPattern,
    pattern_from_dict,
)

MESH = MeshTopology(4, 4)


class TestTemporalPatterns:
    def test_constant(self):
        values = ConstantPattern(1.5).evaluate(6)
        assert values.shape == (6,)
        assert np.all(values == 1.5)

    def test_step(self):
        values = StepPattern(before=1.0, after=2.0, step_epoch=3).evaluate(6)
        assert values.tolist() == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_ramp_holds_outside_window(self):
        values = RampPattern(start=0.0, end=1.0, start_epoch=2, end_epoch=4).evaluate(7)
        assert values.tolist() == [0.0, 0.0, 0.0, 0.5, 1.0, 1.0, 1.0]

    def test_ramp_defaults_to_whole_horizon(self):
        values = RampPattern(start=1.0, end=3.0).evaluate(5)
        assert values.tolist() == [1.0, 1.5, 2.0, 2.5, 3.0]

    def test_ramp_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            RampPattern(start=0.0, end=1.0, start_epoch=5, end_epoch=5)

    def test_ramp_start_beyond_horizon_holds_start_value(self):
        """A defaulted window starting past the horizon never ramps."""
        values = RampPattern(start=0.5, end=2.0, start_epoch=10).evaluate(5)
        assert values.tolist() == [0.5] * 5

    def test_ramp_start_at_final_epoch_degenerates_to_step(self):
        values = RampPattern(start=0.0, end=1.0, start_epoch=4).evaluate(6)
        assert np.all(np.isfinite(values))
        assert values.tolist() == [0.0, 0.0, 0.0, 0.0, 0.0, 1.0]

    def test_single_burst(self):
        values = BurstPattern(base=1.0, peak=2.0, start_epoch=2, length=2).evaluate(6)
        assert values.tolist() == [1.0, 1.0, 2.0, 2.0, 1.0, 1.0]

    def test_recurring_burst(self):
        values = BurstPattern(
            base=0.0, peak=1.0, start_epoch=1, length=1, every=3
        ).evaluate(7)
        assert values.tolist() == [0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0]

    def test_burst_recurrence_shorter_than_length_rejected(self):
        with pytest.raises(ValueError):
            BurstPattern(base=1.0, peak=2.0, start_epoch=0, length=4, every=2)

    def test_diurnal_period_and_mean(self):
        pattern = DiurnalPattern(mean=1.0, amplitude=0.5, period_epochs=8.0)
        values = pattern.evaluate(16)
        assert values[0] == pytest.approx(1.0)
        assert values[2] == pytest.approx(1.5)
        assert values[6] == pytest.approx(0.5)
        assert values[8] == pytest.approx(values[0])
        assert float(values.mean()) == pytest.approx(1.0)

    def test_duty_cycle(self):
        values = DutyCyclePattern(
            on_value=1.0, off_value=0.2, on_epochs=2, off_epochs=1
        ).evaluate(7)
        assert values.tolist() == [1.0, 1.0, 0.2, 1.0, 1.0, 0.2, 1.0]

    def test_duty_cycle_holds_on_before_start(self):
        values = DutyCyclePattern(
            on_value=1.0, off_value=0.2, on_epochs=1, off_epochs=1, start_epoch=3
        ).evaluate(7)
        assert values.tolist() == [1.0, 1.0, 1.0, 1.0, 0.2, 1.0, 0.2]


class TestSpatialPatterns:
    def test_hotspot_shape_and_peak(self):
        pattern = HotspotPattern(center=(1, 2), peak=2.0, sigma=0.8)
        matrix = pattern.evaluate(5, MESH)
        assert matrix.shape == (5, MESH.num_nodes)
        assert matrix[0, MESH.node_id((1, 2))] == pytest.approx(2.0)
        # Far corner stays near the background.
        assert matrix[0, MESH.node_id((3, 0))] == pytest.approx(1.0, abs=1e-2)
        # Constant over epochs.
        assert np.array_equal(matrix[0], matrix[-1])

    def test_hotspot_requires_topology(self):
        with pytest.raises(ValueError, match="spatial"):
            HotspotPattern(center=(1, 1), peak=2.0).evaluate(5)

    def test_hotspot_outside_mesh_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            HotspotPattern(center=(9, 9), peak=2.0).evaluate(5, MESH)

    def test_fault_window(self):
        pattern = FaultPattern(units=((0, 0),), level=0.25, start_epoch=2, end_epoch=4)
        matrix = pattern.evaluate(6, MESH)
        column = matrix[:, MESH.node_id((0, 0))]
        assert column.tolist() == [1.0, 1.0, 0.25, 0.25, 1.0, 1.0]
        # Other units untouched.
        untouched = np.delete(matrix, MESH.node_id((0, 0)), axis=1)
        assert np.all(untouched == 1.0)

    def test_fault_persists_without_end(self):
        matrix = FaultPattern(units=((1, 1),), start_epoch=3).evaluate(6, MESH)
        assert matrix[5, MESH.node_id((1, 1))] == 0.0

    def test_fault_needs_units(self):
        with pytest.raises(ValueError):
            FaultPattern(units=())


class TestComposition:
    def test_sum_of_temporals(self):
        pattern = ConstantPattern(1.0) + DiurnalPattern(
            mean=0.0, amplitude=0.5, period_epochs=8.0
        )
        assert isinstance(pattern, SumPattern)
        values = pattern.evaluate(8)
        assert values.shape == (8,)
        assert values[2] == pytest.approx(1.5)

    def test_product_broadcasts_temporal_over_spatial(self):
        pattern = ConstantPattern(2.0) * HotspotPattern(center=(0, 0), peak=1.5)
        matrix = pattern.evaluate(4, MESH)
        assert matrix.shape == (4, MESH.num_nodes)
        assert matrix[0, MESH.node_id((0, 0))] == pytest.approx(3.0)

    def test_operators_flatten(self):
        pattern = ConstantPattern(1.0) + ConstantPattern(2.0) + ConstantPattern(3.0)
        assert len(pattern.terms) == 3
        assert np.all(pattern.evaluate(3) == 6.0)

    def test_is_spatial_propagates(self):
        spatial = ConstantPattern(1.0) * FaultPattern(units=((0, 0),))
        temporal = ConstantPattern(1.0) * ConstantPattern(2.0)
        assert spatial.is_spatial
        assert not temporal.is_spatial

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            SumPattern(terms=())
        with pytest.raises(ValueError):
            ProductPattern(factors=())


class TestSerialization:
    CATALOG = [
        ConstantPattern(1.25),
        StepPattern(before=1.0, after=0.5, step_epoch=7),
        RampPattern(start=0.5, end=1.5, start_epoch=2, end_epoch=9),
        BurstPattern(base=1.0, peak=1.8, start_epoch=3, length=2, every=6),
        DiurnalPattern(mean=1.0, amplitude=0.4, period_epochs=12.0, phase_epochs=3.0),
        DutyCyclePattern(on_value=1.0, off_value=0.3, on_epochs=4, off_epochs=2),
        HotspotPattern(center=(2, 1), peak=1.9, sigma=1.2, background=0.9),
        FaultPattern(units=((0, 1), (3, 3)), level=0.1, start_epoch=5, end_epoch=9),
        ConstantPattern(2.0) + DiurnalPattern(mean=0.0, amplitude=0.2, period_epochs=6.0),
        ConstantPattern(1.1) * HotspotPattern(center=(1, 1), peak=1.4),
    ]

    @pytest.mark.parametrize("pattern", CATALOG, ids=lambda p: p.kind)
    def test_round_trip(self, pattern):
        rebuilt = pattern_from_dict(pattern.to_dict())
        assert rebuilt == pattern
        expected = pattern.evaluate(9, MESH)
        assert np.array_equal(rebuilt.evaluate(9, MESH), expected)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern kind"):
            pattern_from_dict({"kind": "frobnicate"})

    def test_payload_must_carry_kind(self):
        with pytest.raises(ValueError, match="kind"):
            pattern_from_dict({"value": 1.0})
