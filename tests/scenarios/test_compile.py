"""Scenario compilation and execution: parity, modulation and schedules.

The anchor test pins a constant-pattern scenario to the plain
:class:`ThermalExperiment` result on configurations A, C and E to <1e-9 —
the scenario layer must be a strict generalisation of the paper's
experiments, not a parallel implementation.
"""

import dataclasses
import threading

import numpy as np
import pytest

from repro.chips import get_configuration
from repro.core.experiment import ExperimentSettings, ThermalExperiment
from repro.core.policy import PeriodicMigrationPolicy, make_policy
from repro.power.trace import PowerTrace
from repro.scenarios.compile import compile_scenario, decoder_effort, run_scenario
from repro.scenarios.patterns import (
    ConstantPattern,
    FaultPattern,
    HotspotPattern,
    RampPattern,
    StepPattern,
)
from repro.scenarios.registry import all_scenarios, get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.thermal.hotspot import HotSpotModel

PARITY_CONFIGURATIONS = ("A", "C", "E")


def _constant_spec(configuration: str, mode: str = "steady") -> ScenarioSpec:
    return ScenarioSpec(
        name=f"parity-{configuration}-{mode}",
        configuration=configuration,
        scheme="xy-shift",
        mode=mode,
        num_epochs=13,
        settle_epochs=12,
        transient_steps_per_epoch=4,
        load=ConstantPattern(1.0),
    )


class TestConstantPatternParity:
    @pytest.mark.parametrize("config_name", PARITY_CONFIGURATIONS)
    def test_steady_matches_plain_experiment(self, config_name):
        spec = _constant_spec(config_name)
        scenario = run_scenario(spec).experiment

        chip = get_configuration(config_name)
        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        settings = ExperimentSettings(num_epochs=13, mode="steady", settle_epochs=12)
        plain = ThermalExperiment(chip, policy, settings=settings).run()

        assert scenario.settled_peak_celsius == pytest.approx(
            plain.settled_peak_celsius, abs=1e-9
        )
        assert scenario.settled_mean_celsius == pytest.approx(
            plain.settled_mean_celsius, abs=1e-9
        )
        assert scenario.baseline_peak_celsius == pytest.approx(
            plain.baseline_peak_celsius, abs=1e-9
        )
        for ours, theirs in zip(scenario.epochs, plain.epochs):
            assert ours.thermal.peak_celsius == pytest.approx(
                theirs.thermal.peak_celsius, abs=1e-9
            )
            assert ours.thermal.mean_celsius == pytest.approx(
                theirs.thermal.mean_celsius, abs=1e-9
            )

    @pytest.mark.parametrize("config_name", PARITY_CONFIGURATIONS)
    def test_transient_matches_plain_experiment(self, config_name):
        spec = _constant_spec(config_name, mode="transient")
        scenario = run_scenario(spec).experiment

        chip = get_configuration(config_name)
        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        settings = ExperimentSettings(
            num_epochs=13, mode="transient", settle_epochs=12,
            transient_steps_per_epoch=4,
        )
        plain = ThermalExperiment(chip, policy, settings=settings).run()

        assert scenario.settled_peak_celsius == pytest.approx(
            plain.settled_peak_celsius, abs=1e-9
        )
        for ours, theirs in zip(scenario.epochs, plain.epochs):
            assert ours.thermal.peak_celsius == pytest.approx(
                theirs.thermal.peak_celsius, abs=1e-9
            )


class TestCompilation:
    def test_temporal_load_broadcasts_to_units(self):
        spec = ScenarioSpec(
            name="x", configuration="A", num_epochs=6,
            load=StepPattern(before=1.0, after=0.5, step_epoch=3),
        )
        compiled = compile_scenario(spec)
        assert compiled.load_modulation.shape == (6, 16)
        assert np.all(compiled.load_modulation[0] == 1.0)
        assert np.all(compiled.load_modulation[5] == 0.5)

    def test_negative_load_rejected(self):
        spec = ScenarioSpec(
            name="x", configuration="A", num_epochs=4,
            load=ConstantPattern(1.0) + ConstantPattern(-2.0),
        )
        with pytest.raises(ValueError, match="non-negative"):
            compile_scenario(spec)

    def test_channels_default_to_none(self):
        compiled = compile_scenario(ScenarioSpec(name="x", configuration="A"))
        assert compiled.load_modulation is None
        assert compiled.ambient_offsets is None
        assert compiled.snr_schedule is None

    def test_policy_and_settings_follow_spec(self):
        spec = ScenarioSpec(
            name="x", configuration="C", scheme="static", mode="transient",
            num_epochs=7, thermal_method="spectral",
        )
        compiled = compile_scenario(spec)
        assert compiled.policy.name == "static"
        assert compiled.settings.mode == "transient"
        assert compiled.settings.thermal_method == "spectral"
        assert compiled.configuration.name == "C"


class TestModulationSemantics:
    def test_fault_zeroes_unit_power(self):
        coord = (1, 2)
        spec = ScenarioSpec(
            name="x", configuration="A", scheme="static", num_epochs=6,
            load=FaultPattern(units=(coord,), level=0.0, start_epoch=3),
        )
        result = run_scenario(spec).experiment
        healthy = result.epochs[0].power_map[coord]
        faulted = result.epochs[5].power_map[coord]
        assert healthy > 0
        assert faulted == 0.0

    def test_modulated_trace_matches_scaled_trace(self):
        """In-loop modulation == PowerTrace.scaled of the unmodulated trace.

        Periodic policies ignore the power feedback, so modulating each row
        as it is emitted must agree exactly with scaling the finished trace —
        the property that lets the scenario compiler reason about modulation
        as a pure array transform.
        """
        chip = get_configuration("A")
        settings = ExperimentSettings(num_epochs=8, mode="steady", settle_epochs=4)
        modulation = np.linspace(0.5, 1.5, 8)[:, np.newaxis] * np.ones(
            (8, chip.num_units)
        )

        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        plain = ThermalExperiment(chip, policy, settings=settings)
        plain_trace, _costs, _names = plain._epoch_sequence(thermal_feedback=False)

        policy = PeriodicMigrationPolicy(chip.topology, "xy-shift", period_us=109.0)
        modulated = ThermalExperiment(
            chip, policy, settings=settings, power_modulation=modulation
        )
        modulated_trace, _costs, _names = modulated._epoch_sequence(
            thermal_feedback=False
        )

        scaled = plain_trace.scaled(modulation)
        assert np.array_equal(modulated_trace.powers, scaled.powers)
        assert np.array_equal(modulated_trace.durations, scaled.durations)

    def test_hotspot_raises_local_temperature(self):
        base = run_scenario(
            ScenarioSpec(name="base", configuration="A", scheme="static", num_epochs=5)
        ).experiment
        hot = run_scenario(
            ScenarioSpec(
                name="hot", configuration="A", scheme="static", num_epochs=5,
                load=HotspotPattern(center=(0, 0), peak=2.0, sigma=0.8),
            )
        ).experiment
        assert hot.settled_peak_celsius > base.settled_peak_celsius


class TestAmbientOffsets:
    def test_uniform_shift_is_exact_in_steady_mode(self):
        """Per-epoch ambient offsets must equal re-solving at that ambient.

        The conduction block conserves energy, so a uniform ambient change
        shifts every steady temperature by the same amount; the scenario
        pipeline relies on that to keep one batched solve per scenario.
        """
        chip = get_configuration("A")
        offset = 6.5
        spec = ScenarioSpec(
            name="x", configuration="A", scheme="static", num_epochs=3,
            ambient_celsius=ConstantPattern(offset),
        )
        result = run_scenario(spec).experiment

        package = dataclasses.replace(
            chip.thermal_model.package,
            ambient_celsius=chip.thermal_model.package.ambient_celsius + offset,
        )
        shifted_model = HotSpotModel(
            chip.topology, package=package, floorplan=chip.thermal_model.floorplan
        )
        expected = shifted_model.steady_temperatures(
            chip.power_vector()[np.newaxis, :]
        )[0]
        assert result.settled_peak_celsius == pytest.approx(expected.max(), abs=1e-9)

    def test_baseline_stays_at_nominal_ambient(self):
        plain = run_scenario(
            ScenarioSpec(name="p", configuration="A", scheme="static", num_epochs=3)
        ).experiment
        heated = run_scenario(
            ScenarioSpec(
                name="h", configuration="A", scheme="static", num_epochs=3,
                ambient_celsius=ConstantPattern(5.0),
            )
        ).experiment
        assert heated.baseline_peak_celsius == pytest.approx(
            plain.baseline_peak_celsius, abs=1e-12
        )
        assert heated.settled_peak_celsius == pytest.approx(
            plain.settled_peak_celsius + 5.0, abs=1e-9
        )

    def test_feedback_policies_see_ambient_offsets(self):
        """A threshold policy must react to the scenario's ambient, not nominal.

        The trigger sits between the nominal steady peak and the +6 C shifted
        peak: without the offset reaching the feedback path the policy never
        fires; with it, every epoch fires.
        """
        from repro.core.policy import ThresholdMigrationPolicy

        chip = get_configuration("A")
        nominal_peak = chip.base_peak_temperature()
        settings = ExperimentSettings(num_epochs=4, mode="steady", settle_epochs=3)
        offsets = np.full(4, 6.0)

        def run_with(offsets_or_none):
            policy = ThresholdMigrationPolicy(
                chip.topology, "xy-shift", trigger_celsius=nominal_peak + 3.0
            )
            ThermalExperiment(
                chip, policy, settings=settings,
                ambient_offsets_celsius=offsets_or_none,
            ).run()
            return policy.migrations_triggered

        assert run_with(None) == 0
        assert run_with(offsets) > 0

    def test_ramp_offsets_tracked_per_epoch(self):
        spec = ScenarioSpec(
            name="x", configuration="A", scheme="static", num_epochs=5,
            ambient_celsius=RampPattern(start=0.0, end=4.0),
        )
        result = run_scenario(spec)
        peaks = [epoch.thermal.peak_celsius for epoch in result.experiment.epochs]
        assert peaks[4] - peaks[0] == pytest.approx(4.0, abs=1e-9)
        assert result.ambient_offset_min_celsius == 0.0
        assert result.ambient_offset_max_celsius == 4.0


class TestDecoderEffort:
    def test_lower_snr_needs_more_iterations(self):
        chip = get_configuration("A")
        good = decoder_effort(chip, np.full(8, 3.0))
        bad = decoder_effort(chip, np.full(8, 1.0))
        assert bad.mean_iterations > good.mean_iterations
        assert bad.throughput_factor < good.throughput_factor
        assert 0.0 <= good.success_rate <= 1.0

    def test_snr_scenario_reports_decoder(self):
        result = run_scenario(get_scenario("snr-fade"))
        assert result.decoder is not None
        assert result.decoder.mean_iterations > 0
        row = result.to_row()
        assert isinstance(row["decoder_throughput_x"], float)

    def test_half_quantum_boundaries_bucket_consistently(self, monkeypatch):
        """Schedules on half-quantum boundaries must round the same way.

        ``np.round`` rounds half to even, so 0.125 dB fell into the 0.0
        bucket while 0.375 dB fell into 0.5 — adjacent boundary values
        skipping a bucket.  Round-half-up keeps consecutive boundaries in
        consecutive buckets.
        """
        from repro.scenarios import compile as compile_module

        probed = []

        def fake_probe(graph, code_digest, snr_q):
            probed.append(snr_q)
            return (10.0, 1.0)

        monkeypatch.setattr(compile_module, "_decode_probe", fake_probe)
        chip = get_configuration("A")
        decoder_effort(chip, np.array([0.125, 0.375, 0.625]))
        assert sorted(probed) == pytest.approx([0.25, 0.5, 0.75])

    def test_empty_schedule_rejected(self):
        chip = get_configuration("A")
        with pytest.raises(ValueError, match="non-empty SNR schedule"):
            decoder_effort(chip, np.array([]))

    def test_concurrent_probes_share_one_decode(self, monkeypatch):
        """Threads probing the same (code, SNR) must run ONE decode batch.

        The probe cache is process-wide and ``ScenarioRunner(executor=
        "thread")`` suites probe concurrently; without the lock, threads that
        miss simultaneously each run the probe batch and write the cache over
        one another.  Four threads released together must produce exactly one
        ``make_decoder`` call.
        """
        from repro.scenarios import compile as compile_module

        compile_module._PROBE_CACHE.clear()
        decode_calls = []
        real_make_decoder = compile_module.make_decoder

        def counting_make_decoder(*args, **kwargs):
            decode_calls.append(threading.get_ident())
            return real_make_decoder(*args, **kwargs)

        monkeypatch.setattr(compile_module, "make_decoder", counting_make_decoder)

        chip = get_configuration("A")
        barrier = threading.Barrier(4)
        errors = []

        def probe():
            try:
                barrier.wait(timeout=10)
                decoder_effort(chip, np.full(4, 2.0))
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=probe) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(decode_calls) == 1


class TestSingleSolveGuarantee:
    """Every registry scenario costs exactly its batched solve budget.

    Feedback-free scenarios are one batched steady solve (steady mode) or
    one ``transient_sequence`` plus the baseline/warm-start solves
    (transient mode).  Feedback scenarios add exactly
    ``ceil(num_epochs / feedback_stride)`` chunked feedback batches — never
    a per-epoch solve.
    """

    @pytest.mark.parametrize(
        "spec", all_scenarios(), ids=lambda spec: spec.name
    )
    def test_one_batched_evaluation_per_scenario(self, spec):
        compiled = compile_scenario(spec)
        solver = compiled.configuration.thermal_model.solver
        steady_before = solver.steady_solve_count
        transients_before = solver.transient_count
        sequences_before = solver.transient_sequence_count

        run_scenario(compiled)

        assert solver.transient_count == transients_before
        assert (
            solver.steady_solve_count - steady_before
            == compiled.expected_steady_solves()
        )
        expected_sequences = 0 if spec.mode == "steady" else 1
        assert (
            solver.transient_sequence_count - sequences_before
            == expected_sequences
        )

    def test_registry_covers_feedback_policies(self):
        compiled = [compile_scenario(spec) for spec in all_scenarios()]
        feedback = [c for c in compiled if c.uses_thermal_feedback]
        assert len(feedback) >= 2
        assert {c.spec.mode for c in feedback} == {"steady", "transient"}
        # Feedback riding the scenario engine stays chunked: strictly fewer
        # solves than epochs whenever the stride exceeds one.
        for c in feedback:
            assert c.spec.feedback_stride > 1
            assert c.expected_steady_solves() < c.spec.num_epochs
