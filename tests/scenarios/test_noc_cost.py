"""Tests for the scenario engine's cached NoC cost probes."""

import threading

import numpy as np
import pytest

from repro.noc.analytic import analytic_latency
from repro.scenarios.noc_cost import (
    _MODEL_CACHE,
    NocCostModel,
    epoch_noc_latencies,
    noc_cost_probe,
)


class TestProbeCache:
    def test_probe_matches_direct_analytic_call(self):
        from repro.noc.topology import MeshTopology

        direct = analytic_latency(MeshTopology(4, 4), "uniform", 0.05)
        probed = noc_cost_probe(4, 4, "uniform", 0.05)
        assert probed.avg_latency == direct.avg_latency
        assert probed.saturation_rate == direct.saturation_rate

    def test_model_is_built_once_per_configuration(self):
        _MODEL_CACHE.clear()
        for rate in (0.01, 0.02, 0.03):
            noc_cost_probe(5, 5, "uniform", rate)
        assert len(_MODEL_CACHE) == 1
        noc_cost_probe(5, 5, "uniform", 0.01, routing="yx")
        assert len(_MODEL_CACHE) == 2

    def test_hotspot_kwargs_participate_in_the_key(self):
        _MODEL_CACHE.clear()
        noc_cost_probe(4, 4, "hotspot", 0.01, hotspots=[(1, 1)])
        noc_cost_probe(4, 4, "hotspot", 0.01, hotspots=[(2, 2)])
        assert len(_MODEL_CACHE) == 2

    def test_concurrent_probes_are_consistent(self):
        _MODEL_CACHE.clear()
        results = []

        def worker():
            results.append(noc_cost_probe(4, 4, "uniform", 0.04).avg_latency)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(results)) == 1
        assert len(_MODEL_CACHE) == 1


class TestEpochCosts:
    def model(self):
        return NocCostModel(width=4, height=4, base_injection_rate=0.04)

    def test_flat_scenario_uses_base_rate(self):
        model = self.model()
        latencies, saturated = epoch_noc_latencies(model, None, num_epochs=5)
        expected = model.probe(0.04).avg_latency
        assert latencies.shape == (5,)
        assert np.allclose(latencies, expected)
        assert not saturated.any()

    def test_modulated_epochs_price_congestion(self):
        model = self.model()
        modulation = np.array([[0.5, 0.5], [1.0, 1.0], [2.0, 2.0]])
        latencies, saturated = epoch_noc_latencies(model, modulation)
        assert latencies[0] < latencies[1] < latencies[2]
        assert not saturated.any()

    def test_saturated_epochs_are_flagged_and_finite(self):
        model = self.model()
        # 10x the base rate pushes far past the 4x4 saturation rate.
        modulation = np.array([[1.0], [10.0]])
        latencies, saturated = epoch_noc_latencies(model, modulation)
        assert saturated.tolist() == [False, True]
        assert np.isfinite(latencies).all()
        assert latencies[1] > latencies[0]

    def test_requires_epoch_count_without_modulation(self):
        with pytest.raises(ValueError, match="num_epochs"):
            epoch_noc_latencies(self.model(), None)

    def test_one_dimensional_modulation_accepted(self):
        latencies, _ = epoch_noc_latencies(self.model(), np.array([0.5, 1.5]))
        assert latencies.shape == (2,)
        assert latencies[1] > latencies[0]
