"""Tests for the declarative scenario spec and its JSON round-trip."""

import json

import pytest

from repro.scenarios.patterns import (
    ConstantPattern,
    DiurnalPattern,
    HotspotPattern,
    RampPattern,
)
from repro.scenarios.registry import all_scenarios, get_scenario, scenario_names
from repro.scenarios.spec import ScenarioSpec


class TestValidation:
    def test_minimal_spec(self):
        spec = ScenarioSpec(name="x", configuration="A")
        assert spec.mode == "steady"
        assert spec.load is None

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ScenarioSpec(name="x", configuration="A", mode="warp")

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="", configuration="A")

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ValueError, match="epoch"):
            ScenarioSpec(name="x", configuration="A", num_epochs=0)

    def test_rejects_spatial_ambient(self):
        with pytest.raises(ValueError, match="chip-global"):
            ScenarioSpec(
                name="x",
                configuration="A",
                ambient_celsius=HotspotPattern(center=(0, 0), peak=2.0),
            )

    def test_rejects_spatial_snr(self):
        with pytest.raises(ValueError, match="chip-global"):
            ScenarioSpec(
                name="x",
                configuration="A",
                snr_db=HotspotPattern(center=(0, 0), peak=2.0),
            )

    def test_rejects_non_pattern_channel(self):
        with pytest.raises(TypeError):
            ScenarioSpec(name="x", configuration="A", load=1.5)


class TestJsonRoundTrip:
    def test_full_spec_round_trips(self):
        spec = ScenarioSpec(
            name="everything",
            configuration="C",
            scheme="rotation",
            period_us=437.2,
            mode="transient",
            num_epochs=17,
            settle_epochs=8,
            thermal_method="spectral",
            transient_steps_per_epoch=4,
            include_migration_energy=False,
            policy_params={"skip_first": False},
            feedback_stride=4,
            feedback_predictor="previous",
            load=ConstantPattern(1.1) * HotspotPattern(center=(2, 2), peak=1.5),
            ambient_celsius=RampPattern(start=0.0, end=5.0),
            snr_db=DiurnalPattern(mean=2.5, amplitude=0.5, period_epochs=8.0),
            description="kitchen sink",
        )
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec

    def test_json_is_plain_data(self):
        payload = json.loads(get_scenario("hotspot-attack").to_json())
        assert payload["configuration"] == "E"
        assert payload["load"]["kind"] == "product"

    def test_none_channels_round_trip(self):
        spec = ScenarioSpec(name="bare", configuration="B")
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.load is None and rebuilt.snr_db is None

    def test_unknown_fields_rejected(self):
        payload = ScenarioSpec(name="x", configuration="A").to_dict()
        payload["frobnicate"] = True
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict(payload)

    def test_policy_params_round_trip(self):
        spec = ScenarioSpec(
            name="x", configuration="B", scheme="threshold-xy-shift",
            policy_params={"trigger_celsius": 88.5},
        )
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.policy_params == {"trigger_celsius": 88.5}
        assert rebuilt == spec

    def test_empty_policy_params_round_trip(self):
        # {} must stay {} through JSON, not collapse to null.
        spec = ScenarioSpec(name="x", configuration="A", policy_params={})
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.policy_params == {}
        assert rebuilt == spec


class TestFeedbackFields:
    def test_defaults(self):
        spec = ScenarioSpec(name="x", configuration="A")
        assert spec.feedback_stride == 1
        assert spec.feedback_predictor == "hold"
        assert spec.policy_params is None

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError, match="feedback_stride"):
            ScenarioSpec(name="x", configuration="A", feedback_stride=0)

    def test_rejects_bad_predictor(self):
        with pytest.raises(ValueError, match="feedback_predictor"):
            ScenarioSpec(name="x", configuration="A", feedback_predictor="oracle")

    def test_rejects_non_dict_policy_params(self):
        with pytest.raises(TypeError, match="policy_params"):
            ScenarioSpec(name="x", configuration="A", policy_params=[("a", 1)])


class TestRegistry:
    def test_at_least_eight_scenarios(self):
        assert len(scenario_names()) >= 8

    def test_both_modes_present(self):
        modes = {spec.mode for spec in all_scenarios()}
        assert modes == {"steady", "transient"}

    def test_every_scenario_round_trips(self):
        for spec in all_scenarios():
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_get_scenario_unknown(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nope")

    def test_names_unique_and_match_specs(self):
        names = scenario_names()
        assert len(set(names)) == len(names)
        assert [spec.name for spec in all_scenarios()] == list(names)
