"""The scenario ``noc`` channel: spec, compilation, pricing, registry."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.scenarios import (
    NocChannel,
    ScenarioSpec,
    compile_scenario,
    get_scenario,
    run_scenario,
)
from repro.scenarios.patterns import BurstPattern, ConstantPattern, HotspotPattern


def noc_spec(**channel_overrides):
    channel = dict(traffic="uniform", injection_rate=0.01)
    channel.update(channel_overrides)
    return ScenarioSpec(
        name="noc-test",
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=8,
        settle_epochs=4,
        noc=NocChannel(**channel),
    )


class TestNocChannelSpec:
    def test_round_trips_through_json(self):
        spec = noc_spec(
            traffic="hotspot",
            rate_pattern=BurstPattern(base=1.0, peak=2.0, start_epoch=2, length=2),
            traffic_kwargs={"hotspots": [[1, 1]]},
            packet_size_flits=6,
        )
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.canonical_json() == spec.canonical_json()
        assert rebuilt.content_digest() == spec.content_digest()

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ValueError, match="unknown NoC traffic pattern"):
            NocChannel(traffic="gossip")

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="injection_rate"):
            NocChannel(injection_rate=0.0)

    def test_spatial_rate_pattern_rejected(self):
        with pytest.raises(ValueError, match="chip-global"):
            NocChannel(rate_pattern=HotspotPattern(center=(1, 1), peak=2.0))

    def test_unknown_fields_rejected(self):
        payload = NocChannel().to_dict()
        payload["bandwidth"] = 1.0
        with pytest.raises(ValueError, match="unknown NoC channel fields"):
            NocChannel.from_dict(payload)

    def test_noc_field_type_checked(self):
        with pytest.raises(TypeError, match="noc must be a NocChannel"):
            ScenarioSpec(name="x", configuration="A", noc="uniform")

    def test_channel_changes_content_digest(self):
        plain = dataclasses.replace(noc_spec(), noc=None)
        assert plain.content_digest() != noc_spec().content_digest()


class TestNocCompilation:
    def test_explicit_rate_pattern_scales_base_rate(self):
        spec = noc_spec(
            rate_pattern=BurstPattern(base=1.0, peak=3.0, start_epoch=2, length=2)
        )
        compiled = compile_scenario(spec)
        assert compiled.noc_model is not None
        expected = 0.01 * np.asarray([1, 1, 3, 3, 1, 1, 1, 1], dtype=float)
        np.testing.assert_allclose(compiled.noc_rates, expected)

    def test_without_rate_pattern_noc_tracks_load(self):
        spec = dataclasses.replace(noc_spec(), load=ConstantPattern(1.5))
        compiled = compile_scenario(spec)
        np.testing.assert_allclose(compiled.noc_rates, np.full(8, 0.015))

    def test_flat_scenario_uses_base_rate(self):
        compiled = compile_scenario(noc_spec())
        np.testing.assert_allclose(compiled.noc_rates, np.full(8, 0.01))

    def test_no_channel_compiles_to_none(self):
        spec = dataclasses.replace(noc_spec(), noc=None)
        compiled = compile_scenario(spec)
        assert compiled.noc_model is None and compiled.noc_rates is None

    def test_mesh_comes_from_the_configuration(self):
        spec = dataclasses.replace(noc_spec(), configuration="C")  # 5x5 chip
        compiled = compile_scenario(spec)
        assert (compiled.noc_model.width, compiled.noc_model.height) == (5, 5)


class TestNocResult:
    def test_summary_flags_saturated_epochs(self):
        spec = noc_spec(
            traffic="hotspot",
            injection_rate=0.006,
            rate_pattern=BurstPattern(base=1.0, peak=3.0, start_epoch=2, length=2),
            traffic_kwargs={"hotspots": [[1, 1]]},
        )
        outcome = run_scenario(spec)
        assert outcome.noc is not None
        assert outcome.noc.saturated_epochs == 2
        assert outcome.noc.peak_latency_cycles >= outcome.noc.mean_latency_cycles
        assert outcome.noc.peak_injection_rate == pytest.approx(0.018)
        assert 0 < outcome.noc.saturation_rate < 0.018

    def test_row_carries_the_latency_column(self):
        row = run_scenario(noc_spec()).to_row()
        assert isinstance(row["noc_latency_cyc"], float)
        plain = dataclasses.replace(noc_spec(), noc=None)
        assert run_scenario(plain).to_row()["noc_latency_cyc"] == "-"

    def test_registry_scenario_end_to_end(self):
        outcome = run_scenario(get_scenario("noc-congestion-burst"))
        assert outcome.noc is not None
        # Exactly the twelve burst epochs (10..15 and 26..31) saturate.
        assert outcome.noc.saturated_epochs == 12
        assert outcome.noc.peak_injection_rate > outcome.noc.saturation_rate

    def test_zero_extra_solves(self):
        """Pricing the NoC must not touch the thermal solver."""
        spec = noc_spec()
        compiled = compile_scenario(spec)
        solver = compiled.configuration.thermal_model.solver
        before = solver.steady_solve_count
        run_scenario(compiled)
        assert solver.steady_solve_count - before == compiled.expected_steady_solves()
