"""Tests for the simulated-annealing thermally-aware placer."""

import pytest

from repro.placement.annealing import AnnealingResult, AnnealingSchedule, ThermalAwarePlacer
from repro.placement.cost import PlacementCostModel
from repro.placement.mapping import Mapping


@pytest.fixture
def cost_model(mesh4, thermal4):
    # Four hot tasks, the rest cool: plenty of room for a bad initial layout.
    powers = {task: 0.8 for task in range(16)}
    for task in (0, 1, 2, 3):
        powers[task] = 4.0
    return PlacementCostModel(topology=mesh4, per_task_power=powers, thermal_model=thermal4)


@pytest.fixture
def fast_schedule():
    return AnnealingSchedule(
        initial_temperature=2.0,
        final_temperature=0.2,
        cooling_factor=0.7,
        moves_per_temperature=15,
    )


class TestSchedule:
    def test_temperature_sequence_decreasing(self, fast_schedule):
        temps = fast_schedule.temperatures()
        assert temps
        assert all(a > b for a, b in zip(temps, temps[1:]))
        assert temps[-1] > fast_schedule.final_temperature

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=1.0, final_temperature=2.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(cooling_factor=1.5)
        with pytest.raises(ValueError):
            AnnealingSchedule(moves_per_temperature=0)


class TestPlacer:
    def test_improves_clustered_initial_placement(self, cost_model, fast_schedule, mesh4):
        # All four hot tasks start packed into one corner row: the worst case.
        placer = ThermalAwarePlacer(cost_model, schedule=fast_schedule, seed=3)
        result = placer.place(initial=Mapping.identity(mesh4))
        assert isinstance(result, AnnealingResult)
        assert result.cost <= result.initial_cost
        assert result.improvement >= 0.0

    def test_returns_valid_mapping(self, cost_model, fast_schedule, mesh4):
        placer = ThermalAwarePlacer(cost_model, schedule=fast_schedule, seed=4)
        result = placer.place()
        # Constructing a Mapping re-validates bijectivity; also check coverage.
        assert sorted(result.mapping.to_permutation()) == list(range(16))

    def test_seed_reproducibility(self, cost_model, fast_schedule):
        a = ThermalAwarePlacer(cost_model, schedule=fast_schedule, seed=11).place()
        b = ThermalAwarePlacer(cost_model, schedule=fast_schedule, seed=11).place()
        assert a.mapping == b.mapping
        assert a.cost == pytest.approx(b.cost)

    def test_cost_history_recorded(self, cost_model, fast_schedule):
        result = ThermalAwarePlacer(cost_model, schedule=fast_schedule, seed=5).place()
        assert len(result.cost_history) == result.evaluated_moves + 1

    def test_best_cost_matches_mapping(self, cost_model, fast_schedule):
        result = ThermalAwarePlacer(cost_model, schedule=fast_schedule, seed=6).place()
        assert cost_model.combined_cost(result.mapping) == pytest.approx(result.cost)

    def test_accepted_moves_bounded(self, cost_model, fast_schedule):
        result = ThermalAwarePlacer(cost_model, schedule=fast_schedule, seed=7).place()
        assert 0 <= result.accepted_moves <= result.evaluated_moves
