"""Tests for the placement cost model."""

import pytest

from repro.placement.cost import PlacementCostModel
from repro.placement.mapping import Mapping
from repro.thermal.hotspot import HotSpotModel


@pytest.fixture
def skewed_powers():
    """One very hot task, the rest cool."""
    powers = {task: 1.0 for task in range(16)}
    powers[0] = 6.0
    return powers


@pytest.fixture
def cost_model(mesh4, thermal4, skewed_powers):
    return PlacementCostModel(
        topology=mesh4,
        per_task_power=skewed_powers,
        thermal_model=thermal4,
    )


class TestValidation:
    def test_requires_full_task_coverage(self, mesh4, thermal4):
        with pytest.raises(ValueError):
            PlacementCostModel(
                topology=mesh4,
                per_task_power={0: 1.0},
                thermal_model=thermal4,
            )

    def test_rejects_negative_power(self, mesh4, thermal4):
        powers = {task: 1.0 for task in range(16)}
        powers[3] = -2.0
        with pytest.raises(ValueError):
            PlacementCostModel(topology=mesh4, per_task_power=powers, thermal_model=thermal4)


class TestCosts:
    def test_power_map_follows_mapping(self, cost_model, mesh4):
        mapping = Mapping.identity(mesh4)
        power = cost_model.power_map(mapping)
        assert power[(0, 0)] == 6.0

    def test_peak_temperature_positive(self, cost_model, mesh4):
        assert cost_model.peak_temperature(Mapping.identity(mesh4)) > 40.0

    def test_corner_hot_task_is_hotter_than_center(self, cost_model, mesh4):
        """A hot task in the mesh corner has less silicon to spread into than
        the same task in the centre, so the corner placement runs hotter."""
        identity = Mapping.identity(mesh4)  # task 0 at corner (0, 0)
        permutation = list(range(16))
        center_id = mesh4.node_id((1, 1))
        permutation[0], permutation[center_id] = permutation[center_id], permutation[0]
        center = Mapping.from_permutation(mesh4, permutation)
        assert cost_model.peak_temperature(identity) > cost_model.peak_temperature(center)

    def test_communication_cost_zero_without_workload(self, cost_model, mesh4):
        assert cost_model.communication_cost(Mapping.identity(mesh4)) == 0.0

    def test_combined_cost_reduces_to_thermal(self, cost_model, mesh4):
        mapping = Mapping.identity(mesh4)
        assert cost_model.combined_cost(mapping) == pytest.approx(
            cost_model.peak_temperature(mapping)
        )

    def test_communication_cost_with_workload(self, mesh4, thermal4, small_workload):
        powers = {task: 1.0 for task in range(16)}
        model = PlacementCostModel(
            topology=mesh4,
            per_task_power=powers,
            thermal_model=thermal4,
            workload=small_workload,
        )
        mapping = Mapping.identity(mesh4)
        assert model.communication_cost(mapping) > 0
        assert model.combined_cost(mapping, comm_weight=0.01) > model.peak_temperature(mapping)

    def test_workload_adds_communication_power(self, mesh4, thermal4, small_workload):
        powers = {task: 1.0 for task in range(16)}
        bare = PlacementCostModel(
            topology=mesh4, per_task_power=powers, thermal_model=thermal4
        )
        with_comm = PlacementCostModel(
            topology=mesh4,
            per_task_power=powers,
            thermal_model=thermal4,
            workload=small_workload,
        )
        mapping = Mapping.identity(mesh4)
        assert sum(with_comm.power_map(mapping).values()) > sum(
            bare.power_map(mapping).values()
        )
