"""Tests for the logical-to-physical mapping."""

import pytest

from repro.migration.transforms import RotationTransform, XYShiftTransform
from repro.noc.topology import MeshTopology
from repro.placement.mapping import Mapping


class TestConstruction:
    def test_identity_mapping(self, mesh4):
        mapping = Mapping.identity(mesh4)
        for coord in mesh4.coordinates():
            task = mesh4.node_id(coord)
            assert mapping.physical_of(task) == coord
            assert mapping.task_of(coord) == task

    def test_rejects_missing_tasks(self, mesh4):
        assignment = {task: mesh4.coordinate(task) for task in range(15)}
        with pytest.raises(ValueError):
            Mapping(topology=mesh4, physical_of_task=assignment)

    def test_rejects_duplicate_coordinates(self, mesh4):
        assignment = {task: mesh4.coordinate(task) for task in range(16)}
        assignment[1] = assignment[0]
        with pytest.raises(ValueError):
            Mapping(topology=mesh4, physical_of_task=assignment)

    def test_rejects_out_of_mesh(self, mesh4):
        assignment = {task: mesh4.coordinate(task) for task in range(16)}
        assignment[0] = (7, 7)
        with pytest.raises(ValueError):
            Mapping(topology=mesh4, physical_of_task=assignment)

    def test_from_permutation_round_trip(self, mesh4):
        permutation = list(reversed(range(16)))
        mapping = Mapping.from_permutation(mesh4, permutation)
        assert mapping.to_permutation() == permutation

    def test_from_permutation_validates(self, mesh4):
        with pytest.raises(ValueError):
            Mapping.from_permutation(mesh4, [0] * 16)


class TestTransforms:
    def test_apply_transform_is_new_object(self, identity_mapping4, mesh4):
        rotated = identity_mapping4.apply_transform(RotationTransform(mesh4))
        assert rotated is not identity_mapping4
        assert rotated != identity_mapping4

    def test_apply_transform_moves_tasks(self, identity_mapping4, mesh4):
        transform = XYShiftTransform(mesh4)
        shifted = identity_mapping4.apply_transform(transform)
        for task in range(16):
            assert shifted.physical_of(task) == transform(identity_mapping4.physical_of(task))

    def test_moved_tasks_counts(self, identity_mapping4, mesh4):
        shifted = identity_mapping4.apply_transform(XYShiftTransform(mesh4))
        assert len(identity_mapping4.moved_tasks(shifted)) == 16
        assert identity_mapping4.moved_tasks(identity_mapping4.copy()) == []

    def test_moved_tasks_requires_same_mesh(self, identity_mapping4, mesh5):
        other = Mapping.identity(mesh5)
        with pytest.raises(ValueError):
            identity_mapping4.moved_tasks(other)

    def test_rotation_four_times_is_identity(self, identity_mapping4, mesh4):
        mapping = identity_mapping4
        transform = RotationTransform(mesh4)
        for _ in range(4):
            mapping = mapping.apply_transform(transform)
        assert mapping == identity_mapping4


class TestUtilities:
    def test_as_power_map(self, identity_mapping4, mesh4):
        per_task = {task: float(task) for task in range(16)}
        power = identity_mapping4.as_power_map(per_task)
        assert power[mesh4.coordinate(5)] == 5.0

    def test_copy_is_independent(self, identity_mapping4):
        clone = identity_mapping4.copy()
        assert clone == identity_mapping4
        clone.physical_of_task[0] = (3, 3)
        # The original is untouched (copy made its own dict).
        assert identity_mapping4.physical_of(0) == (0, 0)

    def test_hashable(self, identity_mapping4, mesh4):
        shifted = identity_mapping4.apply_transform(XYShiftTransform(mesh4))
        assert len({identity_mapping4, identity_mapping4.copy(), shifted}) == 2

    def test_items_sorted_by_task(self, identity_mapping4):
        tasks = [task for task, _coord in identity_mapping4.items()]
        assert tasks == sorted(tasks)

    def test_getitem(self, identity_mapping4):
        assert identity_mapping4[3] == identity_mapping4.physical_of(3)
