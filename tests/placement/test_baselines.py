"""Tests for the baseline placement strategies."""

import pytest

from repro.placement.baselines import (
    checkerboard_placement,
    greedy_thermal_placement,
    identity_placement,
    random_placement,
)
from repro.placement.cost import PlacementCostModel


@pytest.fixture
def powers16():
    powers = {task: 1.0 for task in range(16)}
    for task in (0, 1, 2, 3):
        powers[task] = 3.5
    return powers


class TestSimpleBaselines:
    def test_identity_placement(self, mesh4):
        mapping = identity_placement(mesh4)
        assert mapping.physical_of(0) == (0, 0)
        assert mapping.physical_of(15) == (3, 3)

    def test_random_placement_is_bijection(self, mesh4):
        mapping = random_placement(mesh4, seed=1)
        assert sorted(mapping.to_permutation()) == list(range(16))

    def test_random_placement_seeded(self, mesh4):
        assert random_placement(mesh4, seed=5) == random_placement(mesh4, seed=5)

    def test_random_differs_from_identity_usually(self, mesh4):
        mapping = random_placement(mesh4, seed=2)
        assert mapping != identity_placement(mesh4)


class TestCheckerboard:
    def test_hot_tasks_not_adjacent(self, mesh4, powers16):
        mapping = checkerboard_placement(mesh4, powers16)
        hot_coords = [mapping.physical_of(task) for task in (0, 1, 2, 3)]
        for i, a in enumerate(hot_coords):
            for b in hot_coords[i + 1 :]:
                assert mesh4.manhattan_distance(a, b) >= 2

    def test_requires_full_coverage(self, mesh4):
        with pytest.raises(ValueError):
            checkerboard_placement(mesh4, {0: 1.0})

    def test_valid_bijection(self, mesh4, powers16):
        mapping = checkerboard_placement(mesh4, powers16)
        assert sorted(mapping.to_permutation()) == list(range(16))


class TestGreedyThermal:
    def test_produces_valid_mapping(self, mesh4, thermal4, powers16):
        cost_model = PlacementCostModel(
            topology=mesh4, per_task_power=powers16, thermal_model=thermal4
        )
        mapping = greedy_thermal_placement(cost_model, candidates_per_step=3)
        assert sorted(mapping.to_permutation()) == list(range(16))

    def test_beats_clustered_identity(self, mesh4, thermal4, powers16):
        """Greedy spreading of the hot tasks must beat leaving them packed in
        the bottom row (tasks 0-3 are row y=0 under the identity mapping)."""
        cost_model = PlacementCostModel(
            topology=mesh4, per_task_power=powers16, thermal_model=thermal4
        )
        greedy = greedy_thermal_placement(cost_model, candidates_per_step=4)
        assert cost_model.peak_temperature(greedy) <= cost_model.peak_temperature(
            identity_placement(mesh4)
        )
