"""Synthetic traffic generators for the NoC substrate.

The main workload of the reproduction is the LDPC decoder
(:mod:`repro.ldpc.workload`), but the NoC characterisation benchmark
(experiment E6 in DESIGN.md) and many unit tests use the classic synthetic
patterns below.  Each generator produces, per cycle, the set of packets to
offer to the network.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .flit import Packet, PacketClass
from .topology import Coordinate, MeshTopology


class TrafficGenerator(ABC):
    """Base class: produces packets to inject at each cycle."""

    def __init__(
        self,
        topology: MeshTopology,
        injection_rate: float,
        packet_size_flits: int = 4,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= injection_rate <= 1.0:
            raise ValueError("injection rate must be in [0, 1] packets/node/cycle")
        if packet_size_flits < 1:
            raise ValueError("packet size must be at least one flit")
        self.topology = topology
        self.injection_rate = injection_rate
        self.packet_size_flits = packet_size_flits
        self.rng = random.Random(seed)

    @abstractmethod
    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        """Destination of a packet injected at ``source`` (None = no packet)."""

    def packets_for_cycle(self, cycle: int) -> List[Packet]:
        """Packets offered to the network in the given cycle."""
        packets: List[Packet] = []
        for source in self.topology.coordinates():
            if self.rng.random() >= self.injection_rate:
                continue
            destination = self.destination_for(source)
            if destination is None or destination == source:
                continue
            packets.append(
                Packet(
                    source=source,
                    destination=destination,
                    size_flits=self.packet_size_flits,
                    packet_class=PacketClass.DATA,
                    injection_cycle=cycle,
                )
            )
        return packets


class UniformRandomTraffic(TrafficGenerator):
    """Each packet goes to a uniformly random other node."""

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        nodes = self.topology.num_nodes
        while True:
            dest_id = self.rng.randrange(nodes)
            dest = self.topology.coordinate(dest_id)
            if dest != source:
                return dest


class TransposeTraffic(TrafficGenerator):
    """Node (x, y) sends to (y, x); meaningful on square meshes."""

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        x, y = source
        dest = (y, x)
        if not self.topology.contains(dest):
            return None
        return dest


class BitComplementTraffic(TrafficGenerator):
    """Node (x, y) sends to (W-1-x, H-1-y)."""

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        x, y = source
        return (self.topology.width - 1 - x, self.topology.height - 1 - y)


class HotspotTraffic(TrafficGenerator):
    """A fraction of the traffic targets a small set of hotspot nodes.

    This pattern creates exactly the localized congestion / activity
    imbalance that produces thermal hotspots, and is used to stress the
    migration policies beyond the LDPC workload.
    """

    def __init__(
        self,
        topology: MeshTopology,
        injection_rate: float,
        hotspots: Sequence[Coordinate],
        hotspot_fraction: float = 0.5,
        packet_size_flits: int = 4,
        seed: Optional[int] = None,
    ):
        super().__init__(topology, injection_rate, packet_size_flits, seed)
        if not hotspots:
            raise ValueError("at least one hotspot node is required")
        for spot in hotspots:
            if not topology.contains(spot):
                raise ValueError(f"hotspot {spot} outside mesh")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot fraction must be in [0, 1]")
        self.hotspots = list(hotspots)
        self.hotspot_fraction = hotspot_fraction

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        if self.rng.random() < self.hotspot_fraction:
            candidates = [spot for spot in self.hotspots if spot != source]
            if candidates:
                return self.rng.choice(candidates)
        nodes = self.topology.num_nodes
        while True:
            dest = self.topology.coordinate(self.rng.randrange(nodes))
            if dest != source:
                return dest


class NeighborTraffic(TrafficGenerator):
    """Each node sends to a random mesh neighbour (short-range traffic).

    LDPC message-passing between adjacent partitions is dominated by this
    kind of near-neighbour communication.
    """

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        neighbors = list(self.topology.neighbors(source).values())
        if not neighbors:
            return None
        return self.rng.choice(neighbors)


class TraceTraffic:
    """Replays an explicit list of (cycle, source, destination, size) tuples.

    Used by the LDPC workload adapter and by regression tests that need a
    fully deterministic traffic sequence.
    """

    def __init__(self, trace: Iterable[Tuple[int, Coordinate, Coordinate, int]]):
        self._by_cycle: Dict[int, List[Tuple[Coordinate, Coordinate, int]]] = {}
        for cycle, source, destination, size in trace:
            self._by_cycle.setdefault(cycle, []).append((source, destination, size))

    def packets_for_cycle(self, cycle: int) -> List[Packet]:
        entries = self._by_cycle.get(cycle, [])
        return [
            Packet(
                source=source,
                destination=destination,
                size_flits=size,
                packet_class=PacketClass.DATA,
                injection_cycle=cycle,
            )
            for source, destination, size in entries
        ]

    @property
    def last_cycle(self) -> int:
        """Largest cycle index present in the trace."""
        return max(self._by_cycle) if self._by_cycle else 0


def make_traffic(
    pattern: str,
    topology: MeshTopology,
    injection_rate: float,
    packet_size_flits: int = 4,
    seed: Optional[int] = None,
    **kwargs,
) -> TrafficGenerator:
    """Factory for synthetic traffic by pattern name."""
    patterns = {
        "uniform": UniformRandomTraffic,
        "transpose": TransposeTraffic,
        "bit-complement": BitComplementTraffic,
        "neighbor": NeighborTraffic,
        "hotspot": HotspotTraffic,
    }
    try:
        cls = patterns[pattern]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {pattern!r}; choose from {sorted(patterns)}"
        ) from None
    return cls(topology, injection_rate, packet_size_flits=packet_size_flits, seed=seed, **kwargs)
