"""Synthetic traffic generators for the NoC substrate.

The main workload of the reproduction is the LDPC decoder
(:mod:`repro.ldpc.workload`), but the NoC characterisation benchmark
(experiment E6 in DESIGN.md) and many unit tests use the classic synthetic
patterns below.  Each generator produces, per cycle, the set of packets to
offer to the network.

Two generation paths exist:

* ``packets_for_cycle(cycle)`` — the seed per-cycle path consuming a
  ``random.Random`` stream node by node.  This is what the object engine
  drives, and what :meth:`~repro.noc.schedule.TrafficSchedule.from_generator`
  replays exactly for engine-parity tests.
* ``schedule(cycles)`` — the array-native path: the whole packet schedule is
  pregenerated with a handful of vectorized draws from one
  ``numpy.random.default_rng(seed)`` per run.  Same-seed calls reproduce the
  identical schedule (pinned by ``tests/noc/test_traffic_schedule.py``), but
  the stream intentionally differs from the ``random.Random`` one — exact
  replay of the per-cycle path is what ``from_generator`` is for.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .flit import Packet, PacketClass
from .schedule import PACKET_CLASS_CODES, TrafficSchedule
from .topology import Coordinate, MeshTopology


class TrafficGenerator(ABC):
    """Base class: produces packets to inject at each cycle."""

    def __init__(
        self,
        topology: MeshTopology,
        injection_rate: float,
        packet_size_flits: int = 4,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= injection_rate <= 1.0:
            raise ValueError("injection rate must be in [0, 1] packets/node/cycle")
        if packet_size_flits < 1:
            raise ValueError("packet size must be at least one flit")
        self.topology = topology
        self.injection_rate = injection_rate
        self.packet_size_flits = packet_size_flits
        self.seed = seed
        self.rng = random.Random(seed)

    @abstractmethod
    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        """Destination of a packet injected at ``source`` (None = no packet)."""

    # ------------------------------------------------------------------
    # Array-native schedule pregeneration
    # ------------------------------------------------------------------
    def schedule(self, cycles: int) -> TrafficSchedule:
        """Pregenerate the whole packet schedule as arrays.

        One ``numpy.random.default_rng(seed)`` drives the entire run: a
        single ``(cycles, nodes)`` Bernoulli draw decides the injection
        slots, then each pattern fills the destinations with a few
        vectorized draws.  Packets come out ordered by (cycle, node)
        row-major, the same offer order the per-cycle path produces.
        """
        n = self.topology.num_nodes
        rng = np.random.default_rng(self.seed)
        inject = rng.random((cycles, n)) < self.injection_rate
        slot_cycle, slot_node = np.nonzero(inject)
        src = slot_node.astype(np.int64)
        dst = self._schedule_destinations(rng, src)
        keep = (dst >= 0) & (dst != src)
        size = np.full(int(keep.sum()), self.packet_size_flits, dtype=np.int64)
        pclass = np.full(
            size.size, PACKET_CLASS_CODES[PacketClass.DATA], dtype=np.int64
        )
        return TrafficSchedule(
            cycle=slot_cycle[keep].astype(np.int64),
            src=src[keep],
            dst=dst[keep],
            size=size,
            pclass=pclass,
        )

    def _schedule_destinations(
        self, rng: "np.random.Generator", src: np.ndarray
    ) -> np.ndarray:
        """Vectorized destinations per injection slot (-1 = drop the slot)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no array-native schedule path"
        )

    def _uniform_destinations(
        self, rng: "np.random.Generator", src: np.ndarray
    ) -> np.ndarray:
        """Uniform over all nodes, rejecting draws equal to the source."""
        n = self.topology.num_nodes
        dst = rng.integers(0, n, size=src.size).astype(np.int64)
        bad = dst == src
        while bad.any():
            dst[bad] = rng.integers(0, n, size=int(bad.sum()))
            bad = dst == src
        return dst

    def packets_for_cycle(self, cycle: int) -> List[Packet]:
        """Packets offered to the network in the given cycle."""
        packets: List[Packet] = []
        for source in self.topology.coordinates():
            if self.rng.random() >= self.injection_rate:
                continue
            destination = self.destination_for(source)
            if destination is None or destination == source:
                continue
            packets.append(
                Packet(
                    source=source,
                    destination=destination,
                    size_flits=self.packet_size_flits,
                    packet_class=PacketClass.DATA,
                    injection_cycle=cycle,
                )
            )
        return packets


class UniformRandomTraffic(TrafficGenerator):
    """Each packet goes to a uniformly random other node."""

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        nodes = self.topology.num_nodes
        while True:
            dest_id = self.rng.randrange(nodes)
            dest = self.topology.coordinate(dest_id)
            if dest != source:
                return dest

    def _schedule_destinations(self, rng, src):
        return self._uniform_destinations(rng, src)


def _destination_map(topology: MeshTopology, fn) -> np.ndarray:
    """Node-id destination lookup for a deterministic pattern (-1 = none)."""
    table = np.full(topology.num_nodes, -1, dtype=np.int64)
    for node in range(topology.num_nodes):
        dest = fn(topology.coordinate(node))
        if dest is not None and topology.contains(dest):
            table[node] = topology.node_id(dest)
    return table


class TransposeTraffic(TrafficGenerator):
    """Node (x, y) sends to (y, x); meaningful on square meshes."""

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        x, y = source
        dest = (y, x)
        if not self.topology.contains(dest):
            return None
        return dest

    def _schedule_destinations(self, rng, src):
        return _destination_map(self.topology, lambda c: (c[1], c[0]))[src]


class BitComplementTraffic(TrafficGenerator):
    """Node (x, y) sends to (W-1-x, H-1-y)."""

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        x, y = source
        return (self.topology.width - 1 - x, self.topology.height - 1 - y)

    def _schedule_destinations(self, rng, src):
        topo = self.topology
        return _destination_map(
            topo, lambda c: (topo.width - 1 - c[0], topo.height - 1 - c[1])
        )[src]


class HotspotTraffic(TrafficGenerator):
    """A fraction of the traffic targets a small set of hotspot nodes.

    This pattern creates exactly the localized congestion / activity
    imbalance that produces thermal hotspots, and is used to stress the
    migration policies beyond the LDPC workload.
    """

    def __init__(
        self,
        topology: MeshTopology,
        injection_rate: float,
        hotspots: Sequence[Coordinate],
        hotspot_fraction: float = 0.5,
        packet_size_flits: int = 4,
        seed: Optional[int] = None,
    ):
        super().__init__(topology, injection_rate, packet_size_flits, seed)
        if not hotspots:
            raise ValueError("at least one hotspot node is required")
        for spot in hotspots:
            if not topology.contains(spot):
                raise ValueError(f"hotspot {spot} outside mesh")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot fraction must be in [0, 1]")
        self.hotspots = list(hotspots)
        self.hotspot_fraction = hotspot_fraction

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        if self.rng.random() < self.hotspot_fraction:
            candidates = [spot for spot in self.hotspots if spot != source]
            if candidates:
                return self.rng.choice(candidates)
        nodes = self.topology.num_nodes
        while True:
            dest = self.topology.coordinate(self.rng.randrange(nodes))
            if dest != source:
                return dest

    def _schedule_destinations(self, rng, src):
        topo = self.topology
        spots = np.array([topo.node_id(s) for s in self.hotspots], dtype=np.int64)
        # Per-source candidate hotspots (the source itself excluded).
        candidates = np.tile(spots, (topo.num_nodes, 1))
        is_self = candidates == np.arange(topo.num_nodes)[:, None]
        counts = (~is_self).sum(axis=1)
        # Pack each row's valid candidates to the front.
        packed = np.where(is_self, np.iinfo(np.int64).max, candidates)
        packed.sort(axis=1)
        hot = rng.random(src.size) < self.hotspot_fraction
        hot &= counts[src] > 0
        pick = (rng.random(src.size) * counts[src]).astype(np.int64)
        dst = self._uniform_destinations(rng, src)
        dst[hot] = packed[src[hot], pick[hot]]
        return dst


class NeighborTraffic(TrafficGenerator):
    """Each node sends to a random mesh neighbour (short-range traffic).

    LDPC message-passing between adjacent partitions is dominated by this
    kind of near-neighbour communication.
    """

    def destination_for(self, source: Coordinate) -> Optional[Coordinate]:
        neighbors = list(self.topology.neighbors(source).values())
        if not neighbors:
            return None
        return self.rng.choice(neighbors)

    def _schedule_destinations(self, rng, src):
        topo = self.topology
        max_deg = 4
        table = np.full((topo.num_nodes, max_deg), -1, dtype=np.int64)
        degree = np.zeros(topo.num_nodes, dtype=np.int64)
        for node in range(topo.num_nodes):
            coord = topo.coordinate(node)
            for i, ncoord in enumerate(topo.neighbors(coord).values()):
                table[node, i] = topo.node_id(ncoord)
            degree[node] = topo.degree(coord)
        pick = (rng.random(src.size) * degree[src]).astype(np.int64)
        return table[src, pick]


class TraceTraffic:
    """Replays an explicit list of (cycle, source, destination, size) tuples.

    Used by the LDPC workload adapter and by regression tests that need a
    fully deterministic traffic sequence.
    """

    def __init__(self, trace: Iterable[Tuple[int, Coordinate, Coordinate, int]]):
        self._by_cycle: Dict[int, List[Tuple[Coordinate, Coordinate, int]]] = {}
        for cycle, source, destination, size in trace:
            self._by_cycle.setdefault(cycle, []).append((source, destination, size))

    def packets_for_cycle(self, cycle: int) -> List[Packet]:
        entries = self._by_cycle.get(cycle, [])
        return [
            Packet(
                source=source,
                destination=destination,
                size_flits=size,
                packet_class=PacketClass.DATA,
                injection_cycle=cycle,
            )
            for source, destination, size in entries
        ]

    @property
    def last_cycle(self) -> int:
        """Largest cycle index present in the trace."""
        return max(self._by_cycle) if self._by_cycle else 0


def make_traffic(
    pattern: str,
    topology: MeshTopology,
    injection_rate: float,
    packet_size_flits: int = 4,
    seed: Optional[int] = None,
    **kwargs,
) -> TrafficGenerator:
    """Factory for synthetic traffic by pattern name."""
    patterns = {
        "uniform": UniformRandomTraffic,
        "transpose": TransposeTraffic,
        "bit-complement": BitComplementTraffic,
        "neighbor": NeighborTraffic,
        "hotspot": HotspotTraffic,
    }
    try:
        cls = patterns[pattern]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {pattern!r}; choose from {sorted(patterns)}"
        ) from None
    return cls(topology, injection_rate, packet_size_flits=packet_size_flits, seed=seed, **kwargs)
