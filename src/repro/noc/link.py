"""Inter-router link model.

Links are unidirectional, single-flit-per-cycle channels between adjacent
routers.  The model tracks per-link utilisation (for the power model and the
congestion statistics) and supports a configurable traversal latency, kept at
one cycle to match the paper's platform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .topology import Coordinate, Direction


@dataclass
class Link:
    """A unidirectional link from ``source`` towards ``direction``."""

    source: Coordinate
    destination: Coordinate
    direction: Direction
    latency_cycles: int = 1
    flits_carried: int = 0
    busy_cycles: int = 0

    def traverse(self) -> None:
        """Record one flit traversal."""
        self.flits_carried += 1
        self.busy_cycles += self.latency_cycles

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles this link carried a flit."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def reset(self) -> None:
        self.flits_carried = 0
        self.busy_cycles = 0


class LinkTable:
    """All links of a mesh, keyed by (source coordinate, direction)."""

    def __init__(self) -> None:
        self._links: Dict[Tuple[Coordinate, Direction], Link] = {}

    def add(self, link: Link) -> None:
        key = (link.source, link.direction)
        if key in self._links:
            raise ValueError(f"duplicate link {key}")
        self._links[key] = link

    def get(self, source: Coordinate, direction: Direction) -> Link:
        return self._links[(source, direction)]

    def __iter__(self):
        return iter(self._links.values())

    def __len__(self) -> int:
        return len(self._links)

    def total_flits(self) -> int:
        """Sum of flits carried over every link."""
        return sum(link.flits_carried for link in self._links.values())

    def reset(self) -> None:
        for link in self._links.values():
            link.reset()
