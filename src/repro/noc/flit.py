"""Packets and flits for the wormhole-switched NoC.

Packets carry LDPC messages (and, during migration, PE configuration/state)
between PEs.  Each packet is segmented into flits: one head flit carrying the
route information, zero or more body flits, and a tail flit that releases the
wormhole path.  Single-flit packets use the ``HEAD_TAIL`` type.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import List, Optional, Tuple

Coordinate = Tuple[int, int]

_packet_counter = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet id counter (used by tests for determinism)."""
    global _packet_counter
    _packet_counter = itertools.count()


class FlitType(Enum):
    """Position of a flit within its packet."""

    HEAD = auto()
    BODY = auto()
    TAIL = auto()
    HEAD_TAIL = auto()

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


class PacketClass(Enum):
    """Traffic class of a packet.

    ``DATA`` packets carry workload (LDPC) messages.  ``CONFIG`` packets carry
    PE configuration and state during a migration phase.  ``IO`` packets cross
    the chip boundary and pass through the migration unit's address
    translation.
    """

    DATA = auto()
    CONFIG = auto()
    IO = auto()


@dataclass
class Packet:
    """A multi-flit message travelling from ``source`` to ``destination``.

    Attributes
    ----------
    source, destination:
        Physical mesh coordinates of the injecting and ejecting routers.
    size_flits:
        Total number of flits including head and tail.
    packet_class:
        Traffic class (workload data, migration config, or chip I/O).
    injection_cycle:
        Cycle at which the packet was offered to the network.
    payload:
        Optional opaque payload used by the LDPC workload and migration
        engine (e.g. the logical task id being moved).
    """

    source: Coordinate
    destination: Coordinate
    size_flits: int
    packet_class: PacketClass = PacketClass.DATA
    injection_cycle: int = 0
    payload: Optional[object] = None
    packet_id: int = field(default_factory=lambda: next(_packet_counter))

    # Filled in by the network when the tail flit is ejected.
    ejection_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError("a packet needs at least one flit")

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency in cycles, or ``None`` while in flight."""
        if self.ejection_cycle is None:
            return None
        return self.ejection_cycle - self.injection_cycle

    @property
    def hop_distance(self) -> int:
        """Manhattan distance between source and destination."""
        return abs(self.source[0] - self.destination[0]) + abs(
            self.source[1] - self.destination[1]
        )

    def make_flits(self) -> List["Flit"]:
        """Segment the packet into its flit sequence."""
        if self.size_flits == 1:
            return [Flit(packet=self, flit_type=FlitType.HEAD_TAIL, index=0)]
        flits = [Flit(packet=self, flit_type=FlitType.HEAD, index=0)]
        for i in range(1, self.size_flits - 1):
            flits.append(Flit(packet=self, flit_type=FlitType.BODY, index=i))
        flits.append(Flit(packet=self, flit_type=FlitType.TAIL, index=self.size_flits - 1))
        return flits


@dataclass
class Flit:
    """A single flow-control unit of a packet."""

    packet: Packet
    flit_type: FlitType
    index: int

    @property
    def destination(self) -> Coordinate:
        return self.packet.destination

    @property
    def source(self) -> Coordinate:
        return self.packet.source

    @property
    def is_head(self) -> bool:
        return self.flit_type.is_head

    @property
    def is_tail(self) -> bool:
        return self.flit_type.is_tail

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flit(pkt={self.packet.packet_id}, {self.flit_type.name}, "
            f"{self.source}->{self.destination})"
        )
