"""Mesh network assembly and the per-cycle update rule.

The :class:`Network` owns one :class:`~repro.noc.router.Router` per mesh node,
the inter-router :class:`~repro.noc.link.Link` table, per-node injection and
ejection queues, and the aggregate :class:`~repro.noc.stats.NetworkStats`.

The update for one cycle is:

1. every router computes routes for new head flits;
2. every router runs switch allocation, producing a set of flit traversals;
3. all traversals are applied atomically: flits move to the neighbouring
   router (or are ejected), credits are consumed/released, link counters are
   bumped;
4. pending source-queued packets are injected where the local input buffer
   has room.

Because the traversals computed in step 2 are applied only in step 3, a flit
advances at most one hop per cycle, which is what makes the simulator
cycle-accurate rather than a flow approximation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .flit import Flit, Packet, PacketClass
from .link import Link, LinkTable
from .router import Forward, Router
from .routing import RoutingAlgorithm, make_routing
from .stats import NetworkStats
from .topology import Coordinate, Direction, MeshTopology

EjectionHandler = Callable[[Packet, int], None]


class Network:
    """A 2-D mesh wormhole network.

    Parameters
    ----------
    topology:
        The mesh dimensions.
    routing:
        A routing algorithm name (``"xy"`` by default) or an instantiated
        :class:`~repro.noc.routing.RoutingAlgorithm`.
    buffer_depth:
        Input FIFO depth per router port, in flits.
    """

    def __init__(
        self,
        topology: MeshTopology,
        routing: "str | RoutingAlgorithm" = "xy",
        buffer_depth: int = 4,
    ):
        self.topology = topology
        if isinstance(routing, str):
            routing = make_routing(routing, topology)
        self.routing = routing
        self.buffer_depth = buffer_depth

        self.routers: Dict[Coordinate, Router] = {}
        self.links = LinkTable()
        for coord in topology.coordinates():
            neighbor_dirs = list(topology.neighbors(coord).keys())
            ports = [Direction.LOCAL] + neighbor_dirs
            self.routers[coord] = Router(
                coordinate=coord,
                routing=self.routing,
                buffer_depth=buffer_depth,
                connected_ports=ports,
            )
            for direction, neighbor in topology.neighbors(coord).items():
                self.links.add(Link(source=coord, destination=neighbor, direction=direction))

        # Source queues: packets waiting at each node for injection.
        self.injection_queues: Dict[Coordinate, Deque[Packet]] = {
            coord: deque() for coord in topology.coordinates()
        }
        # Packets currently being injected flit-by-flit.
        self._injecting: Dict[Coordinate, List[Flit]] = {}
        # Flits of partially ejected packets, keyed by packet id.
        self._ejecting: Dict[int, int] = {}

        self.stats = NetworkStats()
        self.ejected_packets: List[Packet] = []
        self.ejection_handler: Optional[EjectionHandler] = None
        self.current_cycle = 0

    # ------------------------------------------------------------------
    # Injection interface
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        """Queue a packet at its source node for injection."""
        if not self.topology.contains(packet.source):
            raise ValueError(f"packet source {packet.source} outside mesh")
        if not self.topology.contains(packet.destination):
            raise ValueError(f"packet destination {packet.destination} outside mesh")
        self.injection_queues[packet.source].append(packet)

    def pending_injections(self) -> int:
        """Packets still waiting in source queues (plus partially injected)."""
        waiting = sum(len(q) for q in self.injection_queues.values())
        return waiting + len(self._injecting)

    # ------------------------------------------------------------------
    # Cycle update
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one cycle."""
        # 1-2. Route computation + switch allocation in every router.
        forwards: List[Forward] = []
        for router in self.routers.values():
            router.compute_routes()
            forwards.extend(router.allocate_switch())

        # 3. Apply traversals atomically.
        for fwd in forwards:
            self._apply_forward(fwd)

        # 4. Inject waiting packets flit by flit.
        self._inject_pending()

        self.current_cycle += 1
        self.stats.cycles += 1

    def _apply_forward(self, fwd: Forward) -> None:
        router = fwd.router
        coord = router.coordinate
        flit = fwd.flit

        # Return a credit upstream for the buffer slot just freed, unless the
        # flit came from the LOCAL injection port (whose source queue does not
        # use credits).
        if fwd.in_dir != Direction.LOCAL:
            upstream_coord = self.topology.neighbor(coord, fwd.in_dir)
            upstream = self.routers[upstream_coord]
            upstream.credit_return(fwd.in_dir.opposite)

        if fwd.out_dir == Direction.LOCAL:
            self._eject_flit(coord, flit)
            return

        link = self.links.get(coord, fwd.out_dir)
        link.traverse()
        downstream = self.routers[link.destination]
        downstream.accept_flit(fwd.out_dir.opposite, flit)

    def _eject_flit(self, coord: Coordinate, flit: Flit) -> None:
        packet = flit.packet
        seen = self._ejecting.get(packet.packet_id, 0) + 1
        if flit.is_tail:
            self._ejecting.pop(packet.packet_id, None)
            packet.ejection_cycle = self.current_cycle + 1
            self.stats.record_ejection(packet)
            self.ejected_packets.append(packet)
            if self.ejection_handler is not None:
                self.ejection_handler(packet, packet.ejection_cycle)
        else:
            self._ejecting[packet.packet_id] = seen

    def _inject_pending(self) -> None:
        for coord, queue in self.injection_queues.items():
            router = self.routers[coord]
            # Continue injecting a packet already in progress.
            flits = self._injecting.get(coord)
            if flits is None and queue:
                packet = queue.popleft()
                packet.injection_cycle = self.current_cycle
                self.stats.record_injection(packet)
                flits = packet.make_flits()
                self._injecting[coord] = flits
            if not flits:
                continue
            # Push as many flits as the local buffer accepts this cycle
            # (the local port has the same bandwidth as a link: one flit).
            if router.can_accept(Direction.LOCAL):
                router.accept_flit(Direction.LOCAL, flits.pop(0))
            else:
                self.stats.stalled_injections += 1
            if not flits:
                self._injecting.pop(coord, None)

    # ------------------------------------------------------------------
    # Convenience drivers
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Run for a fixed number of cycles."""
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Run until all traffic has been delivered; returns cycles used.

        Raises ``RuntimeError`` if the network does not drain within
        ``max_cycles`` (which would indicate deadlock or livelock).
        """
        used = 0
        while not self.is_idle():
            if used >= max_cycles:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.stats.in_flight_packets} packets in flight)"
                )
            self.step()
            used += 1
        return used

    def is_idle(self) -> bool:
        """True when no packets are queued, buffered or in flight."""
        if self.pending_injections():
            return False
        return all(router.is_idle() for router in self.routers.values())

    # ------------------------------------------------------------------
    # Activity collection for the power model
    # ------------------------------------------------------------------
    def router_activity(self) -> Dict[Coordinate, "object"]:
        """Snapshot of per-router activity counters."""
        return {coord: router.activity.snapshot() for coord, router in self.routers.items()}

    def reset_activity(self) -> None:
        """Clear per-router activity counters (start of a power interval)."""
        for router in self.routers.values():
            router.activity.reset()
        self.links.reset()

    def reset(self) -> None:
        """Full reset: drop traffic, clear stats and counters."""
        for router in self.routers.values():
            router.reset()
        self.links.reset()
        for queue in self.injection_queues.values():
            queue.clear()
        self._injecting.clear()
        self._ejecting.clear()
        self.stats.reset()
        self.ejected_packets.clear()
        self.current_cycle = 0
