"""Array-native cycle kernel for the wormhole mesh NoC.

:class:`VectorNetwork` advances the same credit-flow wormhole mesh as
:class:`~repro.noc.network.Network`, but holds *all* router state as
struct-of-arrays and advances a whole cycle — for a whole **batch of
independent simulations** ("lanes") of the same mesh — with NumPy array
operations:

* input-FIFO occupancy as circular-buffer matrices of shape
  ``(lanes, nodes, ports, depth)`` plus head-pointer/length matrices;
* credit counts, wormhole ownership, cached route decisions and
  round-robin pointers as ``(lanes, nodes, ports)`` matrices;
* route computation by fancy-indexing a precomputed ``(nodes, nodes)``
  XY/YX/turn-model route table;
* switch allocation by sorting the flat request list on an
  ``(output port, rotated round-robin priority)`` key and taking the first
  entry of every output-port group;
* traversal/credit/ejection applied by scatters on flat
  ``lane x node x port`` indices.

Two implementation choices keep the per-cycle NumPy dispatch count low:
input buffers store packet-index and flit-index packed into one integer
(one gather/scatter instead of two), and activity/throughput counters are
not touched inside the cycle loop at all — each cycle appends its winner /
writer / ejection index arrays to event logs that are reduced with a single
``bincount`` pass when results are read.

The seed :class:`~repro.noc.network.Network` remains the behavioural
specification: the kernel reproduces its per-cycle semantics *exactly* —
same round-robin pointer updates (the pointer only advances when an output
port actually saw contention), same credit timing, same injection
bookkeeping (a packet is dequeued before the buffer-space check, so a full
local buffer stalls the same packet the object engine stalls), same
ejection order (routers in row-major order within a cycle).  The parity
suite in ``tests/noc/test_vector_engine.py`` pins per-packet latencies,
ejection order, router activity counters and stalled-injection counts
against the object engine on identical traffic.

Traffic enters as :class:`~repro.noc.schedule.TrafficSchedule` arrays, one
schedule per lane.  Multi-lane batches are how the latency curve becomes
ONE vectorized run: every injection rate is a lane, and all lanes advance
in lockstep (see :mod:`repro.noc.batch`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs import counter as _obs_counter
from ..obs import span as _obs_span
from .router import RouterActivity
from .routing import RoutingAlgorithm, make_routing
from .schedule import PACKET_CLASS_FROM_CODE, TrafficSchedule
from .stats import LatencyStats, NetworkStats
from .topology import Coordinate, Direction, MeshTopology

#: Number of router ports (LOCAL, EAST, WEST, NORTH, SOUTH).
NUM_PORTS = 5
_LOCAL = int(Direction.LOCAL)

#: Bits reserved for the flit index inside a packed buffer entry.
_FLIT_BITS = 22
_FLIT_MASK = (1 << _FLIT_BITS) - 1

#: Opposite-direction table indexed by Direction value.
_OPPOSITE = np.array([0, 2, 1, 4, 3], dtype=np.int64)

# Registry counters for the batched cycle kernel (no-ops while telemetry is
# disabled).  ``lane_cycles`` is lanes x cycles — the kernel's unit of work.
_OBS_RUNS = _obs_counter("noc.vector.runs")
_OBS_DRAINS = _obs_counter("noc.vector.drains")
_OBS_LANE_CYCLES = _obs_counter("noc.vector.lane_cycles")


class _MeshTables:
    """Precomputed per-(topology, routing) lookup tables."""

    def __init__(self, topology: MeshTopology, routing: RoutingAlgorithm):
        n = topology.num_nodes
        coords = list(topology.coordinates())
        #: deterministic route decision for every (current, destination) pair
        self.route_lut = np.zeros((n, n), dtype=np.int64)
        for i, src in enumerate(coords):
            for j, dst in enumerate(coords):
                self.route_lut[i, j] = int(routing.route(src, dst))
        #: neighbour node id per (node, direction); -1 where no link exists
        self.neighbor = np.full((n, NUM_PORTS), -1, dtype=np.int64)
        #: position of each direction in the node's connected-port list
        self.port_pos = np.full((n, NUM_PORTS), -1, dtype=np.int64)
        #: number of connected ports per node
        self.n_ports = np.zeros(n, dtype=np.int64)
        for i, coord in enumerate(coords):
            neighbors = topology.neighbors(coord)
            connected = [Direction.LOCAL] + list(neighbors.keys())
            self.n_ports[i] = len(connected)
            for pos, direction in enumerate(connected):
                self.port_pos[i, int(direction)] = pos
            for direction, ncoord in neighbors.items():
                self.neighbor[i, int(direction)] = topology.node_id(ncoord)
        self.neighbor_flat = self.neighbor.ravel()
        self.port_pos_flat = self.port_pos.ravel()


class VectorNetwork:
    """Batched struct-of-arrays wormhole mesh simulator.

    Parameters
    ----------
    topology:
        Mesh dimensions (shared by every lane).
    schedules:
        One :class:`TrafficSchedule` per lane.  Lanes are independent
        simulations advanced in lockstep.
    routing:
        Routing algorithm name or instance (deterministic first-candidate
        decision, like the object engine).
    buffer_depth:
        Input FIFO depth per router port, in flits.
    """

    def __init__(
        self,
        topology: MeshTopology,
        schedules: Sequence[TrafficSchedule],
        routing: "str | RoutingAlgorithm" = "xy",
        buffer_depth: int = 4,
    ):
        if not schedules:
            raise ValueError("at least one traffic lane is required")
        if buffer_depth < 1:
            raise ValueError("buffer depth must be at least one flit")
        self.topology = topology
        if isinstance(routing, str):
            routing = make_routing(routing, topology)
        self.routing = routing
        self.buffer_depth = buffer_depth
        self.schedules = list(schedules)

        self.num_lanes = len(self.schedules)
        self.num_nodes = topology.num_nodes
        self.tables = _MeshTables(topology, routing)
        self._build_packet_table()
        self._build_state()
        self.current_cycle = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_packet_table(self) -> None:
        lanes = [
            np.full(sched.num_packets, lane, dtype=np.int64)
            for lane, sched in enumerate(self.schedules)
        ]
        self.pkt_lane = np.concatenate(lanes)
        self.pkt_src = np.concatenate([s.src for s in self.schedules])
        self.pkt_dst = np.concatenate([s.dst for s in self.schedules])
        self.pkt_size = np.concatenate([s.size for s in self.schedules])
        self.pkt_class = np.concatenate([s.pclass for s in self.schedules])
        self.pkt_sched = np.concatenate([s.cycle for s in self.schedules])
        total = self.pkt_lane.size
        if np.any(self.pkt_src == self.pkt_dst):
            raise ValueError("schedule contains a packet with source == destination")
        if total and int(self.pkt_size.max()) >= _FLIT_MASK:
            raise ValueError("packet size exceeds the packed flit-index range")
        #: absolute cycle a packet started injecting (-1 while queued)
        self.pkt_inject = np.full(total, -1, dtype=np.int64)
        #: absolute cycle the tail flit ejected, plus one (-1 while in flight)
        self.pkt_eject = np.full(total, -1, dtype=np.int64)

        # Per-(lane, source-node) FIFO queues in offer order, as one sorted
        # index array plus CSR-style [start, end) ranges.
        B, N = self.num_lanes, self.num_nodes
        seq = np.arange(total, dtype=np.int64)
        order = np.lexsort((seq, self.pkt_sched, self.pkt_src, self.pkt_lane))
        self.q_pkts = order
        self.q_sched = self.pkt_sched[order]
        key = self.pkt_lane[order] * N + self.pkt_src[order]
        counts = np.bincount(key, minlength=B * N).astype(np.int64)
        ends = np.cumsum(counts)
        self.q_end = ends.reshape(B, N)
        self.q_ptr = (ends - counts).reshape(B, N)
        # One padding slot so availability checks can index q_sched safely.
        self._q_sched_padded = np.concatenate([self.q_sched, [np.iinfo(np.int64).max]])

    def _build_state(self) -> None:
        B, N, P, D = self.num_lanes, self.num_nodes, NUM_PORTS, self.buffer_depth
        #: packed (packet_index << _FLIT_BITS | flit_index) circular FIFOs
        self.buf_enc = np.zeros((B, N, P, D), dtype=np.int64)
        self.buf_head = np.zeros((B, N, P), dtype=np.int64)
        self.buf_len = np.zeros((B, N, P), dtype=np.int64)
        # Credits for every output port; unconnected ports keep zero credits
        # and are never routed toward, matching the object router which does
        # not instantiate them at all.
        connected = self.tables.port_pos >= 0
        self.credits = np.where(connected, D, 0).astype(np.int64)[None].repeat(B, axis=0)
        self.owner = np.full((B, N, P), -1, dtype=np.int64)
        self.head_route = np.full((B, N, P), -1, dtype=np.int64)
        self.rr_ptr = np.zeros((B, N, P), dtype=np.int64)
        self.inj_pkt = np.full((B, N), -1, dtype=np.int64)
        self.inj_flit = np.zeros((B, N), dtype=np.int64)

        # Python-scalar occupancy trackers let the cycle kernel skip whole
        # phases without touching an array.
        self._buffered = 0  # flits across all input FIFOs
        self._queued = int(self.q_pkts.size)  # packets not yet dequeued
        self._injecting = 0  # nodes with a packet mid-injection

        # Per-lane cycle counters (the only stat advanced inside the loop).
        self.cycles = np.zeros(B, dtype=np.int64)

        # Event logs, reduced lazily by _aggregate().  Entries are flat
        # lane*N+node indices (or packet ids for the injection/ejection logs).
        self._log_switch: List[np.ndarray] = []  # one entry per switch winner
        self._log_link: List[np.ndarray] = []  # winners with non-LOCAL output
        self._log_header: List[np.ndarray] = []  # head-flit route computes
        self._log_write: List[np.ndarray] = []  # input-buffer writes
        self._log_inj_node: List[np.ndarray] = []  # packet dequeues
        self._log_inj_pkt: List[np.ndarray] = []  # dequeued packet ids
        self._log_stall: List[np.ndarray] = []  # stalled injection attempts
        self._log_ej_node: List[np.ndarray] = []  # tail ejections
        self._log_ej_pkt: List[np.ndarray] = []  # ejected packet ids
        self._agg: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Measurement control
    # ------------------------------------------------------------------
    def reset_measurement(self) -> None:
        """Zero statistics and activity counters, keeping traffic in flight.

        Equivalent to ``network.stats.reset()`` + ``network.reset_activity()``
        at the warmup/measurement boundary of the object engine.
        """
        self.cycles.fill(0)
        for log in (
            self._log_switch,
            self._log_link,
            self._log_header,
            self._log_write,
            self._log_inj_node,
            self._log_inj_pkt,
            self._log_stall,
            self._log_ej_node,
            self._log_ej_pkt,
        ):
            log.clear()
        self._agg = None

    # ------------------------------------------------------------------
    # Cycle kernel
    # ------------------------------------------------------------------
    def step(self, active: Optional[np.ndarray] = None) -> None:
        """Advance every lane (or the lanes in ``active``) by one cycle."""
        B, N, P, D = self.num_lanes, self.num_nodes, NUM_PORTS, self.buffer_depth
        cycle = self.current_cycle
        tables = self.tables
        buf_len_flat = self.buf_len.ravel()
        buf_head_flat = self.buf_head.ravel()
        buf_enc_flat = self.buf_enc.ravel()
        route_flat = self.head_route.ravel()
        owner_flat = self.owner.ravel()
        credits_flat = self.credits.ravel()
        self._agg = None

        if self._buffered:
            # ---- Phase 1: route computation for new head-of-FIFO flits ----
            need = np.flatnonzero((buf_len_flat > 0) & (route_flat < 0))
            if need.size:
                enc = buf_enc_flat[need * D + buf_head_flat[need]]
                is_head = (enc & _FLIT_MASK) == 0
                if is_head.any():
                    hi = need[is_head]
                    node = (hi // P) % N
                    dst = self.pkt_dst[enc[is_head] >> _FLIT_BITS]
                    route_flat[hi] = tables.route_lut[node, dst]
                    self._log_header.append(hi // P)
                if not is_head.all():
                    bi = need[~is_head]
                    bn = bi // P
                    owner_rows = self.owner.reshape(-1, P)[bn]
                    match = owner_rows == (bi - bn * P)[:, None]
                    found = match.any(axis=1)
                    route_flat[bi[found]] = match.argmax(axis=1)[found]

            # ---- Phase 2: switch allocation (scatter-min arbitration) -----
            # route >= 0 implies an occupied buffer: routes are cleared on
            # pop and never survive an empty FIFO.
            req = np.flatnonzero(route_flat >= 0)
            out_sel = route_flat[req]
            bn = req // P
            pin = req - bn * P
            tgt = bn * P + out_sel
            o_owner = owner_flat[tgt]
            ok = (o_owner < 0) | (o_owner == pin)
            ok &= (credits_flat[tgt] > 0) | (out_sel == _LOCAL)
            if not ok.all():
                pin = pin[ok]
                tgt = tgt[ok]
                bn = bn[ok]
            if tgt.size:
                node = bn % N
                rot = (
                    tables.port_pos_flat[node * P + pin] - self.rr_ptr.ravel()[tgt]
                ) % tables.n_ports[node]
                # Group requests by output port via one stable sort; the
                # winner of each group is its smallest rotated priority.
                keys = tgt * (P * P) + rot * P + pin
                order = np.argsort(keys, kind="stable")
                sorted_tgt = tgt[order]
                first = np.empty(order.size, dtype=bool)
                first[0] = True
                np.not_equal(sorted_tgt[1:], sorted_tgt[:-1], out=first[1:])
                win_req = order[first]
                widx = tgt[win_req]
                wbn = widx // P
                wo = widx - wbn * P
                wi = pin[win_req]
                wnode = wbn % N

                # The pointer moves only when the output saw real contention.
                starts = np.flatnonzero(first)
                contested = (
                    np.append(starts[1:], order.size) - starts
                ) > 1
                if contested.any():
                    mi = widx[contested]
                    self.rr_ptr.ravel()[mi] = (
                        tables.port_pos_flat[wnode[contested] * P + wi[contested]]
                        + 1
                    ) % tables.n_ports[wnode[contested]]

                # ---- Phase 3: pop winners and apply traversals atomically --
                bnin = wbn * P + wi
                h = buf_head_flat[bnin]
                enc = buf_enc_flat[bnin * D + h]
                buf_head_flat[bnin] = (h + 1) % D
                buf_len_flat[bnin] -= 1
                route_flat[bnin] = -1
                fp = enc >> _FLIT_BITS
                ff = enc & _FLIT_MASK
                is_head = ff == 0
                is_tail = ff == self.pkt_size[fp] - 1

                bno = wbn * P + wo
                owner_flat[bno] = np.where(
                    is_tail, -1, np.where(is_head, wi, owner_flat[bno])
                )
                not_local = wo != _LOCAL
                nl_bno = bno[not_local]
                credits_flat[nl_bno] -= 1
                self._log_switch.append(wbn)
                self._log_link.append(wbn[not_local])

                # Credit return to the upstream output port that fed us.
                upstream = wi != _LOCAL
                if upstream.any():
                    un = tables.neighbor_flat[wnode[upstream] * P + wi[upstream]]
                    ubn = wbn[upstream] - wnode[upstream] + un
                    credits_flat[ubn * P + _OPPOSITE[wi[upstream]]] += 1

                # Ejection on the LOCAL port.
                et = ~not_local & is_tail
                if et.any():
                    self.pkt_eject[fp[et]] = cycle + 1
                    self._log_ej_node.append(wbn[et])
                    self._log_ej_pkt.append(fp[et])

                # Link traversal into the downstream input buffer.
                if not_local.any():
                    dn = tables.neighbor_flat[wnode[not_local] * P + wo[not_local]]
                    dbn = wbn[not_local] - wnode[not_local] + dn
                    dbnp = dbn * P + _OPPOSITE[wo[not_local]]
                    dpos = (buf_head_flat[dbnp] + buf_len_flat[dbnp]) % D
                    buf_enc_flat[dbnp * D + dpos] = enc[not_local]
                    buf_len_flat[dbnp] += 1
                    self._log_write.append(dbn)
                self._buffered += int(nl_bno.size) - int(wbn.size)

        # ---- Phase 4: injection from the per-node source queues ----------
        if self._queued:
            ptr_flat = self.q_ptr.ravel()
            avail = (ptr_flat < self.q_end.ravel()) & (
                self._q_sched_padded[np.minimum(ptr_flat, self.q_sched.size)]
                <= cycle
            )
            deq = np.flatnonzero((self.inj_pkt.ravel() < 0) & avail)
            if deq.size:
                pk = self.q_pkts[ptr_flat[deq]]
                self.pkt_inject[pk] = cycle
                self.inj_pkt.ravel()[deq] = pk
                self.inj_flit.ravel()[deq] = 0
                ptr_flat[deq] += 1
                self._log_inj_node.append(deq)
                self._log_inj_pkt.append(pk)
                self._queued -= int(deq.size)
                self._injecting += int(deq.size)

        if self._injecting:
            inj_flat = self.inj_pkt.ravel()
            pushing = np.flatnonzero(inj_flat >= 0)
            local_bnp = pushing * P + _LOCAL
            occupancy = buf_len_flat[local_bnp]
            room = occupancy < D
            if not room.all():
                self._log_stall.append(pushing[~room])
                pushing = pushing[room]
                local_bnp = local_bnp[room]
                occupancy = occupancy[room]
            if pushing.size:
                pk = inj_flat[pushing]
                flit_index = self.inj_flit.ravel()[pushing]
                pos = (buf_head_flat[local_bnp] + occupancy) % D
                buf_enc_flat[local_bnp * D + pos] = (pk << _FLIT_BITS) | flit_index
                buf_len_flat[local_bnp] += 1
                self._log_write.append(pushing)
                flit_index += 1
                self.inj_flit.ravel()[pushing] = flit_index
                finished = flit_index == self.pkt_size[pk]
                if finished.any():
                    inj_flat[pushing[finished]] = -1
                    self._injecting -= int(np.count_nonzero(finished))
                self._buffered += int(pushing.size)

        # ---- Phase 5: advance clocks -------------------------------------
        self.current_cycle = cycle + 1
        if active is None:
            self.cycles += 1
        else:
            self.cycles[active] += 1

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def run(self, cycles: int) -> None:
        """Advance all lanes by a fixed number of cycles."""
        with _obs_span("noc.vector.run", lanes=self.num_lanes, cycles=int(cycles)):
            for _ in range(cycles):
                self.step()
        _OBS_RUNS.add()
        _OBS_LANE_CYCLES.add(self.num_lanes * int(cycles))

    def lane_idle(self) -> np.ndarray:
        """Boolean per-lane idleness (no queued, buffered or in-flight traffic).

        Wormhole ownership needs no separate check: an owned output implies
        the owning packet's tail is still buffered somewhere, so global
        emptiness implies every wormhole has been released.
        """
        B = self.num_lanes
        busy = (self.inj_pkt >= 0).any(axis=1)
        busy |= self.buf_len.reshape(B, -1).any(axis=1)
        if self._queued:
            busy |= (self.q_ptr < self.q_end).any(axis=1)
        return ~busy

    def drain(self, max_cycles: int = 1_000_000) -> int:
        """Step until every lane is idle; returns the cycles used.

        Per-lane cycle counters freeze as soon as that lane drains, matching
        per-network ``Network.drain`` runs.  Raises ``RuntimeError`` when any
        lane fails to drain within ``max_cycles``.
        """
        used = 0
        with _obs_span("noc.vector.drain", lanes=self.num_lanes) as drain_span:
            active = ~self.lane_idle()
            while active.any():
                if used >= max_cycles:
                    agg = self._aggregate()
                    in_flight = int(
                        (agg["lane_inj_packets"] - agg["lane_ej_packets"])[active].sum()
                    )
                    raise RuntimeError(
                        f"network failed to drain within {max_cycles} cycles "
                        f"({in_flight} packets in flight)"
                    )
                self.step(active=active)
                used += 1
                active = ~self.lane_idle()
            drain_span.args["cycles"] = used
        _OBS_DRAINS.add()
        _OBS_LANE_CYCLES.add(self.num_lanes * used)
        return used

    # ------------------------------------------------------------------
    # Result extraction
    # ------------------------------------------------------------------
    def _aggregate(self) -> Dict[str, np.ndarray]:
        """Reduce the event logs to per-node / per-lane counters (cached)."""
        if self._agg is not None:
            return self._agg
        B, N = self.num_lanes, self.num_nodes

        def per_node(log: List[np.ndarray]) -> np.ndarray:
            if not log:
                return np.zeros((B, N), dtype=np.int64)
            flat = np.concatenate(log)
            return np.bincount(flat, minlength=B * N).reshape(B, N)

        inj_node = per_node(self._log_inj_node)
        ej_node = per_node(self._log_ej_node)
        agg: Dict[str, np.ndarray] = {
            "switch": per_node(self._log_switch),
            "link": per_node(self._log_link),
            "header": per_node(self._log_header),
            "write": per_node(self._log_write),
            "inj_node": inj_node,
            "ej_node": ej_node,
            "stall": per_node(self._log_stall).sum(axis=1),
            "lane_inj_packets": inj_node.sum(axis=1),
            "lane_ej_packets": ej_node.sum(axis=1),
        }
        if self._log_inj_pkt:
            pk = np.concatenate(self._log_inj_pkt)
            agg["lane_inj_flits"] = np.bincount(
                self.pkt_lane[pk], weights=self.pkt_size[pk], minlength=B
            ).astype(np.int64)
        else:
            agg["lane_inj_flits"] = np.zeros(B, dtype=np.int64)
        if self._log_ej_pkt:
            pk = np.concatenate(self._log_ej_pkt)
            agg["ej_order"] = pk
            agg["lane_ej_flits"] = np.bincount(
                self.pkt_lane[pk], weights=self.pkt_size[pk], minlength=B
            ).astype(np.int64)
        else:
            agg["ej_order"] = np.zeros(0, dtype=np.int64)
            agg["lane_ej_flits"] = np.zeros(B, dtype=np.int64)
        self._agg = agg
        return agg

    def ejection_order(self, lane: int) -> np.ndarray:
        """Packet-table indices in ejection order for one lane.

        Within a cycle the order is row-major over routers, exactly like the
        object network's traversal-application order.
        """
        pkts = self._aggregate()["ej_order"]
        return pkts[self.pkt_lane[pkts] == lane]

    def lane_stats(self, lane: int) -> NetworkStats:
        """Assemble a :class:`NetworkStats` identical to the object engine's."""
        agg = self._aggregate()
        stats = NetworkStats()
        stats.cycles = int(self.cycles[lane])
        stats.packets_injected = int(agg["lane_inj_packets"][lane])
        stats.flits_injected = int(agg["lane_inj_flits"][lane])
        stats.packets_ejected = int(agg["lane_ej_packets"][lane])
        stats.flits_ejected = int(agg["lane_ej_flits"][lane])
        stats.stalled_injections = int(agg["stall"][lane])
        for node in np.flatnonzero(agg["inj_node"][lane]):
            coord = self.topology.coordinate(int(node))
            stats.injected_per_node[coord] = int(agg["inj_node"][lane, node])
        for node in np.flatnonzero(agg["ej_node"][lane]):
            coord = self.topology.coordinate(int(node))
            stats.ejected_per_node[coord] = int(agg["ej_node"][lane, node])

        order = self.ejection_order(lane)
        if order.size:
            latencies = (self.pkt_eject[order] - self.pkt_inject[order]).astype(
                np.float64
            )
            stats.latency = LatencyStats(
                count=int(latencies.size),
                total=float(latencies.sum()),
                minimum=float(latencies.min()),
                maximum=float(latencies.max()),
            )
            for code in np.unique(self.pkt_class[order]):
                values = latencies[self.pkt_class[order] == code]
                stats.latency_by_class[PACKET_CLASS_FROM_CODE[int(code)]] = (
                    LatencyStats(
                        count=int(values.size),
                        total=float(values.sum()),
                        minimum=float(values.min()),
                        maximum=float(values.max()),
                    )
                )
        return stats

    def lane_activity(self, lane: int) -> Dict[Coordinate, RouterActivity]:
        """Per-router activity counters for one lane.

        ``flits_routed``, ``buffer_reads``, ``crossbar_traversals`` and
        ``arbitration_rounds`` always advance together in the object router
        (every arbitrated output pops exactly one flit), so all four map to
        the switch-winner count.
        """
        agg = self._aggregate()
        result: Dict[Coordinate, RouterActivity] = {}
        for node in range(self.num_nodes):
            coord = self.topology.coordinate(node)
            switched = int(agg["switch"][lane, node])
            result[coord] = RouterActivity(
                flits_routed=switched,
                headers_decoded=int(agg["header"][lane, node]),
                buffer_reads=switched,
                buffer_writes=int(agg["write"][lane, node]),
                crossbar_traversals=switched,
                link_traversals=int(agg["link"][lane, node]),
                arbitration_rounds=switched,
            )
        return result

    def lane_link_flits(self, lane: int) -> int:
        """Total flits carried over every inter-router link of one lane."""
        return int(self._aggregate()["link"][lane].sum())

    def write_back_packets(self) -> None:
        """Copy injection/ejection cycles onto the originating Packet objects."""
        offset = 0
        for sched in self.schedules:
            count = sched.num_packets
            if sched.packets is not None:
                inject = self.pkt_inject[offset : offset + count]
                eject = self.pkt_eject[offset : offset + count]
                for index, packet in enumerate(sched.packets):
                    if inject[index] >= 0:
                        packet.injection_cycle = int(inject[index])
                    if eject[index] >= 0:
                        packet.ejection_cycle = int(eject[index])
            offset += count

    # ------------------------------------------------------------------
    # Introspection used by the conservation property tests
    # ------------------------------------------------------------------
    def buffered_flits(self, lane: int) -> int:
        """Flits currently sitting in the lane's input FIFOs."""
        return int(self.buf_len[lane].sum())

    def in_network_packets(self, lane: int) -> int:
        """Distinct packets with at least one flit inside the network."""
        pkts = set()
        lens = self.buf_len[lane]
        heads = self.buf_head[lane]
        for node in range(self.num_nodes):
            for port in range(NUM_PORTS):
                length = int(lens[node, port])
                head = int(heads[node, port])
                for k in range(length):
                    enc = int(self.buf_enc[lane, node, port, (head + k) % self.buffer_depth])
                    pkts.add(enc >> _FLIT_BITS)
            if self.inj_pkt[lane, node] >= 0:
                pkts.add(int(self.inj_pkt[lane, node]))
        return len(pkts)
