"""Cycle-accurate wormhole router model.

Each router has five ports (LOCAL, EAST, WEST, NORTH, SOUTH).  Every input
port owns a flit FIFO; every output port owns a credit counter mirroring the
free space of the downstream input buffer and a wormhole allocation record
(which input port currently owns the output).

The router performs, conceptually in one cycle:

1. *Route computation* for head flits at the front of each input buffer.
2. *Switch allocation* — at most one flit per output port per cycle, with
   round-robin priority among the competing input ports.
3. *Switch/link traversal* — the winning flits are handed to the adjacent
   router's input buffer (or ejected on the LOCAL port) and a credit is
   returned to the upstream router.

The simulation applies all traversals for a cycle atomically, so a flit
moves at most one hop per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .buffer import CreditCounter, FlitBuffer
from .flit import Flit
from .routing import RoutingAlgorithm
from .topology import Coordinate, Direction

ALL_PORTS = (
    Direction.LOCAL,
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)


@dataclass
class RouterActivity:
    """Per-router switching-activity counters consumed by the power model."""

    flits_routed: int = 0
    headers_decoded: int = 0
    buffer_reads: int = 0
    buffer_writes: int = 0
    crossbar_traversals: int = 0
    link_traversals: int = 0
    arbitration_rounds: int = 0

    def reset(self) -> None:
        self.flits_routed = 0
        self.headers_decoded = 0
        self.buffer_reads = 0
        self.buffer_writes = 0
        self.crossbar_traversals = 0
        self.link_traversals = 0
        self.arbitration_rounds = 0

    def snapshot(self) -> "RouterActivity":
        return RouterActivity(
            flits_routed=self.flits_routed,
            headers_decoded=self.headers_decoded,
            buffer_reads=self.buffer_reads,
            buffer_writes=self.buffer_writes,
            crossbar_traversals=self.crossbar_traversals,
            link_traversals=self.link_traversals,
            arbitration_rounds=self.arbitration_rounds,
        )


@dataclass
class _OutputPort:
    """Wormhole allocation and credit state of one output port."""

    credits: CreditCounter
    owner: Optional[Direction] = None  # input port currently holding the wormhole


@dataclass
class Forward:
    """A flit traversal decided during switch allocation.

    ``out_dir`` is relative to the router that owns the flit; the network
    delivers the flit to the neighbouring router's opposite input port (or
    ejects it when ``out_dir`` is LOCAL).
    """

    router: "Router"
    in_dir: Direction
    out_dir: Direction
    flit: Flit


class Router:
    """One mesh router with input-buffered wormhole switching."""

    def __init__(
        self,
        coordinate: Coordinate,
        routing: RoutingAlgorithm,
        buffer_depth: int = 4,
        connected_ports: Optional[List[Direction]] = None,
    ):
        self.coordinate = coordinate
        self.routing = routing
        self.buffer_depth = buffer_depth
        if connected_ports is None:
            connected_ports = list(ALL_PORTS)
        if Direction.LOCAL not in connected_ports:
            connected_ports = [Direction.LOCAL] + list(connected_ports)
        self.connected_ports: Tuple[Direction, ...] = tuple(connected_ports)

        self.input_buffers: Dict[Direction, FlitBuffer] = {
            port: FlitBuffer(buffer_depth) for port in self.connected_ports
        }
        self.output_ports: Dict[Direction, _OutputPort] = {
            port: _OutputPort(CreditCounter(buffer_depth)) for port in self.connected_ports
        }
        # Cached routing decision for the packet at the head of each input FIFO.
        self._head_route: Dict[Direction, Optional[Direction]] = {
            port: None for port in self.connected_ports
        }
        # Round-robin pointer per output port for fair switch allocation.
        self._rr_pointer: Dict[Direction, int] = {port: 0 for port in self.connected_ports}
        self.activity = RouterActivity()

    # ------------------------------------------------------------------
    # Buffer interface used by the network
    # ------------------------------------------------------------------
    def can_accept(self, port: Direction) -> bool:
        """True when the input buffer on ``port`` has a free slot."""
        return not self.input_buffers[port].is_full

    def accept_flit(self, port: Direction, flit: Flit) -> None:
        """Write an arriving flit into the input buffer on ``port``."""
        self.input_buffers[port].push(flit)
        self.activity.buffer_writes += 1

    def buffered_flits(self) -> int:
        """Total number of flits currently buffered in this router."""
        return sum(buf.occupancy for buf in self.input_buffers.values())

    # ------------------------------------------------------------------
    # Per-cycle operation
    # ------------------------------------------------------------------
    def compute_routes(self) -> None:
        """Route computation stage for head flits lacking a decision."""
        for port in self.connected_ports:
            buf = self.input_buffers[port]
            head = buf.peek()
            if head is None:
                self._head_route[port] = None
                continue
            if self._head_route[port] is None:
                if head.is_head:
                    out = self.routing.route(self.coordinate, head.destination)
                    self._head_route[port] = out
                    self.activity.headers_decoded += 1
                else:
                    # Body/tail flit follows the wormhole its head opened.
                    owner_out = self._find_owned_output(port)
                    self._head_route[port] = owner_out

    def _find_owned_output(self, in_dir: Direction) -> Optional[Direction]:
        for out_dir, state in self.output_ports.items():
            if state.owner == in_dir:
                return out_dir
        return None

    def allocate_switch(self) -> List[Forward]:
        """Switch-allocation stage: pick at most one winner per output port."""
        requests: Dict[Direction, List[Direction]] = {}
        for in_dir in self.connected_ports:
            buf = self.input_buffers[in_dir]
            head = buf.peek()
            out_dir = self._head_route[in_dir]
            if head is None or out_dir is None:
                continue
            out_state = self.output_ports[out_dir]
            # A wormhole already held by another input blocks this request.
            if out_state.owner is not None and out_state.owner != in_dir:
                continue
            if not out_state.credits.has_credit and out_dir != Direction.LOCAL:
                continue
            requests.setdefault(out_dir, []).append(in_dir)

        forwards: List[Forward] = []
        for out_dir, contenders in requests.items():
            self.activity.arbitration_rounds += 1
            winner = self._arbitrate(out_dir, contenders)
            flit = self.input_buffers[winner].pop()
            self.activity.buffer_reads += 1
            self.activity.crossbar_traversals += 1
            self.activity.flits_routed += 1
            out_state = self.output_ports[out_dir]
            if flit.is_head:
                out_state.owner = winner
            if flit.is_tail:
                out_state.owner = None
            if out_dir != Direction.LOCAL:
                out_state.credits.consume()
                self.activity.link_traversals += 1
            self._head_route[winner] = None
            forwards.append(Forward(router=self, in_dir=winner, out_dir=out_dir, flit=flit))
        return forwards

    def _arbitrate(self, out_dir: Direction, contenders: List[Direction]) -> Direction:
        """Round-robin arbitration among the contending input ports."""
        if len(contenders) == 1:
            return contenders[0]
        order = list(self.connected_ports)
        start = self._rr_pointer[out_dir]
        rotated = order[start:] + order[:start]
        for candidate in rotated:
            if candidate in contenders:
                self._rr_pointer[out_dir] = (order.index(candidate) + 1) % len(order)
                return candidate
        return contenders[0]  # pragma: no cover - defensive

    def credit_return(self, out_dir: Direction) -> None:
        """Return one credit for ``out_dir`` (downstream buffer drained a flit)."""
        self.output_ports[out_dir].credits.release()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all buffered flits and restore credits (between experiments)."""
        for port in self.connected_ports:
            self.input_buffers[port].clear()
            self.output_ports[port] = _OutputPort(CreditCounter(self.buffer_depth))
            self._head_route[port] = None
            self._rr_pointer[port] = 0
        self.activity.reset()

    def is_idle(self) -> bool:
        """True when no flits are buffered and no wormholes are held."""
        if any(not buf.is_empty for buf in self.input_buffers.values()):
            return False
        return all(state.owner is None for state in self.output_ports.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Router{self.coordinate}"
