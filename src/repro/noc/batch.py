"""Batched latency-curve evaluation on the vector NoC engine.

The classic NoC characterisation — average latency versus offered load —
used to be a Python loop running one simulation per injection rate.  The
:class:`~repro.noc.vector.VectorNetwork` holds *many independent lanes* in
one stacked state array, so the whole curve is ONE vectorized run: every
injection rate becomes a lane, the cycle kernel advances all of them
together, and the marginal cost of an extra point is a slightly larger
array operation instead of a whole extra simulation.

:func:`latency_curve` is the high-level entry point (used by
``benchmarks/bench_noc_throughput.py`` and the scenario cost hooks);
:func:`run_schedules` is the lane-level primitive for callers that already
hold :class:`~repro.noc.schedule.TrafficSchedule` arrays — e.g. sweeping
*patterns* at a fixed rate, or replaying many migration windows at once.

The default rate grid spans up to ~1.3x the analytic
:func:`~repro.noc.analytic.saturation_rate`: dense enough to resolve the
knee, capped so the post-measurement drain (which runs until the slowest
lane empties) stays bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .analytic import saturation_rate
from .schedule import TrafficSchedule
from .simulator import SimulationResult
from .topology import MeshTopology
from .traffic import make_traffic
from .vector import VectorNetwork

__all__ = ["LatencyCurve", "default_rate_grid", "latency_curve", "run_schedules"]


def run_schedules(
    topology: MeshTopology,
    schedules: Sequence[TrafficSchedule],
    *,
    routing: str = "xy",
    buffer_depth: int = 4,
    cycles: int,
    warmup_cycles: int = 0,
    drain: bool = True,
    drain_limit: int = 200_000,
) -> List[SimulationResult]:
    """Run many schedules as lanes of one vector engine, one result each.

    Semantics per lane match ``NocSimulator.run_traffic`` exactly: warm-up,
    measurement reset, ``cycles`` measured cycles, then a drain during
    which each lane's cycle counter freezes as soon as it empties.
    """
    horizon = warmup_cycles + cycles
    net = VectorNetwork(
        topology,
        [schedule.limited_to(horizon) for schedule in schedules],
        routing=routing,
        buffer_depth=buffer_depth,
    )
    net.run(warmup_cycles)
    net.reset_measurement()
    net.run(cycles)
    if drain:
        net.drain(max_cycles=drain_limit)
    net.write_back_packets()
    results = []
    for lane in range(len(schedules)):
        stats = net.lane_stats(lane)
        results.append(
            SimulationResult(
                cycles=stats.cycles,
                stats=stats,
                router_activity=net.lane_activity(lane),
                link_flits=net.lane_link_flits(lane),
                drained=drain,
            )
        )
    return results


@dataclass
class LatencyCurve:
    """Latency-vs-offered-load sweep produced by :func:`latency_curve`."""

    pattern: str
    injection_rates: np.ndarray
    avg_latency: np.ndarray
    throughput_flits_per_cycle: np.ndarray
    results: List[SimulationResult] = field(repr=False)

    @property
    def num_points(self) -> int:
        return int(self.injection_rates.size)

    def saturation_estimate(self, threshold: float = 3.0) -> float:
        """First rate whose latency exceeds ``threshold`` x zero-load latency.

        Returns the largest swept rate if the curve never crosses — the
        sweep then ended below saturation.
        """
        base = float(self.avg_latency[0])
        above = np.nonzero(self.avg_latency > threshold * base)[0]
        if above.size == 0:
            return float(self.injection_rates[-1])
        return float(self.injection_rates[above[0]])


def default_rate_grid(
    topology: MeshTopology,
    pattern: str = "uniform",
    *,
    num_points: int = 32,
    packet_size_flits: int = 4,
    routing: str = "xy",
    span: float = 1.3,
    **pattern_kwargs,
) -> np.ndarray:
    """Dense injection-rate grid from near zero to ``span`` x saturation.

    The cap matters for wall-clock: the drain phase runs until the most
    congested lane empties, so sweeping far past saturation buys hundreds
    of drain cycles for no extra information about the knee.
    """
    sat = saturation_rate(
        topology,
        pattern,
        packet_size_flits=packet_size_flits,
        routing=routing,
        **pattern_kwargs,
    )
    return np.linspace(0.005, span * sat, num_points)


def latency_curve(
    topology: MeshTopology,
    pattern: str = "uniform",
    injection_rates: Optional[Sequence[float]] = None,
    *,
    cycles: int = 600,
    warmup_cycles: int = 100,
    packet_size_flits: int = 4,
    routing: str = "xy",
    buffer_depth: int = 4,
    seed: Optional[int] = 0,
    drain: bool = True,
    drain_limit: int = 200_000,
    **pattern_kwargs,
) -> LatencyCurve:
    """Sweep a traffic pattern over injection rates in one batched run.

    Each rate gets its own lane (and its own seed offset, so lanes are
    statistically independent); traffic is pregenerated with the numpy
    ``schedule()`` path.  Returns per-point averages plus the full
    :class:`~repro.noc.simulator.SimulationResult` list for callers that
    need activity counters or per-class latencies.
    """
    if injection_rates is None:
        injection_rates = default_rate_grid(
            topology,
            pattern,
            packet_size_flits=packet_size_flits,
            routing=routing,
            **pattern_kwargs,
        )
    rates = np.asarray(injection_rates, dtype=np.float64)
    horizon = warmup_cycles + cycles
    schedules = []
    for index, rate in enumerate(rates):
        generator = make_traffic(
            pattern,
            topology,
            float(rate),
            packet_size_flits=packet_size_flits,
            seed=None if seed is None else seed + index,
            **pattern_kwargs,
        )
        schedules.append(generator.schedule(horizon))
    results = run_schedules(
        topology,
        schedules,
        routing=routing,
        buffer_depth=buffer_depth,
        cycles=cycles,
        warmup_cycles=warmup_cycles,
        drain=drain,
        drain_limit=drain_limit,
    )
    return LatencyCurve(
        pattern=pattern,
        injection_rates=rates,
        avg_latency=np.array([r.average_latency for r in results]),
        throughput_flits_per_cycle=np.array(
            [r.throughput_flits_per_cycle for r in results]
        ),
        results=results,
    )
