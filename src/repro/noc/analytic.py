"""Analytic wormhole latency model — the closed-form fast path.

Below saturation, the average packet latency of a wormhole mesh is well
approximated by an M/D/1-style queueing model (Dally & Towles ch. 23;
Agarwal's mesh analysis): each packet pays its zero-load latency plus a
waiting term at every channel it acquires along the route.

* **Zero-load latency** of an ``H``-hop, ``L``-flit packet is ``H + L + 1``
  cycles in this router (one cycle per hop for the head, ``L - 1`` cycles of
  pipeline drain for the body, one ejection cycle).  This matches the vector
  engine's measured latency at vanishing load exactly.
* **Channel waiting**: a channel (an output port of some router, including
  the ejection port at the destination) serves one packet per ``L`` cycles.
  The M/D/1 waiting time is ``W_c = rho_c * L / (2 * (1 - rho_c))`` with
  utilisation ``rho_c = lambda_c * L``.  The arrivals are superpositions of
  thinned Bernoulli flows — less bursty than Poisson, burstier than a
  single Bernoulli stream — so the wait is scaled by
  :data:`ARRIVAL_DISCRETISATION`, the midpoint of the Poisson (``1``) and
  discrete-time Geo/D/1 (``1 - 1/L``) limits, calibrated once against the
  event engine (``tests/noc/test_analytic.py`` pins the agreement).
* **Channel loads** come from the same deterministic route tables the cycle
  engines use: every source/destination flow is walked through the route
  LUT, accumulating its probability on each traversed link plus the
  ejection channel.  ``capacity_rate`` is the injection rate at which the
  most-loaded channel reaches unit utilisation — an upper bound no wormhole
  router attains.  With ``buffer_depth == packet_size`` (one packet per
  input buffer) head-of-line blocking caps achievable channel utilisation
  at roughly half of capacity (measured 0.53x on 4x4, 0.50x on 5x5
  uniform), so the reported ``saturation_rate`` is
  ``WORMHOLE_BLOCKING_FACTOR * capacity_rate`` and the model is validated
  below it.

The model is *per flow* exact about paths (it uses the real routing
function, not a uniform-distance approximation), so it tracks pattern
asymmetries — hotspot ejection bottlenecks, transpose's silent diagonal —
that a generic formula misses.  For the stochastic patterns (uniform,
hotspot, neighbor) agreement with the event-driven engines is pinned to
<10% mean latency below ~0.85x ``saturation_rate`` by
``tests/noc/test_analytic.py``.  Deterministic permutations (transpose,
bit-complement) see smoother per-channel arrivals than the queueing model
assumes, so there it is a conservative upper bound rather than a tight
estimate — use the batched event engine for those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .routing import make_routing
from .topology import MeshTopology
from .vector import _LOCAL, _MeshTables

__all__ = [
    "ARRIVAL_DISCRETISATION",
    "WORMHOLE_BLOCKING_FACTOR",
    "AnalyticPoint",
    "analytic_curve",
    "analytic_latency",
    "destination_probabilities",
    "saturation_rate",
]

#: Wait-time scale between the Poisson (1.0) and Geo/D/1 (1 - 1/L) limits.
ARRIVAL_DISCRETISATION = 0.875

#: Fraction of raw channel capacity a single-packet-buffer wormhole router
#: sustains before head-of-line blocking saturates it.
WORMHOLE_BLOCKING_FACTOR = 0.5


# ----------------------------------------------------------------------
# Destination probability matrices (one row per source node)
# ----------------------------------------------------------------------
def destination_probabilities(
    pattern: str,
    topology: MeshTopology,
    *,
    hotspots: Optional[Sequence[Tuple[int, int]]] = None,
    hotspot_fraction: float = 0.5,
    **_ignored,
) -> np.ndarray:
    """``P[s, d]`` = probability an injection slot at ``s`` targets ``d``.

    Rows mirror the generators in :mod:`repro.noc.traffic`: the diagonal is
    zero, and rows may sum to less than one for patterns that drop slots
    (a transpose diagonal node never sends, so its row is all zero).
    """
    n = topology.num_nodes
    probs = np.zeros((n, n), dtype=np.float64)
    if pattern == "uniform":
        probs[:] = 1.0 / (n - 1)
        np.fill_diagonal(probs, 0.0)
    elif pattern == "transpose":
        for s in range(n):
            x, y = topology.coordinate(s)
            if topology.contains((y, x)) and (y, x) != (x, y):
                probs[s, topology.node_id((y, x))] = 1.0
    elif pattern == "bit-complement":
        for s in range(n):
            x, y = topology.coordinate(s)
            d = (topology.width - 1 - x, topology.height - 1 - y)
            if d != (x, y):
                probs[s, topology.node_id(d)] = 1.0
    elif pattern == "neighbor":
        for s in range(n):
            neighbors = list(topology.neighbors(topology.coordinate(s)).values())
            for coord in neighbors:
                probs[s, topology.node_id(coord)] = 1.0 / len(neighbors)
    elif pattern == "hotspot":
        if not hotspots:
            raise ValueError("hotspot pattern needs hotspots=[(x, y), ...]")
        uniform = np.full((n, n), 1.0 / (n - 1))
        np.fill_diagonal(uniform, 0.0)
        spot_ids = [topology.node_id(s) for s in hotspots]
        for s in range(n):
            candidates = [d for d in spot_ids if d != s]
            frac = hotspot_fraction if candidates else 0.0
            probs[s] = (1.0 - frac) * uniform[s]
            for d in candidates:
                probs[s, d] += frac / len(candidates)
    else:
        raise ValueError(f"unknown traffic pattern {pattern!r}")
    return probs


# ----------------------------------------------------------------------
# Route walking: flows -> channel loads
# ----------------------------------------------------------------------
def _flow_channels(
    topology: MeshTopology, routing: str
) -> "Dict[Tuple[int, int], List[int]]":
    """Channel indices traversed by every source->destination flow.

    A channel is an output port of a router: ``node * 5 + port`` for link
    channels, and the destination's LOCAL port for the ejection channel.
    The walk uses the same route LUT the vector engine precomputes, so the
    paths are exactly the deterministic routes of the cycle engines.
    """
    tables = _MeshTables(topology, make_routing(routing, topology))
    n = topology.num_nodes
    flows: "Dict[Tuple[int, int], List[int]]" = {}
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            node, channels = s, []
            while node != d:
                port = int(tables.route_lut[node, d])
                channels.append(node * 5 + port)
                node = int(tables.neighbor[node, port])
            channels.append(d * 5 + _LOCAL)  # ejection channel
            flows[(s, d)] = channels
    return flows


@dataclass
class AnalyticPoint:
    """Closed-form latency estimate at one injection rate.

    ``saturated`` flags rates beyond the blocking-corrected
    ``saturation_rate`` where the model is not validated; ``avg_latency``
    only becomes infinite past ``capacity_rate`` (utilisation >= 1).
    """

    injection_rate: float
    avg_latency: float
    saturation_rate: float
    capacity_rate: float
    saturated: bool
    max_channel_utilisation: float

    @property
    def finite(self) -> bool:
        return np.isfinite(self.avg_latency)


class _AnalyticModel:
    """Pattern/topology-specific pieces that do not depend on the rate."""

    def __init__(
        self,
        topology: MeshTopology,
        pattern: str,
        packet_size_flits: int,
        routing: str,
        **pattern_kwargs,
    ):
        self.packet_size_flits = packet_size_flits
        probs = destination_probabilities(pattern, topology, **pattern_kwargs)
        flows = _flow_channels(topology, routing)
        n = topology.num_nodes
        # Per-unit-rate packet load on every channel.
        loads = np.zeros(n * 5, dtype=np.float64)
        self.flow_probs: List[float] = []
        self.flow_channels: List[np.ndarray] = []
        self.flow_hops: List[int] = []
        for (s, d), channels in flows.items():
            p = probs[s, d]
            if p <= 0.0:
                continue
            idx = np.asarray(channels, dtype=np.int64)
            loads[idx] += p
            self.flow_probs.append(p)
            self.flow_channels.append(idx)
            self.flow_hops.append(len(channels) - 1)  # last entry is ejection
        if not self.flow_probs:
            raise ValueError("traffic pattern generates no packets on this mesh")
        self.unit_loads = loads
        self.capacity_rate = 1.0 / (packet_size_flits * float(loads.max()))
        self.saturation_rate = WORMHOLE_BLOCKING_FACTOR * self.capacity_rate

    def evaluate(self, injection_rate: float) -> AnalyticPoint:
        size = self.packet_size_flits
        util = injection_rate * size * self.unit_loads
        max_util = float(util.max())
        if max_util >= 1.0:
            return AnalyticPoint(
                injection_rate=injection_rate,
                avg_latency=float("inf"),
                saturation_rate=self.saturation_rate,
                capacity_rate=self.capacity_rate,
                saturated=True,
                max_channel_utilisation=max_util,
            )
        # M/D/1 waiting time per channel, deterministic service of L cycles,
        # scaled for the discrete (sub-Poisson) arrival process.
        wait = ARRIVAL_DISCRETISATION * util * size / (2.0 * (1.0 - util))
        total_p = total_latency = 0.0
        for p, channels, hops in zip(
            self.flow_probs, self.flow_channels, self.flow_hops
        ):
            zero_load = hops + size + 1
            total_latency += p * (zero_load + float(wait[channels].sum()))
            total_p += p
        return AnalyticPoint(
            injection_rate=injection_rate,
            avg_latency=total_latency / total_p,
            saturation_rate=self.saturation_rate,
            capacity_rate=self.capacity_rate,
            saturated=injection_rate >= self.saturation_rate,
            max_channel_utilisation=max_util,
        )


def analytic_latency(
    topology: MeshTopology,
    pattern: str,
    injection_rate: float,
    *,
    packet_size_flits: int = 4,
    routing: str = "xy",
    **pattern_kwargs,
) -> AnalyticPoint:
    """Closed-form average latency at one injection rate."""
    model = _AnalyticModel(
        topology, pattern, packet_size_flits, routing, **pattern_kwargs
    )
    return model.evaluate(injection_rate)


def analytic_curve(
    topology: MeshTopology,
    pattern: str,
    injection_rates: Sequence[float],
    *,
    packet_size_flits: int = 4,
    routing: str = "xy",
    **pattern_kwargs,
) -> List[AnalyticPoint]:
    """Evaluate :func:`analytic_latency` over a grid of rates.

    The pattern/topology part of the model (route walks, channel loads) is
    built once and shared across the whole grid, so the marginal cost per
    point is a handful of array operations — this is what makes the
    analytic path thousands of times faster than event simulation.
    """
    model = _AnalyticModel(
        topology, pattern, packet_size_flits, routing, **pattern_kwargs
    )
    return [model.evaluate(float(rate)) for rate in injection_rates]


def saturation_rate(
    topology: MeshTopology,
    pattern: str,
    *,
    packet_size_flits: int = 4,
    routing: str = "xy",
    **pattern_kwargs,
) -> float:
    """Injection rate at which the most-loaded channel saturates."""
    model = _AnalyticModel(
        topology, pattern, packet_size_flits, routing, **pattern_kwargs
    )
    return model.saturation_rate
