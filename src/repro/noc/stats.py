"""Network statistics: latency, throughput and per-node activity.

These counters feed two consumers:

* the *performance* side of the evaluation (throughput penalty of migration,
  Section 3 of the paper), and
* the *power* side, where per-router switching activity is converted into
  per-unit power by :mod:`repro.power`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .flit import Packet, PacketClass

Coordinate = Tuple[int, int]


@dataclass
class LatencyStats:
    """Streaming mean/max/min accumulator for packet latencies."""

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        merged = LatencyStats(count=self.count + other.count, total=self.total + other.total)
        mins = [m for m in (self.minimum, other.minimum) if m is not None]
        maxs = [m for m in (self.maximum, other.maximum) if m is not None]
        merged.minimum = min(mins) if mins else None
        merged.maximum = max(maxs) if maxs else None
        return merged


@dataclass
class NetworkStats:
    """Aggregate statistics collected over a simulation interval."""

    cycles: int = 0
    packets_injected: int = 0
    packets_ejected: int = 0
    flits_injected: int = 0
    flits_ejected: int = 0
    latency: LatencyStats = field(default_factory=LatencyStats)
    latency_by_class: Dict[PacketClass, LatencyStats] = field(default_factory=dict)
    ejected_per_node: Dict[Coordinate, int] = field(default_factory=dict)
    injected_per_node: Dict[Coordinate, int] = field(default_factory=dict)
    stalled_injections: int = 0

    def record_injection(self, packet: Packet) -> None:
        self.packets_injected += 1
        self.flits_injected += packet.size_flits
        self.injected_per_node[packet.source] = (
            self.injected_per_node.get(packet.source, 0) + 1
        )

    def record_ejection(self, packet: Packet) -> None:
        self.packets_ejected += 1
        self.flits_ejected += packet.size_flits
        self.ejected_per_node[packet.destination] = (
            self.ejected_per_node.get(packet.destination, 0) + 1
        )
        if packet.latency is not None:
            self.latency.record(packet.latency)
            per_class = self.latency_by_class.setdefault(packet.packet_class, LatencyStats())
            per_class.record(packet.latency)

    # ------------------------------------------------------------------
    @property
    def average_latency(self) -> float:
        """Mean end-to-end packet latency in cycles."""
        return self.latency.mean

    @property
    def throughput_flits_per_cycle(self) -> float:
        """Accepted traffic in flits per cycle over the measured interval."""
        if self.cycles <= 0:
            return 0.0
        return self.flits_ejected / self.cycles

    @property
    def throughput_packets_per_cycle(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.packets_ejected / self.cycles

    @property
    def in_flight_packets(self) -> int:
        """Packets injected but not yet ejected."""
        return self.packets_injected - self.packets_ejected

    def reset(self) -> None:
        self.cycles = 0
        self.packets_injected = 0
        self.packets_ejected = 0
        self.flits_injected = 0
        self.flits_ejected = 0
        self.latency = LatencyStats()
        self.latency_by_class = {}
        self.ejected_per_node = {}
        self.injected_per_node = {}
        self.stalled_injections = 0

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics (for CSV/report output)."""
        return {
            "cycles": float(self.cycles),
            "packets_injected": float(self.packets_injected),
            "packets_ejected": float(self.packets_ejected),
            "flits_ejected": float(self.flits_ejected),
            "avg_latency_cycles": self.average_latency,
            "max_latency_cycles": float(self.latency.maximum or 0.0),
            "throughput_flits_per_cycle": self.throughput_flits_per_cycle,
            "stalled_injections": float(self.stalled_injections),
        }
