"""A small discrete-event engine used above the cycle-accurate network.

The NoC itself advances in lockstep cycles, but the layers above it —
workload iteration boundaries, migration triggers, thermal sampling — are
naturally expressed as timed events.  :class:`EventQueue` provides a
deterministic priority queue of ``(time, sequence, callback)`` entries, and
:class:`SimulationClock` converts between cycles and seconds at a given clock
frequency (the paper's periods of 109/437.2/874.4 microseconds are specified
in wall-clock time, not cycles).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

EventCallback = Callable[[], None]


@dataclass(frozen=True)
class SimulationClock:
    """Conversion between simulation cycles and seconds.

    Parameters
    ----------
    frequency_hz:
        Clock frequency of the NoC.  The paper's 160 nm LDPC decoder chips
        are in the few-hundred-MHz range; the default of 500 MHz gives the
        109 us migration period a concrete cycle count (54 500 cycles).
    """

    frequency_hz: float = 500e6

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("clock frequency must be positive")

    @property
    def cycle_time_s(self) -> float:
        """Duration of one cycle in seconds."""
        return 1.0 / self.frequency_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert a duration to a whole number of cycles (rounded)."""
        return int(round(seconds * self.frequency_hz))

    def microseconds_to_cycles(self, microseconds: float) -> int:
        return self.seconds_to_cycles(microseconds * 1e-6)

    def cycles_to_microseconds(self, cycles: float) -> float:
        return self.cycles_to_seconds(cycles) * 1e6


class EventQueue:
    """Deterministic time-ordered event queue.

    Events scheduled for the same time fire in insertion order, so replays
    with the same seed are bit-identical.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, EventCallback]] = []
        self._sequence = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently executed event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_empty(self) -> bool:
        return not self._heap

    def schedule(self, time: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to run at absolute ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule event in the past ({time} < {self._now})")
        heapq.heappush(self._heap, (time, next(self._sequence), callback))

    def schedule_after(self, delay: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to run ``delay`` after the current time."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self._now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def run_next(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        self._now = time
        callback()
        return True

    def run_until(self, time: float) -> int:
        """Run all events scheduled at or before ``time``; returns the count."""
        executed = 0
        while self._heap and self._heap[0][0] <= time:
            self.run_next()
            executed += 1
        if time > self._now:
            self._now = time
        return executed

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely; returns the number of events run."""
        executed = 0
        while self._heap:
            if executed >= max_events:
                raise RuntimeError(f"event queue did not drain within {max_events} events")
            self.run_next()
            executed += 1
        return executed
