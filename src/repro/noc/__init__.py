"""Cycle-accurate 2-D mesh Network-on-Chip simulator.

This package is the substrate the paper's evaluation runs on: a wormhole,
credit-flow-controlled mesh NoC with dimension-ordered routing, synthetic and
trace-driven traffic, and per-router switching-activity counters that feed
the power and thermal models.

Three evaluation tiers, fastest first:

* :mod:`repro.noc.analytic` — closed-form M/D/1-style wormhole model
  (microseconds per point, validated below saturation);
* :mod:`repro.noc.vector` — the array-native cycle kernel, batched over
  many independent lanes (:mod:`repro.noc.batch` runs whole latency curves
  as one run);
* :class:`Network` — the seed object-graph engine, kept as the behavioural
  specification the vector kernel reproduces exactly.
"""

from .analytic import (
    AnalyticPoint,
    analytic_curve,
    analytic_latency,
    destination_probabilities,
    saturation_rate,
)
from .batch import LatencyCurve, default_rate_grid, latency_curve, run_schedules
from .buffer import BufferOverflowError, CreditCounter, FlitBuffer
from .engine import EventQueue, SimulationClock
from .flit import Flit, FlitType, Packet, PacketClass, reset_packet_ids
from .link import Link, LinkTable
from .network import Network
from .router import Router, RouterActivity
from .routing import (
    OddEvenRouting,
    RoutingAlgorithm,
    WestFirstRouting,
    XYRouting,
    YXRouting,
    available_algorithms,
    make_routing,
)
from .schedule import TrafficSchedule
from .simulator import ENGINES, NocSimulator, SimulationResult
from .stats import LatencyStats, NetworkStats
from .topology import Coordinate, Direction, MeshTopology
from .traffic import (
    BitComplementTraffic,
    HotspotTraffic,
    NeighborTraffic,
    TraceTraffic,
    TrafficGenerator,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic,
)
from .vector import VectorNetwork

__all__ = [
    "AnalyticPoint",
    "analytic_curve",
    "analytic_latency",
    "destination_probabilities",
    "saturation_rate",
    "LatencyCurve",
    "default_rate_grid",
    "latency_curve",
    "run_schedules",
    "TrafficSchedule",
    "VectorNetwork",
    "ENGINES",
    "BufferOverflowError",
    "CreditCounter",
    "FlitBuffer",
    "EventQueue",
    "SimulationClock",
    "Flit",
    "FlitType",
    "Packet",
    "PacketClass",
    "reset_packet_ids",
    "Link",
    "LinkTable",
    "Network",
    "Router",
    "RouterActivity",
    "RoutingAlgorithm",
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "OddEvenRouting",
    "make_routing",
    "available_algorithms",
    "NocSimulator",
    "SimulationResult",
    "LatencyStats",
    "NetworkStats",
    "Coordinate",
    "Direction",
    "MeshTopology",
    "TrafficGenerator",
    "UniformRandomTraffic",
    "TransposeTraffic",
    "BitComplementTraffic",
    "NeighborTraffic",
    "HotspotTraffic",
    "TraceTraffic",
    "make_traffic",
]
