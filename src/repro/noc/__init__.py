"""Cycle-accurate 2-D mesh Network-on-Chip simulator.

This package is the substrate the paper's evaluation runs on: a wormhole,
credit-flow-controlled mesh NoC with dimension-ordered routing, synthetic and
trace-driven traffic, and per-router switching-activity counters that feed
the power and thermal models.
"""

from .buffer import BufferOverflowError, CreditCounter, FlitBuffer
from .engine import EventQueue, SimulationClock
from .flit import Flit, FlitType, Packet, PacketClass, reset_packet_ids
from .link import Link, LinkTable
from .network import Network
from .router import Router, RouterActivity
from .routing import (
    OddEvenRouting,
    RoutingAlgorithm,
    WestFirstRouting,
    XYRouting,
    YXRouting,
    available_algorithms,
    make_routing,
)
from .simulator import NocSimulator, SimulationResult
from .stats import LatencyStats, NetworkStats
from .topology import Coordinate, Direction, MeshTopology
from .traffic import (
    BitComplementTraffic,
    HotspotTraffic,
    NeighborTraffic,
    TraceTraffic,
    TrafficGenerator,
    TransposeTraffic,
    UniformRandomTraffic,
    make_traffic,
)

__all__ = [
    "BufferOverflowError",
    "CreditCounter",
    "FlitBuffer",
    "EventQueue",
    "SimulationClock",
    "Flit",
    "FlitType",
    "Packet",
    "PacketClass",
    "reset_packet_ids",
    "Link",
    "LinkTable",
    "Network",
    "Router",
    "RouterActivity",
    "RoutingAlgorithm",
    "XYRouting",
    "YXRouting",
    "WestFirstRouting",
    "OddEvenRouting",
    "make_routing",
    "available_algorithms",
    "NocSimulator",
    "SimulationResult",
    "LatencyStats",
    "NetworkStats",
    "Coordinate",
    "Direction",
    "MeshTopology",
    "TrafficGenerator",
    "UniformRandomTraffic",
    "TransposeTraffic",
    "BitComplementTraffic",
    "NeighborTraffic",
    "HotspotTraffic",
    "TraceTraffic",
    "make_traffic",
]
