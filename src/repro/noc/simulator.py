"""High-level cycle-accurate simulation driver.

:class:`NocSimulator` couples a :class:`~repro.noc.network.Network` with a
traffic source (synthetic generator, trace, or the LDPC workload adapter) and
runs warm-up / measurement phases, reporting a :class:`SimulationResult` that
bundles the performance statistics and the per-router activity counters the
power model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Tuple

from .engine import SimulationClock
from .flit import Packet
from .network import Network
from .router import RouterActivity
from .stats import NetworkStats
from .topology import Coordinate, MeshTopology


class TrafficSource(Protocol):
    """Anything that can offer packets for a given cycle."""

    def packets_for_cycle(self, cycle: int) -> "list[Packet]":  # pragma: no cover
        ...


@dataclass
class SimulationResult:
    """Outcome of one simulation interval."""

    cycles: int
    stats: NetworkStats
    router_activity: Dict[Coordinate, RouterActivity]
    link_flits: int
    drained: bool

    @property
    def average_latency(self) -> float:
        return self.stats.average_latency

    @property
    def throughput_flits_per_cycle(self) -> float:
        return self.stats.throughput_flits_per_cycle

    def activity_per_node(self) -> Dict[Coordinate, int]:
        """Total switching events per router (flits routed + buffer traffic)."""
        result = {}
        for coord, activity in self.router_activity.items():
            result[coord] = (
                activity.flits_routed
                + activity.buffer_reads
                + activity.buffer_writes
                + activity.crossbar_traversals
            )
        return result


class NocSimulator:
    """Runs a network against a traffic source for a bounded interval."""

    def __init__(
        self,
        topology: MeshTopology,
        routing: str = "xy",
        buffer_depth: int = 4,
        clock: Optional[SimulationClock] = None,
    ):
        self.topology = topology
        self.network = Network(topology, routing=routing, buffer_depth=buffer_depth)
        self.clock = clock or SimulationClock()

    # ------------------------------------------------------------------
    def run_traffic(
        self,
        traffic: TrafficSource,
        cycles: int,
        warmup_cycles: int = 0,
        drain: bool = True,
        drain_limit: int = 200_000,
    ) -> SimulationResult:
        """Drive ``traffic`` through the network for ``cycles`` cycles.

        ``warmup_cycles`` are simulated before statistics collection begins so
        that latency numbers reflect steady state.  When ``drain`` is true the
        network is emptied after injection stops (and the drain cycles are
        included in the cycle count), which is how the LDPC iteration windows
        are simulated — an iteration is complete only when all its messages
        have been delivered.
        """
        network = self.network
        for cycle in range(warmup_cycles):
            for packet in traffic.packets_for_cycle(cycle):
                network.inject(packet)
            network.step()
        # Reset measurement state after warm-up but keep in-flight traffic.
        network.stats.reset()
        network.reset_activity()

        for offset in range(cycles):
            cycle = warmup_cycles + offset
            for packet in traffic.packets_for_cycle(cycle):
                network.inject(packet)
            network.step()

        drained = False
        if drain:
            network.drain(max_cycles=drain_limit)
            drained = True

        return SimulationResult(
            cycles=network.stats.cycles,
            stats=network.stats,
            router_activity=network.router_activity(),
            link_flits=network.links.total_flits(),
            drained=drained,
        )

    # ------------------------------------------------------------------
    def run_packets(
        self,
        packets: "list[Packet]",
        drain_limit: int = 500_000,
    ) -> SimulationResult:
        """Inject an explicit batch of packets at cycle zero and drain.

        The batch abstraction matches one LDPC decoding sub-iteration: all
        variable-to-check (or check-to-variable) messages are produced
        together, and the sub-iteration ends when the last one is delivered.
        """
        network = self.network
        network.stats.reset()
        network.reset_activity()
        for packet in packets:
            network.inject(packet)
        cycles = network.drain(max_cycles=drain_limit)
        # ``drain`` already stepped the network; stats.cycles tracked them.
        return SimulationResult(
            cycles=cycles,
            stats=network.stats,
            router_activity=network.router_activity(),
            link_flits=network.links.total_flits(),
            drained=True,
        )

    def reset(self) -> None:
        """Reset the underlying network to a pristine state."""
        self.network.reset()
