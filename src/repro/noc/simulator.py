"""High-level cycle-accurate simulation driver.

:class:`NocSimulator` couples a mesh network engine with a traffic source
(synthetic generator, trace, or the LDPC workload adapter) and runs warm-up /
measurement phases, reporting a :class:`SimulationResult` that bundles the
performance statistics and the per-router activity counters the power model
consumes.

Two engines are available, mirroring ``make_decoder(backend=)`` on the LDPC
side:

* ``engine="vector"`` (default) — the array-native
  :class:`~repro.noc.vector.VectorNetwork` cycle kernel.  Traffic is
  pregenerated into a :class:`~repro.noc.schedule.TrafficSchedule` (via the
  generator's numpy-native ``schedule()`` when available, else by exact
  replay of ``packets_for_cycle``) and the whole run advances with NumPy
  array operations.
* ``engine="object"`` — the seed per-cycle object loop
  (:class:`~repro.noc.network.Network`), kept as the behavioural
  specification.  The vector engine reproduces its statistics exactly on
  identical traffic (see ``tests/noc/test_vector_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Tuple

from .engine import SimulationClock
from .flit import Packet
from .network import Network
from .router import RouterActivity
from .schedule import TrafficSchedule
from .stats import NetworkStats
from .topology import Coordinate, MeshTopology
from .vector import VectorNetwork

ENGINES = ("object", "vector")


class TrafficSource(Protocol):
    """Anything that can offer packets for a given cycle."""

    def packets_for_cycle(self, cycle: int) -> "list[Packet]":  # pragma: no cover
        ...


@dataclass
class SimulationResult:
    """Outcome of one simulation interval."""

    cycles: int
    stats: NetworkStats
    router_activity: Dict[Coordinate, RouterActivity]
    link_flits: int
    drained: bool

    @property
    def average_latency(self) -> float:
        return self.stats.average_latency

    @property
    def throughput_flits_per_cycle(self) -> float:
        return self.stats.throughput_flits_per_cycle

    def activity_per_node(self) -> Dict[Coordinate, int]:
        """Total switching events per router (flits routed + buffer traffic)."""
        result = {}
        for coord, activity in self.router_activity.items():
            result[coord] = (
                activity.flits_routed
                + activity.buffer_reads
                + activity.buffer_writes
                + activity.crossbar_traversals
            )
        return result


class NocSimulator:
    """Runs a network against a traffic source for a bounded interval."""

    def __init__(
        self,
        topology: MeshTopology,
        routing: str = "xy",
        buffer_depth: int = 4,
        clock: Optional[SimulationClock] = None,
        engine: str = "vector",
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        self.topology = topology
        self.routing = routing
        self.buffer_depth = buffer_depth
        self.engine = engine
        self.network = Network(topology, routing=routing, buffer_depth=buffer_depth)
        self.clock = clock or SimulationClock()

    # ------------------------------------------------------------------
    def run_traffic(
        self,
        traffic: TrafficSource,
        cycles: int,
        warmup_cycles: int = 0,
        drain: bool = True,
        drain_limit: int = 200_000,
    ) -> SimulationResult:
        """Drive ``traffic`` through the network for ``cycles`` cycles.

        ``warmup_cycles`` are simulated before statistics collection begins so
        that latency numbers reflect steady state.  When ``drain`` is true the
        network is emptied after injection stops (and the drain cycles are
        included in the cycle count), which is how the LDPC iteration windows
        are simulated — an iteration is complete only when all its messages
        have been delivered.
        """
        if self.engine == "vector":
            return self._run_traffic_vector(
                traffic, cycles, warmup_cycles, drain, drain_limit
            )
        network = self.network
        for cycle in range(warmup_cycles):
            for packet in traffic.packets_for_cycle(cycle):
                network.inject(packet)
            network.step()
        # Reset measurement state after warm-up but keep in-flight traffic.
        network.stats.reset()
        network.reset_activity()

        for offset in range(cycles):
            cycle = warmup_cycles + offset
            for packet in traffic.packets_for_cycle(cycle):
                network.inject(packet)
            network.step()

        drained = False
        if drain:
            network.drain(max_cycles=drain_limit)
            drained = True

        return SimulationResult(
            cycles=network.stats.cycles,
            stats=network.stats,
            router_activity=network.router_activity(),
            link_flits=network.links.total_flits(),
            drained=drained,
        )

    def _run_traffic_vector(
        self,
        traffic: TrafficSource,
        cycles: int,
        warmup_cycles: int,
        drain: bool,
        drain_limit: int,
    ) -> SimulationResult:
        horizon = warmup_cycles + cycles
        schedule_fn = getattr(traffic, "schedule", None)
        if callable(schedule_fn):
            schedule = schedule_fn(horizon)
        else:
            schedule = TrafficSchedule.from_generator(traffic, self.topology, horizon)
        schedule = schedule.limited_to(horizon)

        net = VectorNetwork(
            self.topology,
            [schedule],
            routing=self.routing,
            buffer_depth=self.buffer_depth,
        )
        net.run(warmup_cycles)
        net.reset_measurement()
        net.run(cycles)
        drained = False
        if drain:
            net.drain(max_cycles=drain_limit)
            drained = True
        net.write_back_packets()
        stats = net.lane_stats(0)
        return SimulationResult(
            cycles=stats.cycles,
            stats=stats,
            router_activity=net.lane_activity(0),
            link_flits=net.lane_link_flits(0),
            drained=drained,
        )

    # ------------------------------------------------------------------
    def run_packets(
        self,
        packets: "list[Packet]",
        drain_limit: int = 500_000,
    ) -> SimulationResult:
        """Inject an explicit batch of packets at cycle zero and drain.

        The batch abstraction matches one LDPC decoding sub-iteration: all
        variable-to-check (or check-to-variable) messages are produced
        together, and the sub-iteration ends when the last one is delivered.
        """
        if self.engine == "vector":
            schedule = TrafficSchedule.from_packets(packets, self.topology, cycle=0)
            net = VectorNetwork(
                self.topology,
                [schedule],
                routing=self.routing,
                buffer_depth=self.buffer_depth,
            )
            run_cycles = net.drain(max_cycles=drain_limit)
            net.write_back_packets()
            stats = net.lane_stats(0)
            return SimulationResult(
                cycles=run_cycles,
                stats=stats,
                router_activity=net.lane_activity(0),
                link_flits=net.lane_link_flits(0),
                drained=True,
            )
        network = self.network
        network.stats.reset()
        network.reset_activity()
        for packet in packets:
            network.inject(packet)
        run_cycles = network.drain(max_cycles=drain_limit)
        # ``drain`` already stepped the network; stats.cycles tracked them.
        return SimulationResult(
            cycles=run_cycles,
            stats=network.stats,
            router_activity=network.router_activity(),
            link_flits=network.links.total_flits(),
            drained=True,
        )

    def reset(self) -> None:
        """Reset the underlying network to a pristine state.

        The vector engine builds fresh state for every run, so this only
        touches the persistent object network.
        """
        self.network.reset()
