"""Routing algorithms for the 2-D mesh NoC.

The paper's platform uses deterministic dimension-ordered routing (the usual
choice for LDPC-on-NoC designs and the one that makes the migration traffic
pattern predictable).  We provide XY and YX dimension-ordered routing plus
two classic partially-adaptive algorithms (west-first and odd-even) that are
used as substrate baselines in the NoC characterisation benchmark.

A routing function maps ``(current, destination)`` to the output
:class:`~repro.noc.topology.Direction` a head flit should take.  Adaptive
algorithms return the full set of permitted directions; the router picks the
least congested one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

from .topology import Coordinate, Direction, MeshTopology


class RoutingAlgorithm(ABC):
    """Base class for mesh routing functions."""

    name: str = "abstract"

    def __init__(self, topology: MeshTopology):
        self.topology = topology

    @abstractmethod
    def candidate_outputs(
        self, current: Coordinate, destination: Coordinate
    ) -> List[Direction]:
        """Permitted output directions for a head flit at ``current``.

        Returns ``[Direction.LOCAL]`` when the flit has arrived.
        """

    def route(self, current: Coordinate, destination: Coordinate) -> Direction:
        """Deterministic routing decision (first candidate)."""
        return self.candidate_outputs(current, destination)[0]

    def path(self, source: Coordinate, destination: Coordinate) -> List[Coordinate]:
        """Full deterministic path including both endpoints.

        Useful for computing link utilisation analytically and for the
        congestion-free migration schedule.
        """
        path = [source]
        current = source
        # A deterministic minimal route takes at most diameter hops.
        for _ in range(self.topology.diameter() + 1):
            if current == destination:
                break
            direction = self.route(current, destination)
            if direction == Direction.LOCAL:
                break
            current = self.topology.neighbor(current, direction)
            path.append(current)
        if current != destination:
            raise RuntimeError(
                f"{self.name} routing did not reach {destination} from {source}"
            )
        return path

    # ------------------------------------------------------------------
    def _productive_directions(
        self, current: Coordinate, destination: Coordinate
    ) -> List[Direction]:
        """Directions that reduce the distance to the destination."""
        dirs: List[Direction] = []
        cx, cy = current
        dx, dy = destination
        if dx > cx:
            dirs.append(Direction.EAST)
        elif dx < cx:
            dirs.append(Direction.WEST)
        if dy > cy:
            dirs.append(Direction.NORTH)
        elif dy < cy:
            dirs.append(Direction.SOUTH)
        return dirs


class XYRouting(RoutingAlgorithm):
    """Dimension-ordered routing: correct X first, then Y.

    Deadlock-free on meshes and deterministic, which the paper relies on for
    predictable traffic after a coordinate transform (the relative positions
    of communicating PEs are preserved by every migration function, so the
    route lengths are unchanged).
    """

    name = "xy"

    def candidate_outputs(
        self, current: Coordinate, destination: Coordinate
    ) -> List[Direction]:
        cx, cy = current
        dx, dy = destination
        if cx < dx:
            return [Direction.EAST]
        if cx > dx:
            return [Direction.WEST]
        if cy < dy:
            return [Direction.NORTH]
        if cy > dy:
            return [Direction.SOUTH]
        return [Direction.LOCAL]


class YXRouting(RoutingAlgorithm):
    """Dimension-ordered routing: correct Y first, then X."""

    name = "yx"

    def candidate_outputs(
        self, current: Coordinate, destination: Coordinate
    ) -> List[Direction]:
        cx, cy = current
        dx, dy = destination
        if cy < dy:
            return [Direction.NORTH]
        if cy > dy:
            return [Direction.SOUTH]
        if cx < dx:
            return [Direction.EAST]
        if cx > dx:
            return [Direction.WEST]
        return [Direction.LOCAL]


class WestFirstRouting(RoutingAlgorithm):
    """West-first turn-model routing (partially adaptive, deadlock-free).

    All westward hops must be taken first; afterwards the packet may choose
    adaptively among the remaining productive directions.
    """

    name = "west-first"

    def candidate_outputs(
        self, current: Coordinate, destination: Coordinate
    ) -> List[Direction]:
        if current == destination:
            return [Direction.LOCAL]
        productive = self._productive_directions(current, destination)
        if Direction.WEST in productive:
            return [Direction.WEST]
        return productive


class OddEvenRouting(RoutingAlgorithm):
    """Odd-even turn-model routing (partially adaptive, deadlock-free).

    Restriction (Chiu, 2000): in even columns a packet may not take an
    east-to-north or east-to-south turn's mirror — concretely, EN/ES turns
    are forbidden in even columns and NW/SW turns are forbidden in odd
    columns.  We implement the standard formulation in terms of permitted
    output directions.
    """

    name = "odd-even"

    def candidate_outputs(
        self, current: Coordinate, destination: Coordinate
    ) -> List[Direction]:
        cx, cy = current
        dx, dy = destination
        if current == destination:
            return [Direction.LOCAL]

        candidates: List[Direction] = []
        ex = dx - cx
        ey = dy - cy

        if ex == 0:
            # Same column: move vertically.
            candidates.append(Direction.NORTH if ey > 0 else Direction.SOUTH)
            return candidates

        if ex > 0:
            # Destination to the east.
            if ey == 0:
                candidates.append(Direction.EAST)
            else:
                # Turns from east to north/south are only allowed in odd
                # columns or when the packet is in the destination column - 1.
                if cx % 2 == 1 or cx == dx - 1:
                    candidates.append(Direction.NORTH if ey > 0 else Direction.SOUTH)
                candidates.append(Direction.EAST)
        else:
            # Destination to the west: NW/SW turns only allowed in even columns.
            candidates.append(Direction.WEST)
            if ey != 0 and cx % 2 == 0:
                candidates.append(Direction.NORTH if ey > 0 else Direction.SOUTH)

        if not candidates:
            candidates = self._productive_directions(current, destination)
        return candidates


_ALGORITHMS = {
    "xy": XYRouting,
    "yx": YXRouting,
    "west-first": WestFirstRouting,
    "odd-even": OddEvenRouting,
}


def make_routing(name: str, topology: MeshTopology) -> RoutingAlgorithm:
    """Factory for routing algorithms by name.

    Parameters
    ----------
    name:
        One of ``"xy"``, ``"yx"``, ``"west-first"``, ``"odd-even"``.
    """
    try:
        cls = _ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown routing algorithm {name!r}; choose from {sorted(_ALGORITHMS)}"
        ) from None
    return cls(topology)


def available_algorithms() -> Tuple[str, ...]:
    """Names accepted by :func:`make_routing`."""
    return tuple(sorted(_ALGORITHMS))
