"""Array-form packet schedules for the vector NoC engine.

A :class:`TrafficSchedule` is the struct-of-arrays equivalent of a list of
:class:`~repro.noc.flit.Packet` objects: one row per packet, holding the
offer cycle, source/destination node ids, flit count and traffic class.  It
is the interchange format between traffic generation and the
:class:`~repro.noc.vector.VectorNetwork` cycle kernel — generators
pregenerate their whole schedule once per run instead of materialising
Packet/Flit objects cycle by cycle.

Schedules can be built three ways:

* :meth:`TrafficSchedule.from_packets` — from explicit ``Packet`` objects
  (the LDPC workload adapter and migration replay path).  The original
  objects are retained so the engine can write ``injection_cycle`` /
  ``ejection_cycle`` back after a run.
* :meth:`TrafficSchedule.from_generator` — exact replay of a seed
  per-cycle :class:`~repro.noc.traffic.TrafficGenerator`: the generator's
  RNG is consumed in the identical order, so the schedule matches the
  object engine's traffic packet for packet.
* ``generator.schedule(cycles)`` — the numpy-native fast path (one RNG
  construction per run; see :mod:`repro.noc.traffic`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .flit import Packet, PacketClass
from .topology import MeshTopology

#: Integer codes for PacketClass stored in schedule arrays.
PACKET_CLASS_CODES = {cls: index for index, cls in enumerate(PacketClass)}
PACKET_CLASS_FROM_CODE = {index: cls for cls, index in PACKET_CLASS_CODES.items()}


@dataclass
class TrafficSchedule:
    """One packet per row, in source-queue (offer) order.

    Attributes
    ----------
    cycle:
        Cycle each packet is offered to the network (``inject`` call time).
    src, dst:
        Row-major node ids of the injecting and ejecting routers.
    size:
        Total flits per packet including head and tail.
    pclass:
        Integer :data:`PACKET_CLASS_CODES` code per packet.
    packets:
        The originating ``Packet`` objects when the schedule was built from
        them (used to write latencies back), else ``None``.
    """

    cycle: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    size: np.ndarray
    pclass: np.ndarray
    packets: Optional[List[Packet]] = None

    def __post_init__(self) -> None:
        self.cycle = np.asarray(self.cycle, dtype=np.int64)
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.size = np.asarray(self.size, dtype=np.int64)
        self.pclass = np.asarray(self.pclass, dtype=np.int64)
        n = self.cycle.size
        for name in ("src", "dst", "size", "pclass"):
            if getattr(self, name).size != n:
                raise ValueError(f"schedule column {name!r} length mismatch")
        if n and self.size.min() < 1:
            raise ValueError("every packet needs at least one flit")

    # ------------------------------------------------------------------
    @property
    def num_packets(self) -> int:
        return int(self.cycle.size)

    @property
    def total_flits(self) -> int:
        return int(self.size.sum())

    def limited_to(self, max_cycle: int) -> "TrafficSchedule":
        """Schedule restricted to packets offered strictly before ``max_cycle``."""
        keep = self.cycle < max_cycle
        if keep.all():
            return self
        packets = None
        if self.packets is not None:
            packets = [p for p, k in zip(self.packets, keep) if k]
        return TrafficSchedule(
            cycle=self.cycle[keep],
            src=self.src[keep],
            dst=self.dst[keep],
            size=self.size[keep],
            pclass=self.pclass[keep],
            packets=packets,
        )

    def to_packets(self, topology: MeshTopology) -> List[Packet]:
        """Materialise ``Packet`` objects (for driving the object engine)."""
        return [
            Packet(
                source=topology.coordinate(int(s)),
                destination=topology.coordinate(int(d)),
                size_flits=int(z),
                packet_class=PACKET_CLASS_FROM_CODE[int(c)],
                injection_cycle=int(t),
            )
            for t, s, d, z, c in zip(self.cycle, self.src, self.dst, self.size, self.pclass)
        ]

    def trace_tuples(self, topology: MeshTopology) -> "list[tuple]":
        """Rows as ``(cycle, src_coord, dst_coord, size)`` tuples.

        Feed these to :class:`~repro.noc.traffic.TraceTraffic` to replay the
        exact same traffic through the object engine — the basis of the
        engine-parity tests and the benchmark baseline timing.
        """
        return [
            (int(t), topology.coordinate(int(s)), topology.coordinate(int(d)), int(z))
            for t, s, d, z in zip(self.cycle, self.src, self.dst, self.size)
        ]

    def packets_for_cycle_lists(self) -> "dict[int, list]":
        """Packets grouped by offer cycle (drives TraceTraffic-style replay)."""
        groups: "dict[int, list]" = {}
        for index in range(self.num_packets):
            groups.setdefault(int(self.cycle[index]), []).append(index)
        return groups

    # ------------------------------------------------------------------
    @classmethod
    def from_packets(
        cls,
        packets: Sequence[Packet],
        topology: MeshTopology,
        cycle: Optional[int] = None,
    ) -> "TrafficSchedule":
        """Build a schedule from explicit packets, keeping the objects.

        ``cycle`` overrides the offer cycle for every packet (``run_packets``
        injects everything at cycle zero); otherwise each packet's
        ``injection_cycle`` attribute is taken as its offer cycle.
        """
        count = len(packets)
        cycles = np.empty(count, dtype=np.int64)
        src = np.empty(count, dtype=np.int64)
        dst = np.empty(count, dtype=np.int64)
        size = np.empty(count, dtype=np.int64)
        pclass = np.empty(count, dtype=np.int64)
        for index, packet in enumerate(packets):
            cycles[index] = packet.injection_cycle if cycle is None else cycle
            src[index] = topology.node_id(packet.source)
            dst[index] = topology.node_id(packet.destination)
            size[index] = packet.size_flits
            pclass[index] = PACKET_CLASS_CODES[packet.packet_class]
        return cls(cycles, src, dst, size, pclass, packets=list(packets))

    @classmethod
    def from_generator(cls, traffic, topology: MeshTopology, cycles: int) -> "TrafficSchedule":
        """Exact pregeneration from a per-cycle traffic source.

        Calls ``packets_for_cycle`` for every cycle in order, consuming the
        source's RNG in the identical sequence the object engine would, so
        the resulting schedule is packet-for-packet identical to what the
        seed simulator sees.
        """
        packets: List[Packet] = []
        for cycle in range(cycles):
            packets.extend(traffic.packets_for_cycle(cycle))
        return cls.from_packets(packets, topology)
