"""2-D mesh topology for the Network-on-Chip.

The paper's test chips are 4x4 and 5x5 meshes of processing elements (PEs),
each PE attached to one router.  This module provides the coordinate system,
the neighbourhood relation and distance metrics used by routing, placement
and the migration transforms.

Coordinates follow the paper's convention: ``(x, y)`` with ``x`` growing to
the east (right) and ``y`` growing to the north (up).  Node ids are assigned
row-major: ``node_id = y * width + x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Iterator, List, Tuple

Coordinate = Tuple[int, int]


class Direction(IntEnum):
    """Router port directions for a 2-D mesh.

    ``LOCAL`` is the injection/ejection port connecting the router to its PE.
    """

    LOCAL = 0
    EAST = 1
    WEST = 2
    NORTH = 3
    SOUTH = 4

    @property
    def opposite(self) -> "Direction":
        """Return the direction a neighbouring router sees this link from."""
        return _OPPOSITE[self]


_OPPOSITE = {
    Direction.LOCAL: Direction.LOCAL,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}

#: Offsets applied to a coordinate when moving one hop in a direction.
DIRECTION_OFFSETS: Dict[Direction, Coordinate] = {
    Direction.EAST: (1, 0),
    Direction.WEST: (-1, 0),
    Direction.NORTH: (0, 1),
    Direction.SOUTH: (0, -1),
}


@dataclass(frozen=True)
class MeshTopology:
    """A ``width`` x ``height`` 2-D mesh.

    Parameters
    ----------
    width:
        Number of columns (extent of the ``x`` coordinate).
    height:
        Number of rows (extent of the ``y`` coordinate).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(
                f"mesh dimensions must be positive, got {self.width}x{self.height}"
            )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of routers/PEs in the mesh."""
        return self.width * self.height

    @property
    def is_square(self) -> bool:
        """True when the mesh has equal width and height."""
        return self.width == self.height

    @property
    def has_center_node(self) -> bool:
        """True for odd-by-odd meshes, which have a unique central PE.

        The paper attributes the weakness of rotation/mirroring on the 5x5
        configurations to this central PE being a fixed point.
        """
        return self.width % 2 == 1 and self.height % 2 == 1

    @property
    def center(self) -> Coordinate:
        """Geometric centre coordinate (exact only for odd dimensions)."""
        return (self.width // 2, self.height // 2)

    # ------------------------------------------------------------------
    # Coordinate <-> id conversion
    # ------------------------------------------------------------------
    def contains(self, coord: Coordinate) -> bool:
        """Return True if ``coord`` is inside the mesh."""
        x, y = coord
        return 0 <= x < self.width and 0 <= y < self.height

    def node_id(self, coord: Coordinate) -> int:
        """Row-major node id of ``coord``."""
        if not self.contains(coord):
            raise ValueError(f"coordinate {coord} outside {self.width}x{self.height} mesh")
        x, y = coord
        return y * self.width + x

    def coordinate(self, node_id: int) -> Coordinate:
        """Coordinate of a row-major ``node_id``."""
        if not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node id {node_id} outside mesh with {self.num_nodes} nodes")
        return (node_id % self.width, node_id // self.width)

    def coordinates(self) -> Iterator[Coordinate]:
        """Iterate over all coordinates in row-major order."""
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def node_ids(self) -> Iterator[int]:
        """Iterate over all node ids in row-major order."""
        return iter(range(self.num_nodes))

    # ------------------------------------------------------------------
    # Neighbourhood
    # ------------------------------------------------------------------
    def neighbor(self, coord: Coordinate, direction: Direction) -> Coordinate:
        """Coordinate one hop from ``coord`` towards ``direction``.

        Raises ``ValueError`` when the move would leave the mesh or when the
        direction is ``LOCAL``.
        """
        if direction == Direction.LOCAL:
            raise ValueError("LOCAL is not a mesh direction")
        dx, dy = DIRECTION_OFFSETS[direction]
        nxt = (coord[0] + dx, coord[1] + dy)
        if not self.contains(nxt):
            raise ValueError(f"no neighbor of {coord} towards {direction.name}")
        return nxt

    def neighbors(self, coord: Coordinate) -> Dict[Direction, Coordinate]:
        """All in-mesh neighbours of ``coord`` keyed by direction."""
        result: Dict[Direction, Coordinate] = {}
        for direction, (dx, dy) in DIRECTION_OFFSETS.items():
            nxt = (coord[0] + dx, coord[1] + dy)
            if self.contains(nxt):
                result[direction] = nxt
        return result

    def degree(self, coord: Coordinate) -> int:
        """Number of mesh links at ``coord`` (2 at corners, 4 in the middle)."""
        return len(self.neighbors(coord))

    def links(self) -> List[Tuple[Coordinate, Coordinate]]:
        """All unidirectional links as (source, destination) coordinate pairs."""
        result = []
        for coord in self.coordinates():
            for nxt in self.neighbors(coord).values():
                result.append((coord, nxt))
        return result

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def manhattan_distance(self, a: Coordinate, b: Coordinate) -> int:
        """Minimal hop count between two coordinates in a mesh."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def average_distance(self) -> float:
        """Average Manhattan distance over all ordered node pairs."""
        total = 0
        pairs = 0
        coords = list(self.coordinates())
        for a in coords:
            for b in coords:
                if a == b:
                    continue
                total += self.manhattan_distance(a, b)
                pairs += 1
        return total / pairs if pairs else 0.0

    def diameter(self) -> int:
        """Longest shortest path in hops."""
        return (self.width - 1) + (self.height - 1)

    def bisection_width(self) -> int:
        """Number of links crossing the mesh bisection (narrower dimension cut)."""
        if self.width >= self.height:
            return self.height
        return self.width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"MeshTopology({self.width}x{self.height})"
