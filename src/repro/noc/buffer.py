"""Input buffers and credit-based flow control for the NoC routers.

Each router input port owns a fixed-depth FIFO of flits.  Upstream routers
track credits (free slots) for the downstream buffer and may only forward a
flit when a credit is available; the credit returns when the downstream
router drains the flit.  This is the standard wormhole/credit scheme the
paper's cycle-accurate simulator models.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from .flit import Flit


class BufferOverflowError(RuntimeError):
    """Raised when a flit is pushed into a full buffer.

    With correct credit accounting this never happens; the exception exists
    so that flow-control bugs fail loudly instead of silently dropping flits.
    """


@dataclass
class FlitBuffer:
    """A fixed-capacity FIFO of flits attached to a router input port."""

    capacity: int
    _fifo: Deque[Flit] = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("buffer capacity must be at least one flit")

    @property
    def occupancy(self) -> int:
        """Number of flits currently stored."""
        return len(self._fifo)

    @property
    def free_slots(self) -> int:
        """Number of flits that can still be accepted."""
        return self.capacity - len(self._fifo)

    @property
    def is_empty(self) -> bool:
        return not self._fifo

    @property
    def is_full(self) -> bool:
        return len(self._fifo) >= self.capacity

    def push(self, flit: Flit) -> None:
        """Append a flit; raises :class:`BufferOverflowError` when full."""
        if self.is_full:
            raise BufferOverflowError(
                f"buffer overflow (capacity={self.capacity}) pushing {flit!r}"
            )
        self._fifo.append(flit)

    def peek(self) -> Optional[Flit]:
        """Return the flit at the head of the FIFO without removing it."""
        if not self._fifo:
            return None
        return self._fifo[0]

    def pop(self) -> Flit:
        """Remove and return the head flit."""
        if not self._fifo:
            raise IndexError("pop from empty flit buffer")
        return self._fifo.popleft()

    def clear(self) -> None:
        """Drop all buffered flits (used when resetting the network)."""
        self._fifo.clear()

    def __len__(self) -> int:
        return len(self._fifo)

    def __iter__(self):
        return iter(self._fifo)


@dataclass
class CreditCounter:
    """Credits available for the downstream buffer of one output port."""

    capacity: int
    credits: int = -1

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("credit capacity must be at least one")
        if self.credits < 0:
            self.credits = self.capacity

    @property
    def has_credit(self) -> bool:
        return self.credits > 0

    def consume(self) -> None:
        """Spend one credit when forwarding a flit downstream."""
        if self.credits <= 0:
            raise RuntimeError("credit underflow: forwarding without credit")
        self.credits -= 1

    def release(self) -> None:
        """Return one credit when the downstream buffer drains a flit."""
        if self.credits >= self.capacity:
            raise RuntimeError("credit overflow: more credits than buffer slots")
        self.credits += 1
