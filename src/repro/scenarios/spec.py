"""The declarative scenario specification.

A :class:`ScenarioSpec` is everything needed to reproduce one time-varying
experiment: which chip, which reconfiguration policy, how long, and which
patterns modulate the workload, the ambient conditions and the channel over
the horizon.  Specs are plain frozen dataclasses that round-trip through JSON
(:meth:`ScenarioSpec.to_json` / :meth:`ScenarioSpec.from_json`), so scenario
suites can live in version-controlled files and be fanned out across worker
processes untouched.

The three pattern channels:

``load``
    Multiplies the controller's per-epoch power rows (temporal patterns apply
    chip-wide; spatial patterns modulate individual PEs).  Values must be
    non-negative.
``ambient_celsius``
    Per-epoch **offsets** (deg C) of the ambient temperature relative to the
    package nominal.  Exact in both modes: in steady mode a uniform ambient
    shift moves every steady temperature by the same amount (the conduction
    block conserves energy), so the offsets are added after the one batched
    solve; in transient mode the ambient forcing is affine, so the offsets
    ride the single ``transient_sequence`` call as a per-interval boundary
    term and the RC network integrates the true time-varying ambient.
``snr_db``
    Per-epoch channel quality (absolute Eb/N0 in dB) seen by the LDPC
    workload; drives the decoder-effort estimate in the scenario report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from .patterns import Pattern, pattern_from_dict

#: Channels a spec may bind a pattern to, with whether spatial patterns are
#: permitted there (ambient and SNR are chip-global scalars).
PATTERN_CHANNELS: Dict[str, bool] = {
    "load": True,
    "ambient_celsius": False,
    "snr_db": False,
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario over a fixed horizon of migration epochs."""

    name: str
    configuration: str
    scheme: str = "xy-shift"
    period_us: float = 109.0
    mode: str = "steady"
    num_epochs: int = 41
    settle_epochs: Optional[int] = None
    thermal_method: str = "euler"
    transient_steps_per_epoch: int = 8
    include_migration_energy: bool = True
    #: Extra keyword arguments for the policy factory (e.g.
    #: ``{"trigger_celsius": 90.0}`` for a ``threshold-*`` scheme); must be
    #: JSON-serialisable.
    policy_params: Optional[Dict[str, object]] = None
    #: Feedback refresh stride *k* for thermal-feedback policies: one
    #: multi-RHS batch per ``k`` epochs (``ceil(num_epochs/k)`` feedback
    #: solves); ignored by feedback-free policies.
    feedback_stride: int = 1
    #: Zero-solve stand-in between feedback refreshes: "hold" or "previous".
    feedback_predictor: str = "hold"
    load: Optional[Pattern] = None
    ambient_celsius: Optional[Pattern] = None
    snr_db: Optional[Pattern] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.mode not in ("steady", "transient"):
            raise ValueError("mode must be 'steady' or 'transient'")
        if self.num_epochs < 1:
            raise ValueError("at least one epoch is required")
        if self.period_us <= 0:
            raise ValueError("migration period must be positive")
        if self.feedback_stride < 1:
            raise ValueError("feedback_stride must be at least 1")
        if self.feedback_predictor not in ("hold", "previous"):
            raise ValueError("feedback_predictor must be 'hold' or 'previous'")
        if self.policy_params is not None and not isinstance(self.policy_params, dict):
            raise TypeError("policy_params must be a dict of keyword arguments")
        for channel, allow_spatial in PATTERN_CHANNELS.items():
            pattern = getattr(self, channel)
            if pattern is None:
                continue
            if not isinstance(pattern, Pattern):
                raise TypeError(f"{channel} must be a Pattern, got {type(pattern)}")
            if pattern.is_spatial and not allow_spatial:
                raise ValueError(
                    f"{channel} is a chip-global channel; spatial patterns "
                    "are only valid for 'load'"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "configuration": self.configuration,
            "scheme": self.scheme,
            "period_us": self.period_us,
            "mode": self.mode,
            "num_epochs": self.num_epochs,
            "settle_epochs": self.settle_epochs,
            "thermal_method": self.thermal_method,
            "transient_steps_per_epoch": self.transient_steps_per_epoch,
            "include_migration_energy": self.include_migration_energy,
            "policy_params": (
                dict(self.policy_params) if self.policy_params is not None else None
            ),
            "feedback_stride": self.feedback_stride,
            "feedback_predictor": self.feedback_predictor,
            "description": self.description,
        }
        for channel in PATTERN_CHANNELS:
            pattern = getattr(self, channel)
            payload[channel] = pattern.to_dict() if pattern is not None else None
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        params = dict(payload)
        for channel in PATTERN_CHANNELS:
            value = params.get(channel)
            if value is not None:
                params[channel] = pattern_from_dict(value)  # type: ignore[arg-type]
        unknown = set(params) - {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**params)  # type: ignore[arg-type]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))
