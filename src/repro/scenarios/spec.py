"""The declarative scenario specification.

A :class:`ScenarioSpec` is everything needed to reproduce one time-varying
experiment: which chip, which reconfiguration policy, how long, and which
patterns modulate the workload, the ambient conditions and the channel over
the horizon.  Specs are plain frozen dataclasses that round-trip through JSON
(:meth:`ScenarioSpec.to_json` / :meth:`ScenarioSpec.from_json`), so scenario
suites can live in version-controlled files and be fanned out across worker
processes untouched.

The four pattern channels:

``load``
    Multiplies the controller's per-epoch power rows (temporal patterns apply
    chip-wide; spatial patterns modulate individual PEs).  Values must be
    non-negative.
``ambient_celsius``
    Per-epoch **offsets** (deg C) of the ambient temperature relative to the
    package nominal.  Exact in both modes: in steady mode a uniform ambient
    shift moves every steady temperature by the same amount (the conduction
    block conserves energy), so the offsets are added after the one batched
    solve; in transient mode the ambient forcing is affine, so the offsets
    ride the single ``transient_sequence`` call as a per-interval boundary
    term and the RC network integrates the true time-varying ambient.
``snr_db``
    Per-epoch channel quality (absolute Eb/N0 in dB) seen by the LDPC
    workload; drives the decoder-effort estimate in the scenario report.
``period``
    Per-epoch **multipliers** of the nominal migration period
    ``period_us`` — a time-varying reconfiguration cadence (e.g. migrate
    less often at night).  Wrap the pattern in a
    :class:`~repro.scenarios.patterns.WallClockPattern` to author the
    schedule on a wall-clock seconds axis; the compiler binds the epoch
    duration from ``period_us``.  Values must be positive.

A structured fifth channel prices the on-chip network:

``noc``
    A :class:`NocChannel` — which traffic pattern the workload offers the
    NoC (uniform, hotspot, transpose, neighbor, ...) and how the per-node
    injection rate moves over the horizon (either its own temporal
    :class:`~repro.scenarios.patterns.Pattern` or, by default, tracking the
    ``load`` channel's epoch means).  Priced per epoch by the cached
    closed-form model in :mod:`repro.noc.analytic` at zero extra solves.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..migration.plan import MIGRATION_STYLES
from .patterns import Pattern, pattern_from_dict

#: Channels a spec may bind a pattern to, with whether spatial patterns are
#: permitted there (ambient, SNR and the period schedule are chip-global
#: scalars).
PATTERN_CHANNELS: Dict[str, bool] = {
    "load": True,
    "ambient_celsius": False,
    "snr_db": False,
    "period": False,
}


#: Traffic patterns the analytic NoC model understands.
NOC_TRAFFIC_PATTERNS = ("uniform", "hotspot", "transpose", "bit-complement", "neighbor")


@dataclass(frozen=True)
class NocChannel:
    """The scenario's offered load on the on-chip network.

    ``traffic`` is the spatial shape (who talks to whom), ``injection_rate``
    the nominal per-node flit-injection probability per cycle, and
    ``rate_pattern`` an optional temporal pattern *multiplying* that nominal
    rate per epoch.  Without a rate pattern the NoC tracks the scenario's
    ``load`` channel: each epoch's mean load modulation scales the base
    rate, so compute bursts congest the network too.
    """

    traffic: str = "uniform"
    injection_rate: float = 0.05
    rate_pattern: Optional[Pattern] = None
    packet_size_flits: int = 4
    routing: str = "xy"
    #: Extra traffic-pattern arguments (e.g. ``{"hotspots": [[1, 1]]}``);
    #: must be JSON-serialisable.
    traffic_kwargs: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.traffic not in NOC_TRAFFIC_PATTERNS:
            raise ValueError(
                f"unknown NoC traffic pattern {self.traffic!r}; "
                f"choose from {', '.join(NOC_TRAFFIC_PATTERNS)}"
            )
        if self.injection_rate <= 0:
            raise ValueError("injection_rate must be positive")
        if self.packet_size_flits < 1:
            raise ValueError("packets need at least one flit")
        if self.rate_pattern is not None:
            if not isinstance(self.rate_pattern, Pattern):
                raise TypeError(
                    f"rate_pattern must be a Pattern, got {type(self.rate_pattern)}"
                )
            if self.rate_pattern.is_spatial:
                raise ValueError(
                    "the NoC injection rate is chip-global; spatial patterns "
                    "are only valid for 'load'"
                )
        if self.traffic_kwargs is not None and not isinstance(self.traffic_kwargs, dict):
            raise TypeError("traffic_kwargs must be a dict of keyword arguments")

    def to_dict(self) -> Dict[str, object]:
        return {
            "traffic": self.traffic,
            "injection_rate": self.injection_rate,
            "rate_pattern": (
                self.rate_pattern.to_dict() if self.rate_pattern is not None else None
            ),
            "packet_size_flits": self.packet_size_flits,
            "routing": self.routing,
            "traffic_kwargs": (
                dict(self.traffic_kwargs) if self.traffic_kwargs is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "NocChannel":
        params = dict(payload)
        unknown = set(params) - {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        if unknown:
            raise ValueError(f"unknown NoC channel fields: {sorted(unknown)}")
        pattern = params.get("rate_pattern")
        if pattern is not None:
            params["rate_pattern"] = pattern_from_dict(pattern)  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario over a fixed horizon of migration epochs."""

    name: str
    configuration: str
    scheme: str = "xy-shift"
    period_us: float = 109.0
    mode: str = "steady"
    num_epochs: int = 41
    settle_epochs: Optional[int] = None
    thermal_method: str = "euler"
    transient_steps_per_epoch: int = 8
    include_migration_energy: bool = True
    #: Extra keyword arguments for the policy factory (e.g.
    #: ``{"trigger_celsius": 90.0}`` for a ``threshold-*`` scheme); must be
    #: JSON-serialisable.
    policy_params: Optional[Dict[str, object]] = None
    #: Feedback refresh stride *k* for thermal-feedback policies: one
    #: multi-RHS batch per ``k`` epochs (``ceil(num_epochs/k)`` feedback
    #: solves); ignored by feedback-free policies.
    feedback_stride: int = 1
    #: Zero-solve stand-in between feedback refreshes: "hold" or "previous".
    feedback_predictor: str = "hold"
    #: How migrations unfold over epochs: ``"sudden"`` (the paper's atomic
    #: swap), ``"fluid"`` (a few permutation cycles per epoch) or
    #: ``"batched"`` (link-disjoint phase groups, one per epoch).
    migration_style: str = "sudden"
    #: Fluid-style budget: permutation cycles relocated per epoch.
    units_per_epoch: int = 2
    load: Optional[Pattern] = None
    ambient_celsius: Optional[Pattern] = None
    snr_db: Optional[Pattern] = None
    #: Per-epoch multipliers of ``period_us`` (the migration-period
    #: schedule channel).
    period: Optional[Pattern] = None
    #: Offered NoC load (traffic pattern + injection-rate schedule), priced
    #: per epoch by the cached analytic wormhole model.
    noc: Optional[NocChannel] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.mode not in ("steady", "transient"):
            raise ValueError("mode must be 'steady' or 'transient'")
        if self.num_epochs < 1:
            raise ValueError("at least one epoch is required")
        if self.period_us <= 0:
            raise ValueError("migration period must be positive")
        if self.feedback_stride < 1:
            raise ValueError("feedback_stride must be at least 1")
        if self.feedback_predictor not in ("hold", "previous"):
            raise ValueError("feedback_predictor must be 'hold' or 'previous'")
        if self.policy_params is not None and not isinstance(self.policy_params, dict):
            raise TypeError("policy_params must be a dict of keyword arguments")
        if self.migration_style not in MIGRATION_STYLES:
            raise ValueError(
                f"unknown migration_style {self.migration_style!r}; "
                f"choose from {', '.join(MIGRATION_STYLES)}"
            )
        if self.units_per_epoch < 1:
            raise ValueError("units_per_epoch must be at least 1")
        for channel, allow_spatial in PATTERN_CHANNELS.items():
            pattern = getattr(self, channel)
            if pattern is None:
                continue
            if not isinstance(pattern, Pattern):
                raise TypeError(f"{channel} must be a Pattern, got {type(pattern)}")
            if pattern.is_spatial and not allow_spatial:
                raise ValueError(
                    f"{channel} is a chip-global channel; spatial patterns "
                    "are only valid for 'load'"
                )
        if self.noc is not None and not isinstance(self.noc, NocChannel):
            raise TypeError(f"noc must be a NocChannel, got {type(self.noc)}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "configuration": self.configuration,
            "scheme": self.scheme,
            "period_us": self.period_us,
            "mode": self.mode,
            "num_epochs": self.num_epochs,
            "settle_epochs": self.settle_epochs,
            "thermal_method": self.thermal_method,
            "transient_steps_per_epoch": self.transient_steps_per_epoch,
            "include_migration_energy": self.include_migration_energy,
            "policy_params": (
                dict(self.policy_params) if self.policy_params is not None else None
            ),
            "feedback_stride": self.feedback_stride,
            "feedback_predictor": self.feedback_predictor,
            "migration_style": self.migration_style,
            "units_per_epoch": self.units_per_epoch,
            "description": self.description,
        }
        for channel in PATTERN_CHANNELS:
            pattern = getattr(self, channel)
            payload[channel] = pattern.to_dict() if pattern is not None else None
        payload["noc"] = self.noc.to_dict() if self.noc is not None else None
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        params = dict(payload)
        for channel in PATTERN_CHANNELS:
            value = params.get(channel)
            if value is not None:
                params[channel] = pattern_from_dict(value)  # type: ignore[arg-type]
        noc = params.get("noc")
        if noc is not None and not isinstance(noc, NocChannel):
            params["noc"] = NocChannel.from_dict(noc)  # type: ignore[arg-type]
        unknown = set(params) - {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**params)  # type: ignore[arg-type]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def canonical_json(self) -> str:
        """The one canonical byte representation of this spec.

        Sorted keys, no whitespace, shortest-repr floats: the same spec
        produces the same string in every process on every platform, so it
        can key content-addressed caches (see :mod:`repro.campaign.cache`).
        JSON round-tripping is lossless for the payload (floats keep their
        exact bits via ``repr``), hence ``from_json(canonical_json())``
        equals ``self``.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    def content_digest(self) -> str:
        """SHA-256 of :meth:`canonical_json` — the spec's identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()
