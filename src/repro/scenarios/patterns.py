"""Composable per-epoch modulators — the scenario pattern catalog.

A :class:`Pattern` maps the epoch axis of an experiment to a modulation
series, evaluated **vectorized over all epochs at once**:

* *temporal* patterns (constant, step, ramp, burst, diurnal, duty-cycle)
  return a ``(num_epochs,)`` series and describe load multipliers, ambient
  offsets or SNR trajectories;
* *spatial* patterns (hotspot, fault) return a ``(num_epochs, num_units)``
  matrix in the topology's row-major coordinate order and describe per-PE
  effects (a localized hotspot multiplier, a PE whose load collapses).

Every built-in pattern is a pure function of the **absolute** epoch index,
which is what makes patterns double as stream *cursors*: in addition to the
whole-horizon :meth:`Pattern.evaluate`, :meth:`Pattern.evaluate_window`
evaluates any half-open window ``[start_epoch, end_epoch)`` lazily, so a
registry scenario can generate an unbounded epoch stream window by window
(see :mod:`repro.stream`) without ever materialising a horizon-sized array.
The one horizon-dependent construct — :class:`RampPattern` with
``end_epoch=None``, which ramps over "the whole horizon" — refuses windowed
evaluation and asks for an explicit ``end_epoch`` instead.

Patterns compose with ``+`` and ``*`` (a temporal series broadcasts across
units when combined with a spatial one), so ``DiurnalPattern(...) *
HotspotPattern(...)`` is a hotspot that breathes with the day cycle.  Every
pattern is a frozen dataclass that round-trips through
:meth:`Pattern.to_dict` / :func:`pattern_from_dict`, which is what makes
:class:`repro.scenarios.spec.ScenarioSpec` JSON-serializable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass
from typing import ClassVar, Dict, Optional, Tuple, Type

import numpy as np

from ..noc.topology import Coordinate, MeshTopology

#: Registry of concrete pattern classes, keyed by their ``kind`` tag
#: (populated automatically by ``Pattern.__init_subclass__``).
_PATTERN_KINDS: Dict[str, Type["Pattern"]] = {}


class Pattern(ABC):
    """One modulation series over the epoch axis of a scenario."""

    #: Serialization tag; unique per concrete class.
    kind: ClassVar[str] = "abstract"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        tag = cls.__dict__.get("kind")
        if tag is not None:
            if tag in _PATTERN_KINDS:
                raise TypeError(f"duplicate pattern kind {tag!r}")
            _PATTERN_KINDS[tag] = cls

    # ------------------------------------------------------------------
    @abstractmethod
    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        """Modulation values at the given **absolute** epoch indices.

        ``epochs`` is a 1-D integer array of absolute epoch indices (not
        necessarily starting at zero); ``horizon`` is the total epoch count
        when the caller knows it (:meth:`evaluate`) and ``None`` for windowed
        evaluation.  Temporal patterns return ``(len(epochs),)``; spatial
        patterns return ``(len(epochs), topology.num_nodes)``.
        """

    def evaluate(
        self, num_epochs: int, topology: Optional[MeshTopology] = None
    ) -> np.ndarray:
        """Modulation values over ``num_epochs`` epochs.

        Temporal patterns return shape ``(num_epochs,)``; spatial patterns
        return ``(num_epochs, topology.num_nodes)`` and require ``topology``.
        """
        return self._values(np.arange(num_epochs), topology, num_epochs)

    def evaluate_window(
        self,
        start_epoch: int,
        end_epoch: int,
        topology: Optional[MeshTopology] = None,
    ) -> np.ndarray:
        """Modulation values over the half-open window ``[start_epoch, end_epoch)``.

        The streaming cursor: identical to the corresponding slice of
        :meth:`evaluate` for every pattern whose values do not depend on the
        total horizon, without materialising the prefix.  Patterns that *do*
        need the horizon (a :class:`RampPattern` with ``end_epoch=None``)
        raise ``ValueError`` here.
        """
        if start_epoch < 0:
            raise ValueError("window start_epoch cannot be negative")
        if end_epoch <= start_epoch:
            raise ValueError("window end_epoch must be after start_epoch")
        return self._values(np.arange(start_epoch, end_epoch), topology, None)

    @property
    def is_spatial(self) -> bool:
        """Whether :meth:`evaluate` produces a per-unit matrix."""
        return False

    def bind_time(self, epoch_duration_s: float) -> "Pattern":
        """Bind any wall-clock axes to a concrete epoch duration.

        Compiling a scenario calls this on every channel pattern with the
        scenario's migration period in seconds, so a
        :class:`WallClockPattern` authored against a seconds axis resolves
        to epochs without the spec hard-coding the period.  Patterns with
        no wall-clock axis (everything else) return themselves.
        """
        return self

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def __add__(self, other: "Pattern") -> "SumPattern":
        if not isinstance(other, Pattern):
            return NotImplemented
        return SumPattern(terms=_flatten(SumPattern, self) + _flatten(SumPattern, other))

    def __mul__(self, other: "Pattern") -> "ProductPattern":
        if not isinstance(other, Pattern):
            return NotImplemented
        return ProductPattern(
            factors=_flatten(ProductPattern, self) + _flatten(ProductPattern, other)
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (``kind`` plus the parameters)."""
        payload: Dict[str, object] = {"kind": self.kind}
        payload.update(asdict(self))  # type: ignore[call-overload]
        return payload

    @classmethod
    def _from_params(cls, params: Dict[str, object]) -> "Pattern":
        """Rebuild from :meth:`to_dict` parameters (sans ``kind``).

        Subclasses with non-primitive fields (coordinates, nested patterns)
        override this to coerce JSON lists back to tuples.
        """
        return cls(**params)  # type: ignore[call-arg]


def pattern_from_dict(payload: Dict[str, object]) -> Pattern:
    """Inverse of :meth:`Pattern.to_dict`."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ValueError(f"pattern payload must be a dict with a 'kind': {payload!r}")
    params = dict(payload)
    kind = params.pop("kind")
    cls = _PATTERN_KINDS.get(kind)  # type: ignore[arg-type]
    if cls is None:
        raise ValueError(
            f"unknown pattern kind {kind!r}; known kinds: {sorted(_PATTERN_KINDS)}"
        )
    return cls._from_params(params)


def _flatten(combiner: type, pattern: Pattern) -> Tuple[Pattern, ...]:
    """Merge nested combinators of the same type into one flat term list."""
    if isinstance(pattern, combiner):
        return pattern.terms if combiner is SumPattern else pattern.factors
    return (pattern,)


def _as_columns(values: np.ndarray) -> np.ndarray:
    """Normalize an evaluate() result to 2-D for broadcasting."""
    return values[:, np.newaxis] if values.ndim == 1 else values


# ----------------------------------------------------------------------
# Combinators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SumPattern(Pattern):
    """Pointwise sum of component patterns (e.g. baseline + drift)."""

    terms: Tuple[Pattern, ...]
    kind: ClassVar[str] = "sum"

    def __post_init__(self) -> None:
        if len(self.terms) < 1:
            raise ValueError("a sum needs at least one term")

    @property
    def is_spatial(self) -> bool:
        return any(term.is_spatial for term in self.terms)

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        parts = [
            _as_columns(term._values(epochs, topology, horizon)) for term in self.terms
        ]
        total = parts[0]
        for part in parts[1:]:
            total = total + part
        return total if self.is_spatial else total[:, 0]

    def bind_time(self, epoch_duration_s: float) -> "Pattern":
        bound = tuple(term.bind_time(epoch_duration_s) for term in self.terms)
        if all(new is old for new, old in zip(bound, self.terms)):
            return self
        return SumPattern(terms=bound)

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "terms": [term.to_dict() for term in self.terms]}

    @classmethod
    def _from_params(cls, params: Dict[str, object]) -> "SumPattern":
        return cls(terms=tuple(pattern_from_dict(term) for term in params["terms"]))


@dataclass(frozen=True)
class ProductPattern(Pattern):
    """Pointwise product of component patterns (e.g. diurnal x hotspot)."""

    factors: Tuple[Pattern, ...]
    kind: ClassVar[str] = "product"

    def __post_init__(self) -> None:
        if len(self.factors) < 1:
            raise ValueError("a product needs at least one factor")

    @property
    def is_spatial(self) -> bool:
        return any(factor.is_spatial for factor in self.factors)

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        parts = [
            _as_columns(factor._values(epochs, topology, horizon))
            for factor in self.factors
        ]
        total = parts[0]
        for part in parts[1:]:
            total = total * part
        return total if self.is_spatial else total[:, 0]

    def bind_time(self, epoch_duration_s: float) -> "Pattern":
        bound = tuple(
            factor.bind_time(epoch_duration_s) for factor in self.factors
        )
        if all(new is old for new, old in zip(bound, self.factors)):
            return self
        return ProductPattern(factors=bound)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "factors": [factor.to_dict() for factor in self.factors],
        }

    @classmethod
    def _from_params(cls, params: Dict[str, object]) -> "ProductPattern":
        return cls(
            factors=tuple(pattern_from_dict(factor) for factor in params["factors"])
        )


# ----------------------------------------------------------------------
# Temporal patterns
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstantPattern(Pattern):
    """The same value at every epoch (the degenerate scenario)."""

    value: float = 1.0
    kind: ClassVar[str] = "constant"

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        return np.full(epochs.shape, float(self.value))


@dataclass(frozen=True)
class StepPattern(Pattern):
    """``before`` until ``step_epoch``, ``after`` from then on (a load shock)."""

    before: float
    after: float
    step_epoch: int
    kind: ClassVar[str] = "step"

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        return np.where(epochs < self.step_epoch, float(self.before), float(self.after))


@dataclass(frozen=True)
class RampPattern(Pattern):
    """Linear interpolation from ``start`` to ``end`` over an epoch window.

    The value is held at ``start`` before the window and at ``end`` after it;
    ``end_epoch`` of ``None`` ramps over the whole horizon.
    """

    start: float
    end: float
    start_epoch: int = 0
    end_epoch: Optional[int] = None
    kind: ClassVar[str] = "ramp"

    def __post_init__(self) -> None:
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise ValueError("ramp end_epoch must be after start_epoch")

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        # The defaulted window ramps over the whole horizon; when the horizon
        # ends at or before start_epoch the window degenerates to a one-epoch
        # ramp (hold ``start`` through start_epoch, ``end`` after) rather
        # than dividing by zero or leaking the end value before the start.
        end_epoch = self.end_epoch
        if end_epoch is None:
            if horizon is None:
                raise ValueError(
                    "RampPattern with end_epoch=None ramps over the whole "
                    "horizon and cannot be evaluated over a window; give the "
                    "ramp an explicit end_epoch for streaming use"
                )
            end_epoch = max(horizon - 1, self.start_epoch + 1)
        values = np.asarray(epochs, dtype=float)
        progress = np.clip(
            (values - self.start_epoch) / (end_epoch - self.start_epoch), 0.0, 1.0
        )
        return float(self.start) + (float(self.end) - float(self.start)) * progress


@dataclass(frozen=True)
class BurstPattern(Pattern):
    """``peak`` for ``length`` epochs starting at ``start_epoch``, else ``base``.

    With ``every`` set, the burst recurs with that period (Megaphone's
    "Sudden"/"Batched" load patterns): epochs where
    ``(epoch - start_epoch) mod every < length`` are bursting.
    """

    base: float
    peak: float
    start_epoch: int
    length: int
    every: Optional[int] = None
    kind: ClassVar[str] = "burst"

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("burst length must be at least one epoch")
        if self.every is not None and self.every < self.length:
            raise ValueError("burst recurrence must be at least the burst length")

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        offset = epochs - self.start_epoch
        if self.every is None:
            bursting = (offset >= 0) & (offset < self.length)
        else:
            bursting = (offset >= 0) & (offset % self.every < self.length)
        return np.where(bursting, float(self.peak), float(self.base))


@dataclass(frozen=True)
class DiurnalPattern(Pattern):
    """Sinusoidal modulation: ``mean + amplitude * sin(2 pi (e - phase)/period)``.

    The classic traffic shape of a service facing human users (Megaphone's
    "Fluid" pattern); one ``period_epochs`` is a full day.
    """

    mean: float
    amplitude: float
    period_epochs: float
    phase_epochs: float = 0.0
    kind: ClassVar[str] = "diurnal"

    def __post_init__(self) -> None:
        if self.period_epochs <= 0:
            raise ValueError("diurnal period must be positive")

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        values = np.asarray(epochs, dtype=float)
        phase = 2.0 * np.pi * (values - self.phase_epochs) / self.period_epochs
        return float(self.mean) + float(self.amplitude) * np.sin(phase)


@dataclass(frozen=True)
class DutyCyclePattern(Pattern):
    """Alternate ``on_value`` for ``on_epochs`` and ``off_value`` for ``off_epochs``."""

    on_value: float
    off_value: float
    on_epochs: int
    off_epochs: int
    start_epoch: int = 0
    kind: ClassVar[str] = "duty-cycle"

    def __post_init__(self) -> None:
        if self.on_epochs < 1 or self.off_epochs < 1:
            raise ValueError("duty-cycle phases must last at least one epoch")

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        cycle = self.on_epochs + self.off_epochs
        phase = (epochs - self.start_epoch) % cycle
        # Before the cycling starts the chip runs normally (on), matching
        # BurstPattern's treatment of its start epoch.
        on = (epochs < self.start_epoch) | (phase < self.on_epochs)
        return np.where(on, float(self.on_value), float(self.off_value))


@dataclass(frozen=True)
class WallClockPattern(Pattern):
    """Evaluate ``inner`` on a wall-clock seconds axis instead of epochs.

    The inner pattern's epoch axis is reinterpreted as ticks of
    ``inner_step_s`` seconds of wall-clock time: epoch ``e`` samples the
    inner pattern at tick ``floor(e * epoch_duration_s / inner_step_s)``.
    A spec normally leaves ``epoch_duration_s`` unset (``None``) and the
    scenario compiler binds it to the migration period via
    :meth:`Pattern.bind_time`, so one wall-clock schedule (say a diurnal
    day measured in seconds) stays correct under any period sweep instead
    of silently stretching with the epoch length.
    """

    inner: Pattern
    inner_step_s: float = 1.0
    epoch_duration_s: Optional[float] = None
    kind: ClassVar[str] = "wall-clock"

    def __post_init__(self) -> None:
        if self.inner_step_s <= 0:
            raise ValueError("wall-clock inner_step_s must be positive")
        if self.epoch_duration_s is not None and self.epoch_duration_s <= 0:
            raise ValueError("wall-clock epoch_duration_s must be positive")

    @property
    def is_spatial(self) -> bool:
        return self.inner.is_spatial

    def bind_time(self, epoch_duration_s: float) -> "Pattern":
        # An explicit spec-level binding wins over the compiler's.
        if self.epoch_duration_s is not None:
            return self
        if epoch_duration_s <= 0:
            raise ValueError("epoch_duration_s must be positive")
        return WallClockPattern(
            inner=self.inner,
            inner_step_s=self.inner_step_s,
            epoch_duration_s=float(epoch_duration_s),
        )

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        if self.epoch_duration_s is None:
            raise ValueError(
                "WallClockPattern has no epoch_duration_s binding; compile "
                "it through a ScenarioSpec (bind_time) or set it explicitly"
            )
        ticks = np.floor(
            np.asarray(epochs, dtype=float)
            * (self.epoch_duration_s / self.inner_step_s)
        ).astype(np.int64)
        # The inner horizon is unknowable on a rescaled axis: pass None, so
        # horizon-dependent inners (open-ended ramps) ask for explicit ends.
        return self.inner._values(ticks, topology, None)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "inner": self.inner.to_dict(),
            "inner_step_s": self.inner_step_s,
            "epoch_duration_s": self.epoch_duration_s,
        }

    @classmethod
    def _from_params(cls, params: Dict[str, object]) -> "WallClockPattern":
        params = dict(params)
        params["inner"] = pattern_from_dict(params["inner"])  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Spatial patterns
# ----------------------------------------------------------------------
def _require_topology(pattern: Pattern, topology: Optional[MeshTopology]) -> MeshTopology:
    if topology is None:
        raise ValueError(
            f"{pattern.kind!r} is a spatial pattern and needs the mesh topology "
            "to evaluate (compile it through a ScenarioSpec)"
        )
    return topology


@dataclass(frozen=True)
class HotspotPattern(Pattern):
    """Gaussian per-PE multiplier peaking at ``center`` (hotspot injection).

    Unit ``u`` gets ``background + (peak - background) * exp(-d^2 / 2 sigma^2)``
    with ``d`` the Euclidean mesh distance from ``center``, at every epoch.
    Multiply by a temporal pattern for a hotspot that comes and goes.
    """

    center: Coordinate
    peak: float
    sigma: float = 1.0
    background: float = 1.0
    kind: ClassVar[str] = "hotspot"

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("hotspot sigma must be positive")

    @property
    def is_spatial(self) -> bool:
        return True

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        topology = _require_topology(self, topology)
        center = tuple(self.center)
        if not topology.contains(center):
            raise ValueError(f"hotspot center {center} outside the mesh")
        coords = np.array(list(topology.coordinates()), dtype=float)
        squared = ((coords - np.asarray(center, dtype=float)) ** 2).sum(axis=1)
        profile = float(self.background) + (
            float(self.peak) - float(self.background)
        ) * np.exp(-squared / (2.0 * self.sigma**2))
        return np.tile(profile, (len(epochs), 1))

    @classmethod
    def _from_params(cls, params: Dict[str, object]) -> "HotspotPattern":
        params = dict(params)
        params["center"] = tuple(params["center"])  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPattern(Pattern):
    """Per-PE fault injection: listed units drop to ``level`` from ``start_epoch``.

    ``level=0`` is a dead PE (its workload power vanishes); a partial level
    models a degraded unit.  ``end_epoch`` of ``None`` keeps the fault for the
    rest of the horizon; otherwise the fault clears at ``end_epoch``.
    """

    units: Tuple[Coordinate, ...]
    level: float = 0.0
    start_epoch: int = 0
    end_epoch: Optional[int] = None
    kind: ClassVar[str] = "fault"

    def __post_init__(self) -> None:
        if not self.units:
            raise ValueError("fault needs at least one unit")
        if self.level < 0:
            raise ValueError("fault level cannot be negative")
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise ValueError("fault end_epoch must be after start_epoch")

    @property
    def is_spatial(self) -> bool:
        return True

    def _values(
        self,
        epochs: np.ndarray,
        topology: Optional[MeshTopology],
        horizon: Optional[int],
    ) -> np.ndarray:
        topology = _require_topology(self, topology)
        matrix = np.ones((len(epochs), topology.num_nodes))
        active = epochs >= self.start_epoch
        if self.end_epoch is not None:
            active = active & (epochs < self.end_epoch)
        for unit in self.units:
            coord = tuple(unit)
            if not topology.contains(coord):
                raise ValueError(f"faulted unit {coord} outside the mesh")
            matrix[active, topology.node_id(coord)] = float(self.level)
        return matrix

    @classmethod
    def _from_params(cls, params: Dict[str, object]) -> "FaultPattern":
        params = dict(params)
        params["units"] = tuple(tuple(unit) for unit in params["units"])  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]
