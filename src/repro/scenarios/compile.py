"""Compile declarative scenarios onto the batched epoch pipeline.

:func:`compile_scenario` turns a :class:`repro.scenarios.spec.ScenarioSpec`
into concrete arrays: the ``(num_epochs, num_units)`` **load modulation** of
the controller's power rows, the ``(num_epochs,)`` **ambient offset** and
**SNR** schedules.  :func:`run_scenario` threads those through
:class:`repro.core.experiment.ThermalExperiment` — the modulation scales each
epoch's power row as it is emitted, and the ambient schedule is exact in
*both* modes: steady mode adds the offsets after its one multi-RHS solve
(a uniform ambient shift moves every steady temperature equally), transient
mode integrates them as a per-interval affine boundary term inside its one
``transient_sequence`` call.  Scenario diversity is nearly free at run time:
the thermal work per scenario is identical to the plain experiment's.

The decoder-effort coupling: an SNR schedule maps to per-epoch mean decoder
iterations (measured by actually decoding a small batch of codewords through
the configuration's own LDPC code at each distinct quantized SNR, cached
process-wide), which the report surfaces as a throughput factor relative to
the workload's nominal iterations-per-block budget.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..chips.configurations import ChipConfiguration, get_configuration
from ..core.experiment import ExperimentSettings, ThermalExperiment
from ..core.metrics import ExperimentResult
from ..core.policy import ReconfigurationPolicy, make_policy
from ..ldpc import BpskAwgnChannel, LdpcEncoder, make_decoder
from ..obs import counter as _obs_counter
from ..obs import get_registry as _obs_registry
from ..obs import span as _obs_span
from ..thermal.model import ThermalModel
from .noc_cost import NocCostModel, rate_noc_latencies
from .spec import ScenarioSpec

#: SNR schedules are quantized to this grid (dB) before the decoder-effort
#: measurement, so a smooth drift costs a handful of decode batches, not one
#: per epoch.
SNR_QUANTUM_DB = 0.25

#: Codewords decoded per distinct SNR value for the effort estimate.
DECODER_PROBE_BLOCKS = 24

#: Decoder iteration cap for the effort estimate.
DECODER_PROBE_MAX_ITERATIONS = 25


@dataclass
class CompiledScenario:
    """A spec resolved against a real chip: policy, settings and schedules."""

    spec: ScenarioSpec
    configuration: ChipConfiguration
    policy: ReconfigurationPolicy
    settings: ExperimentSettings
    #: ``(num_epochs, num_units)`` multiplier of the per-epoch power rows,
    #: or None when the scenario leaves the load untouched.
    load_modulation: Optional[np.ndarray]
    #: ``(num_epochs,)`` ambient offsets in deg C, or None.
    ambient_offsets: Optional[np.ndarray]
    #: ``(num_epochs,)`` absolute channel SNR in dB, or None.
    snr_schedule: Optional[np.ndarray]
    #: Pricing model for the spec's ``noc`` channel, or None.
    noc_model: Optional[NocCostModel] = None
    #: ``(num_epochs,)`` absolute per-node injection rates, or None.
    noc_rates: Optional[np.ndarray] = None
    #: ``(num_epochs,)`` migration-period multipliers, or None.
    period_schedule: Optional[np.ndarray] = None

    def experiment(self, thermal_model: Optional[ThermalModel] = None) -> ThermalExperiment:
        """The fully-wired experiment this scenario compiles to."""
        return ThermalExperiment(
            self.configuration,
            self.policy,
            settings=self.settings,
            thermal_model=thermal_model,
            power_modulation=self.load_modulation,
            ambient_offsets_celsius=self.ambient_offsets,
            period_scale=self.period_schedule,
            noc_model=self.noc_model,
            noc_rates=self.noc_rates,
        )

    @property
    def uses_thermal_feedback(self) -> bool:
        """Whether the compiled policy reads feedback temperatures."""
        return bool(getattr(self.policy, "requires_thermal_feedback", False))

    def expected_steady_solves(self, windows: Optional[int] = None) -> int:
        """Steady solves one run of this scenario performs — the bench guard.

        Feedback-free scenarios cost one batched solve in steady mode and
        two (baseline + warm start) in transient mode.  Feedback policies
        add ``ceil(num_epochs / feedback_stride)`` chunked feedback batches
        on top — never a per-epoch solve.

        ``windows`` is the streamed evaluation of the same horizon split
        into that many windows: steady mode costs one batched solve *per
        window* (the baseline rides the first window's batch and the
        settled average the last's), transient mode still costs exactly the
        two fixed steady solves (the per-window work is ``transient_sequence``
        calls), and the feedback budget is windowing-invariant because the
        refresh cadence follows global epoch indices.
        """
        if windows is None:
            solves = 1 if self.spec.mode == "steady" else 2
        elif windows < 1:
            raise ValueError("windows must be at least 1")
        else:
            solves = windows if self.spec.mode == "steady" else 2
        if self.uses_thermal_feedback:
            solves += -(-self.spec.num_epochs // self.spec.feedback_stride)
        return solves


@dataclass
class DecoderEffort:
    """Decoder-side summary of a scenario's SNR schedule."""

    #: Mean decoder iterations per block over the horizon.
    mean_iterations: float
    #: Fraction of probed blocks that converged to a codeword.
    success_rate: float
    #: Nominal iterations-per-block budget divided by the mean iterations:
    #: >1 means the channel lets the decoder finish early (headroom), <1
    #: means blocks overrun the budget and decoding throughput drops.
    throughput_factor: float


@dataclass
class NocSummary:
    """NoC-side summary of a scenario's offered traffic schedule."""

    #: Mean / worst per-epoch average packet latency over the horizon
    #: (cycles, from the analytic wormhole model).
    mean_latency_cycles: float
    peak_latency_cycles: float
    #: Epochs whose injection rate met or exceeded the analytic saturation
    #: rate — where the communication budget breaks.
    saturated_epochs: int
    #: The model's saturation rate and the schedule's worst offered rate
    #: (flits/node/cycle), so reports can show the headroom.
    saturation_rate: float
    peak_injection_rate: float


@dataclass
class ScenarioResult:
    """Outcome of one scenario run (experiment result + scenario context)."""

    spec: ScenarioSpec
    experiment: ExperimentResult
    ambient_offset_min_celsius: float
    ambient_offset_max_celsius: float
    decoder: Optional[DecoderEffort]
    noc: Optional[NocSummary] = None
    #: Per-run counter/timer deltas (``TelemetryScope.to_dict()``), attached
    #: only while telemetry is enabled.
    telemetry: Optional[Dict[str, object]] = None

    def to_row(self) -> Dict[str, object]:
        """Flat comparison-table row."""
        result = self.experiment
        row: Dict[str, object] = {
            "scenario": self.spec.name,
            "config": self.spec.configuration,
            "scheme": self.spec.scheme,
            "mode": self.spec.mode,
            "settled_peak_c": round(result.settled_peak_celsius, 2),
            "reduction_c": round(result.peak_reduction_celsius, 2),
            "migrations": result.migrations_performed,
            "throughput_penalty_pct": round(100 * result.throughput_penalty, 3),
            "ambient_span_c": round(
                self.ambient_offset_max_celsius - self.ambient_offset_min_celsius, 2
            ),
            "decoder_throughput_x": (
                round(float(self.decoder.throughput_factor), 3) if self.decoder else "-"
            ),
            "noc_latency_cyc": (
                round(self.noc.mean_latency_cycles, 1) if self.noc else "-"
            ),
        }
        return row


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _epoch_duration_s(spec: ScenarioSpec) -> float:
    """Wall-clock seconds per epoch — what binds wall-clock pattern axes."""
    return spec.period_us * 1e-6


def _temporal_schedule(spec: ScenarioSpec, channel: str) -> Optional[np.ndarray]:
    """Evaluate a chip-global channel's pattern to a ``(num_epochs,)`` array."""
    pattern = getattr(spec, channel)
    if pattern is None:
        return None
    pattern = pattern.bind_time(_epoch_duration_s(spec))
    values = np.asarray(pattern.evaluate(spec.num_epochs), dtype=float)
    if values.shape != (spec.num_epochs,):
        raise ValueError(
            f"{channel} pattern produced shape {values.shape}, "
            f"expected ({spec.num_epochs},)"
        )
    if not np.all(np.isfinite(values)):
        raise ValueError(f"{channel} pattern produced non-finite values")
    if channel == "period" and values.min() <= 0:
        raise ValueError("period multipliers must be positive")
    return values


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Resolve a spec against its chip and evaluate every pattern."""
    configuration = get_configuration(spec.configuration)
    policy = make_policy(
        spec.scheme,
        configuration.topology,
        period_us=spec.period_us,
        **(spec.policy_params or {}),
    )
    settings = ExperimentSettings(
        num_epochs=spec.num_epochs,
        mode=spec.mode,
        settle_epochs=spec.settle_epochs,
        include_migration_energy=spec.include_migration_energy,
        transient_steps_per_epoch=spec.transient_steps_per_epoch,
        thermal_method=spec.thermal_method,
        feedback_stride=spec.feedback_stride,
        feedback_predictor=spec.feedback_predictor,
        migration_style=spec.migration_style,
        units_per_epoch=spec.units_per_epoch,
    )

    modulation: Optional[np.ndarray] = None
    if spec.load is not None:
        load_pattern = spec.load.bind_time(_epoch_duration_s(spec))
        values = np.asarray(
            load_pattern.evaluate(spec.num_epochs, configuration.topology),
            dtype=float,
        )
        if values.ndim == 1:
            values = np.broadcast_to(
                values[:, np.newaxis], (spec.num_epochs, configuration.num_units)
            ).copy()
        if values.shape != (spec.num_epochs, configuration.num_units):
            raise ValueError(
                f"load pattern produced shape {values.shape}, expected "
                f"({spec.num_epochs}, {configuration.num_units})"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError("load pattern produced non-finite values")
        if values.min() < 0:
            raise ValueError("load modulation must be non-negative")
        modulation = values

    noc_model: Optional[NocCostModel] = None
    noc_rates: Optional[np.ndarray] = None
    if spec.noc is not None:
        channel = spec.noc
        topology = configuration.topology
        noc_model = NocCostModel(
            width=topology.width,
            height=topology.height,
            pattern=channel.traffic,
            base_injection_rate=channel.injection_rate,
            packet_size_flits=channel.packet_size_flits,
            routing=channel.routing,
            pattern_kwargs=dict(channel.traffic_kwargs or {}),
        )
        if channel.rate_pattern is not None:
            rate_pattern = channel.rate_pattern.bind_time(_epoch_duration_s(spec))
            factors = np.asarray(
                rate_pattern.evaluate(spec.num_epochs), dtype=float
            )
            if factors.shape != (spec.num_epochs,):
                raise ValueError(
                    f"noc rate pattern produced shape {factors.shape}, "
                    f"expected ({spec.num_epochs},)"
                )
            if not np.all(np.isfinite(factors)):
                raise ValueError("noc rate pattern produced non-finite values")
        elif modulation is not None:
            # No explicit rate schedule: the network tracks the compute
            # load, each epoch's mean modulation scaling the base rate.
            factors = modulation.mean(axis=1)
        else:
            factors = np.ones(spec.num_epochs, dtype=float)
        noc_rates = np.clip(factors, 0.0, None) * channel.injection_rate

    return CompiledScenario(
        spec=spec,
        configuration=configuration,
        policy=policy,
        settings=settings,
        load_modulation=modulation,
        ambient_offsets=_temporal_schedule(spec, "ambient_celsius"),
        snr_schedule=_temporal_schedule(spec, "snr_db"),
        noc_model=noc_model,
        noc_rates=noc_rates,
        period_schedule=_temporal_schedule(spec, "period"),
    )


def compile_window(
    compiled: CompiledScenario, start_epoch: int, end_epoch: int
) -> Tuple[
    Optional[np.ndarray],
    Optional[np.ndarray],
    Optional[np.ndarray],
    Optional[np.ndarray],
    Optional[np.ndarray],
]:
    """Evaluate a compiled scenario's patterns over ``[start_epoch, end_epoch)``.

    Returns ``(load_modulation, ambient_offsets, snr_schedule, noc_rates,
    period_scale)`` window arrays (each None when the scenario does not
    drive that channel).  The patterns are evaluated lazily via their window
    cursors, so a stream can walk epochs far beyond ``spec.num_epochs``
    without ever materialising a whole-horizon array — and inside the
    horizon the values are exactly the slices :func:`compile_scenario` would
    have produced.
    """
    if end_epoch <= start_epoch:
        raise ValueError("compile_window needs a non-empty [start, end) window")
    spec = compiled.spec
    configuration = compiled.configuration
    duration_s = _epoch_duration_s(spec)
    num = end_epoch - start_epoch

    modulation: Optional[np.ndarray] = None
    if spec.load is not None:
        values = np.asarray(
            spec.load.bind_time(duration_s).evaluate_window(
                start_epoch, end_epoch, configuration.topology
            ),
            dtype=float,
        )
        if values.ndim == 1:
            values = np.broadcast_to(
                values[:, np.newaxis], (num, configuration.num_units)
            ).copy()
        if values.shape != (num, configuration.num_units):
            raise ValueError(
                f"load pattern produced shape {values.shape}, expected "
                f"({num}, {configuration.num_units})"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError("load pattern produced non-finite values")
        if values.min() < 0:
            raise ValueError("load modulation must be non-negative")
        modulation = values

    ambient: Optional[np.ndarray] = None
    if spec.ambient_celsius is not None:
        ambient = np.asarray(
            spec.ambient_celsius.bind_time(duration_s).evaluate_window(
                start_epoch, end_epoch
            ),
            dtype=float,
        )
    snr: Optional[np.ndarray] = None
    if spec.snr_db is not None:
        snr = np.asarray(
            spec.snr_db.bind_time(duration_s).evaluate_window(
                start_epoch, end_epoch
            ),
            dtype=float,
        )
    period: Optional[np.ndarray] = None
    if spec.period is not None:
        period = np.asarray(
            spec.period.bind_time(duration_s).evaluate_window(
                start_epoch, end_epoch
            ),
            dtype=float,
        )

    noc_rates: Optional[np.ndarray] = None
    if spec.noc is not None:
        channel = spec.noc
        if channel.rate_pattern is not None:
            factors = np.asarray(
                channel.rate_pattern.bind_time(duration_s).evaluate_window(
                    start_epoch, end_epoch
                ),
                dtype=float,
            )
        elif modulation is not None:
            factors = modulation.mean(axis=1)
        else:
            factors = np.ones(num, dtype=float)
        noc_rates = np.clip(factors, 0.0, None) * channel.injection_rate

    for name, values in (
        ("ambient", ambient),
        ("snr", snr),
        ("noc rate", noc_rates),
        ("period", period),
    ):
        if values is None:
            continue
        if values.shape != (num,):
            raise ValueError(
                f"{name} pattern produced shape {values.shape}, expected ({num},)"
            )
        if not np.all(np.isfinite(values)):
            raise ValueError(f"{name} pattern produced non-finite values")
    if period is not None and period.min() <= 0:
        raise ValueError("period multipliers must be positive")

    return modulation, ambient, snr, noc_rates, period


# ----------------------------------------------------------------------
# Decoder-effort estimation
# ----------------------------------------------------------------------
#: (parity-matrix digest, quantized SNR) -> (mean iterations, success rate).
#: Keyed by the code itself, not the configuration name, so custom chip
#: variants are probed correctly and identical codes share probes.  The cache
#: is process-wide and ``ScenarioRunner(executor="thread")`` suites probe
#: concurrently: :data:`_PROBE_CACHE_LOCK` guards the dicts themselves, and a
#: short-lived per-key lock in :data:`_PROBE_KEY_LOCKS` serializes threads
#: asking for the *same* (code, SNR) — distinct keys still probe in parallel
#: (the numpy-heavy decode releases the GIL).
_PROBE_CACHE: Dict[Tuple[str, float], Tuple[float, float]] = {}
_PROBE_KEY_LOCKS: Dict[Tuple[str, float], threading.Lock] = {}
_PROBE_CACHE_LOCK = threading.Lock()

# Probe-cache telemetry: a "hit" is any lookup the cache satisfied (including
# threads that waited on a concurrent prober), a "miss" runs a decode batch.
_OBS_PROBE_HITS = _obs_counter("scenario.probe_hits")
_OBS_PROBE_MISSES = _obs_counter("scenario.probe_misses")
_OBS_SCENARIOS = _obs_counter("scenario.runs")


def _decode_probe(graph, code_digest: str, snr_q: float) -> Tuple[float, float]:
    """(mean iterations, success rate) of one LDPC code at one SNR.

    Decodes :data:`DECODER_PROBE_BLOCKS` random codewords through the sparse
    batched decoder; cached process-wide so drifting schedules and whole
    scenario suites share probes.  Concurrent threads asking for the same
    (code, SNR) block on that key's lock and find the cache filled, so a
    probe batch never runs twice and cache writes never tear; threads
    probing different keys proceed concurrently.
    """
    key = (code_digest, snr_q)
    with _PROBE_CACHE_LOCK:
        cached = _PROBE_CACHE.get(key)
        if cached is not None:
            _OBS_PROBE_HITS.add()
            return cached
        key_lock = _PROBE_KEY_LOCKS.setdefault(key, threading.Lock())
    with key_lock:
        with _PROBE_CACHE_LOCK:
            cached = _PROBE_CACHE.get(key)
        if cached is not None:
            _OBS_PROBE_HITS.add()
            return cached
        _OBS_PROBE_MISSES.add()
        with _obs_span("scenario.decode_probe", snr_db=snr_q):
            encoder = LdpcEncoder(graph.H)
            channel = BpskAwgnChannel(snr_db=snr_q, rate=encoder.rate, seed=97)
            codewords = [
                encoder.random_codeword(seed=seed)
                for seed in range(DECODER_PROBE_BLOCKS)
            ]
            llrs = np.stack([channel.transmit_llr(word) for word in codewords])
            decoder = make_decoder(
                "min-sum",
                graph,
                max_iterations=DECODER_PROBE_MAX_ITERATIONS,
                backend="sparse",
            )
            result = decoder.decode_batch(llrs)
        outcome = (float(result.iterations.mean()), float(result.success.mean()))
        with _PROBE_CACHE_LOCK:
            _PROBE_CACHE[key] = outcome
            # Late arrivals hit the cache before ever looking the lock up.
            _PROBE_KEY_LOCKS.pop(key, None)
        return outcome


def decoder_effort(
    configuration: ChipConfiguration, snr_schedule: np.ndarray
) -> DecoderEffort:
    """Per-horizon decoder effort under a per-epoch SNR schedule."""
    schedule = np.asarray(snr_schedule, dtype=float)
    if schedule.size == 0:
        raise ValueError("decoder_effort needs a non-empty SNR schedule")
    graph = configuration.workload.partition.graph
    code_digest = hashlib.sha1(
        np.ascontiguousarray(graph.H, dtype=np.uint8).tobytes()
    ).hexdigest()
    # Round-half-up, not np.round: banker's rounding sends half-quantum
    # boundaries (0.125 dB at the 0.25 dB grid) to the *even* neighbour, so
    # adjacent boundary values bucket inconsistently (0.125 -> 0.0 but
    # 0.375 -> 0.5).  floor(x/q + 0.5) quantizes every boundary the same way.
    quantized = np.floor(schedule / SNR_QUANTUM_DB + 0.5)
    values, counts = np.unique(quantized, return_counts=True)
    iterations = 0.0
    successes = 0.0
    for value, count in zip(values, counts):
        mean_iters, success = _decode_probe(
            graph, code_digest, float(value) * SNR_QUANTUM_DB
        )
        iterations += count * mean_iters
        successes += count * success
    mean_iterations = iterations / len(quantized)
    nominal = configuration.workload.parameters.iterations_per_block
    return DecoderEffort(
        mean_iterations=mean_iterations,
        success_rate=successes / len(quantized),
        throughput_factor=nominal / mean_iterations,
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(
    scenario: "ScenarioSpec | CompiledScenario",
    thermal_model: Optional[ThermalModel] = None,
) -> ScenarioResult:
    """Compile (if needed) and run one scenario end to end."""
    compiled = (
        scenario if isinstance(scenario, CompiledScenario) else compile_scenario(scenario)
    )
    registry = _obs_registry()
    scope_ctx = registry.scoped() if registry.enabled else None
    task_scope = None
    with _obs_span("scenario.run", scenario=compiled.spec.name):
        if scope_ctx is not None:
            task_scope = scope_ctx.__enter__()
        try:
            _OBS_SCENARIOS.add()
            result = compiled.experiment(thermal_model=thermal_model).run()

            offsets = compiled.ambient_offsets
            effort = (
                decoder_effort(compiled.configuration, compiled.snr_schedule)
                if compiled.snr_schedule is not None
                else None
            )
            noc_summary: Optional[NocSummary] = None
            if compiled.noc_model is not None and compiled.noc_rates is not None:
                latencies, saturated = rate_noc_latencies(
                    compiled.noc_model, compiled.noc_rates
                )
                noc_summary = NocSummary(
                    mean_latency_cycles=float(latencies.mean()),
                    peak_latency_cycles=float(latencies.max()),
                    saturated_epochs=int(saturated.sum()),
                    saturation_rate=float(compiled.noc_model.saturation_rate),
                    peak_injection_rate=float(compiled.noc_rates.max()),
                )
        finally:
            if scope_ctx is not None:
                scope_ctx.__exit__(None, None, None)
    return ScenarioResult(
        spec=compiled.spec,
        experiment=result,
        ambient_offset_min_celsius=float(offsets.min()) if offsets is not None else 0.0,
        ambient_offset_max_celsius=float(offsets.max()) if offsets is not None else 0.0,
        decoder=effort,
        noc=noc_summary,
        telemetry=task_scope.to_dict() if task_scope is not None else None,
    )
