"""Per-epoch NoC communication-cost probes for the scenario engine.

Scenario load patterns modulate how hard each epoch drives the chip; the
on-chip network feels that as injection-rate changes, and congested epochs
pay a latency (and hence schedule-slack) penalty.  Simulating the NoC per
epoch would put an event simulation inside the scenario loop — instead this
module prices epochs with the closed-form
:mod:`repro.noc.analytic` wormhole model, which is exact about routes and
validated against the vector engine below saturation.

The expensive part of the analytic model — walking every source/destination
route and accumulating channel loads — depends only on (mesh, pattern,
routing, packet size), not on the rate, so built models are cached
process-wide under the same lock discipline as the decoder-effort probes in
:mod:`repro.scenarios.compile`: a global lock guards the dicts, a
short-lived per-key lock serializes threads building the *same* model, and
distinct keys build in parallel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..noc.analytic import AnalyticPoint, _AnalyticModel
from ..noc.topology import MeshTopology

__all__ = [
    "NocCostModel",
    "epoch_noc_latencies",
    "noc_cost_probe",
    "rate_noc_latencies",
]

#: (width, height, pattern, routing, packet size, pattern-kwarg items)
#: -> built analytic model.  See the module docstring for the locking.
_MODEL_CACHE: Dict[Tuple, _AnalyticModel] = {}
_MODEL_KEY_LOCKS: Dict[Tuple, threading.Lock] = {}
_MODEL_CACHE_LOCK = threading.Lock()


def _freeze(value):
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _model_key(
    width: int,
    height: int,
    pattern: str,
    routing: str,
    packet_size_flits: int,
    pattern_kwargs: dict,
) -> Tuple:
    frozen = tuple(
        (name, _freeze(value)) for name, value in sorted(pattern_kwargs.items())
    )
    return (width, height, pattern, routing, packet_size_flits, frozen)


def _get_model(
    width: int,
    height: int,
    pattern: str,
    routing: str,
    packet_size_flits: int,
    pattern_kwargs: dict,
) -> _AnalyticModel:
    key = _model_key(width, height, pattern, routing, packet_size_flits, pattern_kwargs)
    with _MODEL_CACHE_LOCK:
        cached = _MODEL_CACHE.get(key)
        if cached is not None:
            return cached
        key_lock = _MODEL_KEY_LOCKS.setdefault(key, threading.Lock())
    with key_lock:
        with _MODEL_CACHE_LOCK:
            cached = _MODEL_CACHE.get(key)
        if cached is not None:
            return cached
        kwargs = dict(pattern_kwargs)
        if "hotspots" in kwargs:
            kwargs["hotspots"] = [tuple(spot) for spot in kwargs["hotspots"]]
        model = _AnalyticModel(
            MeshTopology(width, height),
            pattern,
            packet_size_flits,
            routing,
            **kwargs,
        )
        with _MODEL_CACHE_LOCK:
            _MODEL_CACHE[key] = model
            _MODEL_KEY_LOCKS.pop(key, None)
        return model


def noc_cost_probe(
    width: int,
    height: int,
    pattern: str,
    injection_rate: float,
    *,
    packet_size_flits: int = 4,
    routing: str = "xy",
    **pattern_kwargs,
) -> AnalyticPoint:
    """Cached closed-form latency estimate for one mesh/pattern/rate.

    The first call for a (mesh, pattern, routing, packet size) builds and
    caches the channel-load model; every further rate evaluates in a few
    array operations.
    """
    model = _get_model(
        width, height, pattern, routing, packet_size_flits, pattern_kwargs
    )
    return model.evaluate(float(injection_rate))


@dataclass
class NocCostModel:
    """NoC pricing configuration a scenario binds once and reuses per epoch."""

    width: int
    height: int
    pattern: str = "uniform"
    base_injection_rate: float = 0.05
    packet_size_flits: int = 4
    routing: str = "xy"
    pattern_kwargs: dict = field(default_factory=dict)

    @property
    def saturation_rate(self) -> float:
        return _get_model(
            self.width,
            self.height,
            self.pattern,
            self.routing,
            self.packet_size_flits,
            self.pattern_kwargs,
        ).saturation_rate

    def probe(self, injection_rate: float) -> AnalyticPoint:
        return noc_cost_probe(
            self.width,
            self.height,
            self.pattern,
            injection_rate,
            packet_size_flits=self.packet_size_flits,
            routing=self.routing,
            **self.pattern_kwargs,
        )


def epoch_noc_latencies(
    model: NocCostModel,
    load_modulation: Optional[np.ndarray],
    num_epochs: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-epoch average NoC latency under a scenario's load modulation.

    ``load_modulation`` is the compiled scenario's ``(epochs, units)``
    multiplier matrix (or ``None`` for a flat scenario, in which case
    ``num_epochs`` sizes the output).  Each epoch's mean modulation scales
    the model's base injection rate; epochs pushed past the analytic
    saturation rate report the latency *at* saturation and are flagged in
    the second return value — the knee is where the scenario's communication
    budget breaks, which is exactly what reconfiguration policies need to
    see.
    """
    if load_modulation is None:
        if num_epochs is None:
            raise ValueError("num_epochs is required when load_modulation is None")
        factors = np.ones(num_epochs, dtype=np.float64)
    else:
        modulation = np.asarray(load_modulation, dtype=np.float64)
        factors = modulation.mean(axis=1) if modulation.ndim == 2 else modulation
    rates = np.clip(factors, 0.0, None) * model.base_injection_rate
    return rate_noc_latencies(model, rates)


def rate_noc_latencies(
    model: NocCostModel, rates: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Latency schedule for explicit per-epoch injection rates.

    The pricing core shared by :func:`epoch_noc_latencies` (rates derived
    from a load modulation) and the scenario engine's ``noc`` channel
    (rates from an injection-rate pattern).  Epochs at or past the analytic
    saturation rate report the latency *at* saturation and are flagged in
    the second return value.
    """
    rates = np.asarray(rates, dtype=np.float64)
    sat = model.saturation_rate
    saturated = rates >= sat
    # Evaluate each distinct (quantized) rate once; scenarios repeat epochs.
    capped = np.where(saturated, np.nextafter(sat, 0.0), np.clip(rates, 0.0, None))
    quantized = np.round(capped, 6)
    latencies = np.empty_like(quantized)
    for rate in np.unique(quantized):
        latencies[quantized == rate] = model.probe(float(rate)).avg_latency
    return latencies, saturated
