"""Declarative time-varying scenarios compiled onto the batched epoch pipeline.

The paper's experiments hold the workload, the channel quality and the
ambient conditions fixed for a whole run.  This package multiplies one
experiment into an evaluation matrix (the Megaphone experiment harness is the
model: a small library of composable load patterns spanning a whole study):

* :mod:`repro.scenarios.patterns` — parameterized per-epoch modulators
  (constant, step, ramp, burst, diurnal, duty-cycle, SNR drift, ambient
  profiles, per-PE hotspot/fault injection) that compose additively and
  multiplicatively and evaluate vectorized over the whole epoch axis;
* :mod:`repro.scenarios.spec` — the declarative, JSON-round-trippable
  :class:`ScenarioSpec` binding a chip configuration, a reconfiguration
  policy and a set of patterns over a horizon;
* :mod:`repro.scenarios.compile` — compiles a spec into the epochs x units
  modulation of the controller's power rows plus per-epoch ambient/SNR
  schedules, and runs it through :class:`repro.core.experiment.ThermalExperiment`
  (still exactly one batched steady solve or one ``transient_sequence`` call
  per scenario);
* :mod:`repro.scenarios.registry` — the built-in named scenarios behind
  ``python -m repro scenario run|list|compare``.
"""

from .compile import (
    CompiledScenario,
    NocSummary,
    ScenarioResult,
    compile_scenario,
    run_scenario,
)
from .noc_cost import (
    NocCostModel,
    epoch_noc_latencies,
    noc_cost_probe,
    rate_noc_latencies,
)
from .patterns import (
    BurstPattern,
    ConstantPattern,
    DiurnalPattern,
    DutyCyclePattern,
    FaultPattern,
    HotspotPattern,
    Pattern,
    ProductPattern,
    RampPattern,
    StepPattern,
    SumPattern,
    WallClockPattern,
    pattern_from_dict,
)
from .registry import all_scenarios, get_scenario, scenario_names
from .spec import NocChannel, ScenarioSpec

__all__ = [
    "BurstPattern",
    "CompiledScenario",
    "ConstantPattern",
    "DiurnalPattern",
    "DutyCyclePattern",
    "FaultPattern",
    "HotspotPattern",
    "NocChannel",
    "NocCostModel",
    "NocSummary",
    "epoch_noc_latencies",
    "noc_cost_probe",
    "rate_noc_latencies",
    "Pattern",
    "ProductPattern",
    "RampPattern",
    "ScenarioResult",
    "ScenarioSpec",
    "StepPattern",
    "SumPattern",
    "WallClockPattern",
    "all_scenarios",
    "compile_scenario",
    "get_scenario",
    "pattern_from_dict",
    "run_scenario",
    "scenario_names",
]
