"""The built-in named scenarios behind ``python -m repro scenario``.

Fifteen scenarios spanning the five chip configurations, both experiment
modes and every pattern family.  Thirteen use feedback-free policies
(periodic or static), so each compiles to exactly one batched steady solve
or one ``transient_sequence`` call; ``threshold-under-burst`` and
``adaptive-diurnal`` exercise the chunked feedback loop — thermal-feedback
policies riding the scenario engine at ``ceil(num_epochs/feedback_stride)``
batched solves instead of one per epoch.  The scenario benchmark guards
both properties; ``ambient-swing-transient`` additionally pins the exact
time-varying-ambient boundary term riding the whole-trace spectral jump,
and ``noc-congestion-burst`` exercises the first-class ``noc`` channel —
per-epoch network pricing through the cached analytic wormhole model at
zero extra thermal solves.  ``fluid-under-burst`` runs the staged
migration engine (fluid plans congestion-priced by the ``noc`` channel)
and ``period-schedule-diurnal`` drives the ``period`` channel through a
wall-clock diurnal schedule — both still one batched evaluation per
window.

``steady-baseline`` is deliberately the degenerate scenario (constant load
1.0, no ambient or SNR drift): the test suite pins it to the plain
:class:`repro.core.experiment.ThermalExperiment` result to 1e-9, anchoring
the whole scenario layer to the paper's reproduction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .patterns import (
    BurstPattern,
    ConstantPattern,
    DiurnalPattern,
    DutyCyclePattern,
    FaultPattern,
    HotspotPattern,
    RampPattern,
    WallClockPattern,
)
from .spec import NocChannel, ScenarioSpec


def _steady_baseline() -> ScenarioSpec:
    return ScenarioSpec(
        name="steady-baseline",
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=41,
        settle_epochs=40,
        load=ConstantPattern(1.0),
        description="Constant unit load: the paper's Figure 1 cell, pinned "
        "to the plain experiment by the parity tests",
    )


def _diurnal_load() -> ScenarioSpec:
    return ScenarioSpec(
        name="diurnal-load",
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=48,
        settle_epochs=24,
        load=DiurnalPattern(mean=1.0, amplitude=0.3, period_epochs=24.0),
        description="Human-facing traffic: load breathes +-30% over a "
        "24-epoch day cycle",
    )


def _morning_rush_ramp() -> ScenarioSpec:
    return ScenarioSpec(
        name="morning-rush-ramp",
        configuration="C",
        scheme="xy-shift",
        mode="steady",
        num_epochs=41,
        settle_epochs=20,
        load=RampPattern(start=0.6, end=1.25, start_epoch=5, end_epoch=30),
        description="Load ramps 0.6x -> 1.25x over epochs 5..30 and holds "
        "(Megaphone's Fluid pattern)",
    )


def _burst_overload() -> ScenarioSpec:
    return ScenarioSpec(
        name="burst-overload",
        configuration="B",
        scheme="xy-shift",
        mode="steady",
        num_epochs=40,
        settle_epochs=20,
        load=BurstPattern(base=1.0, peak=1.5, start_epoch=8, length=4, every=12),
        description="Recurring 4-epoch 1.5x overload bursts every 12 epochs "
        "(Megaphone's Sudden pattern)",
    )


def _duty_cycle_idle() -> ScenarioSpec:
    return ScenarioSpec(
        name="duty-cycle-idle",
        configuration="D",
        scheme="right-shift",
        mode="steady",
        num_epochs=40,
        settle_epochs=20,
        load=DutyCyclePattern(on_value=1.0, off_value=0.35, on_epochs=6, off_epochs=2),
        description="Batch workload duty-cycled 6 epochs on / 2 epochs "
        "near-idle at 0.35x",
    )


def _heatwave_ambient() -> ScenarioSpec:
    return ScenarioSpec(
        name="heatwave-ambient",
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=41,
        settle_epochs=10,
        load=DiurnalPattern(mean=1.0, amplitude=0.1, period_epochs=20.0),
        ambient_celsius=RampPattern(start=0.0, end=8.0, start_epoch=0, end_epoch=40),
        description="Ambient climbs +8 C over the horizon while load "
        "breathes +-10%: a datacenter heatwave",
    )


def _hotspot_attack() -> ScenarioSpec:
    return ScenarioSpec(
        name="hotspot-attack",
        configuration="E",
        scheme="rotation",
        mode="transient",
        num_epochs=32,
        settle_epochs=16,
        thermal_method="spectral",
        load=HotspotPattern(center=(2, 2), peak=1.6, sigma=1.0)
        * BurstPattern(base=1.0, peak=1.15, start_epoch=12, length=8),
        description="A 1.6x hotspot pinned on E's central PE (rotation's "
        "fixed point) with a mid-run chip-wide burst, integrated "
        "transiently through the spectral jump",
    )


def _pe_fault_transient() -> ScenarioSpec:
    return ScenarioSpec(
        name="pe-fault-transient",
        configuration="A",
        scheme="xy-shift",
        mode="transient",
        num_epochs=40,
        settle_epochs=16,
        load=FaultPattern(units=((1, 2), (2, 2)), level=0.2, start_epoch=20),
        description="Two hot-row PEs degrade to 0.2x power from epoch 20 "
        "(fault injection); the transient shows the die cooling "
        "around the dead units",
    )


def _ambient_swing_transient() -> ScenarioSpec:
    return ScenarioSpec(
        name="ambient-swing-transient",
        configuration="A",
        scheme="xy-shift",
        mode="transient",
        num_epochs=32,
        settle_epochs=16,
        # Epochs of 1 ms put the diurnal period (16 epochs) well past the
        # sink time constant (~1.7 ms), so the die visibly tracks the swing
        # instead of low-passing it away.
        period_us=1000.0,
        thermal_method="spectral",
        load=ConstantPattern(1.0),
        ambient_celsius=DiurnalPattern(mean=3.0, amplitude=3.0, period_epochs=16.0)
        + BurstPattern(base=0.0, peak=5.0, start_epoch=20, length=4),
        description="Diurnal ambient swing with a 4-epoch +5 C burst, "
        "integrated exactly: the time-varying ambient enters the "
        "spectral jump as an affine boundary term, not a "
        "quasi-static shift",
    )


def _threshold_under_burst() -> ScenarioSpec:
    return ScenarioSpec(
        name="threshold-under-burst",
        configuration="B",
        scheme="threshold-xy-shift",
        policy_params={"trigger_celsius": 90.0},
        mode="steady",
        num_epochs=40,
        settle_epochs=20,
        feedback_stride=4,
        load=BurstPattern(base=1.0, peak=1.4, start_epoch=8, length=4, every=12),
        description="Threshold policy (90 C trigger) under recurring 1.4x "
        "bursts: migrations fire only while the chip runs hot, "
        "with feedback temperatures refreshed every 4 epochs by "
        "one batched solve",
    )


def _adaptive_diurnal() -> ScenarioSpec:
    return ScenarioSpec(
        name="adaptive-diurnal",
        configuration="C",
        scheme="adaptive",
        mode="transient",
        num_epochs=32,
        settle_epochs=16,
        feedback_stride=4,
        feedback_predictor="previous",
        thermal_method="spectral",
        load=DiurnalPattern(mean=1.0, amplitude=0.25, period_epochs=16.0),
        description="Adaptive transform choice chasing the hotspot through "
        "a +-25% diurnal load swing, integrated transiently; the "
        "previous-batch predictor covers the 3 epochs between "
        "feedback refreshes at zero solves",
    )


def _noc_congestion_burst() -> ScenarioSpec:
    return ScenarioSpec(
        name="noc-congestion-burst",
        configuration="B",
        scheme="xy-shift",
        mode="steady",
        num_epochs=40,
        settle_epochs=20,
        load=BurstPattern(base=1.0, peak=1.3, start_epoch=10, length=6, every=16),
        noc=NocChannel(
            traffic="hotspot",
            # The (1,1) hotspot model saturates near 0.0156 flits/cycle/node:
            # the 0.006 base idles below the knee and the 3x bursts land past
            # it, so exactly the burst epochs are flagged saturated.
            injection_rate=0.006,
            rate_pattern=BurstPattern(
                base=1.0, peak=3.0, start_epoch=10, length=6, every=16
            ),
            traffic_kwargs={"hotspots": [[1, 1]]},
        ),
        description="Recurring compute bursts with a 3x NoC fan-in burst "
        "onto the (1,1) memory-controller hotspot: the analytic "
        "wormhole model prices each epoch's latency and flags "
        "the saturated ones",
    )


def _fluid_under_burst() -> ScenarioSpec:
    return ScenarioSpec(
        name="fluid-under-burst",
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=48,
        settle_epochs=20,
        migration_style="fluid",
        units_per_epoch=2,
        load=BurstPattern(base=1.0, peak=1.4, start_epoch=8, length=6, every=16),
        noc=NocChannel(
            traffic="uniform",
            injection_rate=0.01,
            rate_pattern=BurstPattern(
                base=1.0, peak=2.5, start_epoch=8, length=6, every=16
            ),
        ),
        description="Staged fluid migration (a 2-PE epoch budget, so each "
        "4-PE xy-shift cycle occupies its own stage and a plan spans four "
        "epochs) under recurring 1.4x compute bursts; each stage's "
        "transfer cycles are congestion-priced by the epoch's NoC "
        "load, so migrating into a burst costs more",
    )


def _period_schedule_diurnal() -> ScenarioSpec:
    return ScenarioSpec(
        name="period-schedule-diurnal",
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=48,
        settle_epochs=20,
        load=DiurnalPattern(mean=1.0, amplitude=0.2, period_epochs=24.0),
        # The period schedule is authored on a wall-clock seconds axis (a
        # 24-"hour" day of 109 us hours) and bound to epochs at compile
        # time from period_us, so sweeping the period keeps the day a day.
        period=WallClockPattern(
            inner=DiurnalPattern(
                mean=1.0, amplitude=0.5, period_epochs=24.0
            ),
            inner_step_s=109e-6,
        ),
        description="Migration period breathes +-50% over a wall-clock "
        "diurnal day while load swings +-20%: epochs stretch at "
        "night (fewer, cheaper migrations) and shrink under the "
        "daytime peak",
    )


def _snr_fade() -> ScenarioSpec:
    return ScenarioSpec(
        name="snr-fade",
        configuration="A",
        scheme="xy-shift",
        mode="steady",
        num_epochs=41,
        settle_epochs=20,
        load=ConstantPattern(1.0),
        snr_db=RampPattern(start=3.0, end=1.25, start_epoch=5, end_epoch=35),
        description="Channel quality fades 3.0 -> 1.25 dB mid-run; the "
        "decoder burns more iterations per block and the report "
        "shows the throughput cost",
    )


_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {
    "steady-baseline": _steady_baseline,
    "diurnal-load": _diurnal_load,
    "morning-rush-ramp": _morning_rush_ramp,
    "burst-overload": _burst_overload,
    "duty-cycle-idle": _duty_cycle_idle,
    "heatwave-ambient": _heatwave_ambient,
    "hotspot-attack": _hotspot_attack,
    "pe-fault-transient": _pe_fault_transient,
    "ambient-swing-transient": _ambient_swing_transient,
    "threshold-under-burst": _threshold_under_burst,
    "adaptive-diurnal": _adaptive_diurnal,
    "noc-congestion-burst": _noc_congestion_burst,
    "fluid-under-burst": _fluid_under_burst,
    "period-schedule-diurnal": _period_schedule_diurnal,
    "snr-fade": _snr_fade,
}


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, in registry order."""
    return tuple(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Named scenario spec (freshly built; specs are immutable anyway)."""
    builder = _REGISTRY.get(name)
    if builder is None:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {', '.join(_REGISTRY)}"
        )
    return builder()


def all_scenarios() -> List[ScenarioSpec]:
    """Every registered scenario, in registry order."""
    return [builder() for builder in _REGISTRY.values()]
