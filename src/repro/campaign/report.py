"""Aggregate campaign reports: per-axis marginals over the job grid.

A campaign's value is comparative — how does peak temperature move *across*
chips, schemes, feedback strides?  The report therefore groups the completed
:class:`~repro.campaign.spec.JobResult` records along each sweep axis and
summarises the marginal: job count, mean and worst settled peak, mean peak
reduction, mean throughput kept, and the total batched-solve budget the
cell's jobs cost to (re)compute — the number a warm cache saves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.report import format_rows
from .spec import JobResult

#: Axes the report marginalises over, in display order.
REPORT_AXES: Tuple[str, ...] = (
    "scenario",
    "configuration",
    "scheme",
    "feedback_stride",
    "thermal_method",
    "migration_style",
)


@dataclass(frozen=True)
class AxisMarginal:
    """Summary of every job sharing one value of one sweep axis."""

    axis: str
    value: object
    jobs: int
    mean_settled_peak_celsius: float
    max_settled_peak_celsius: float
    mean_peak_reduction_celsius: float
    #: Mean fraction of nominal throughput kept (1 - penalty).
    mean_throughput_kept: float
    #: Total migrations across the cell's jobs.
    migrations: int
    #: Batched steady solves one cold evaluation of the cell costs.
    steady_solves: int

    def to_row(self) -> Dict[str, object]:
        return {
            "axis": self.axis,
            "value": self.value,
            "jobs": self.jobs,
            "mean_peak_c": round(self.mean_settled_peak_celsius, 2),
            "max_peak_c": round(self.max_settled_peak_celsius, 2),
            "mean_reduction_c": round(self.mean_peak_reduction_celsius, 2),
            "throughput_kept_pct": round(100.0 * self.mean_throughput_kept, 3),
            "migrations": self.migrations,
            "steady_solves": self.steady_solves,
        }


@dataclass(frozen=True)
class CampaignReport:
    """Per-axis marginals plus whole-campaign totals."""

    campaign: str
    jobs: int
    steady_solves: int
    marginals: Tuple[AxisMarginal, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "jobs": self.jobs,
            "steady_solves": self.steady_solves,
            "marginals": [
                {
                    "axis": marginal.axis,
                    "value": marginal.value,
                    "jobs": marginal.jobs,
                    "mean_settled_peak_celsius": marginal.mean_settled_peak_celsius,
                    "max_settled_peak_celsius": marginal.max_settled_peak_celsius,
                    "mean_peak_reduction_celsius": marginal.mean_peak_reduction_celsius,
                    "mean_throughput_kept": marginal.mean_throughput_kept,
                    "migrations": marginal.migrations,
                    "steady_solves": marginal.steady_solves,
                }
                for marginal in self.marginals
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignReport":
        marginals = tuple(
            AxisMarginal(**entry)  # type: ignore[arg-type]
            for entry in payload.get("marginals", ())  # type: ignore[union-attr]
        )
        return cls(
            campaign=payload["campaign"],  # type: ignore[arg-type]
            jobs=payload["jobs"],  # type: ignore[arg-type]
            steady_solves=payload["steady_solves"],  # type: ignore[arg-type]
            marginals=marginals,
        )

    def format_table(self) -> str:
        return format_rows([marginal.to_row() for marginal in self.marginals])


def build_report(campaign: str, results: Sequence[JobResult]) -> CampaignReport:
    """Aggregate completed job results into the per-axis marginal report."""
    marginals: List[AxisMarginal] = []
    for axis in REPORT_AXES:
        cells: Dict[object, List[JobResult]] = {}
        for result in results:
            cells.setdefault(result.axes.get(axis), []).append(result)
        if set(cells) == {None}:
            continue
        for value in sorted(cells, key=lambda v: str(v)):
            members = cells[value]
            count = len(members)
            marginals.append(
                AxisMarginal(
                    axis=axis,
                    value=value,
                    jobs=count,
                    mean_settled_peak_celsius=(
                        sum(r.settled_peak_celsius for r in members) / count
                    ),
                    max_settled_peak_celsius=max(
                        r.settled_peak_celsius for r in members
                    ),
                    mean_peak_reduction_celsius=(
                        sum(r.peak_reduction_celsius for r in members) / count
                    ),
                    mean_throughput_kept=(
                        sum(1.0 - r.throughput_penalty for r in members) / count
                    ),
                    migrations=sum(r.migrations for r in members),
                    steady_solves=sum(r.steady_solves for r in members),
                )
            )
    return CampaignReport(
        campaign=campaign,
        jobs=len(results),
        steady_solves=sum(r.steady_solves for r in results),
        marginals=tuple(marginals),
    )
