"""Content-addressed result cache for campaign jobs.

A job's cache key binds **what runs** to **the code that runs it**:

``sha256(canonical spec JSON + "\\n" + code fingerprint)``

The spec side is :meth:`repro.scenarios.spec.ScenarioSpec.canonical_json` —
sorted keys, no whitespace, repr-exact floats — so the same derived spec
hashes identically in every process on every platform.  The code side is a
fingerprint of the ``.py`` sources of the module groups the job actually
touches: every job depends on the thermal/migration/scenario core, jobs with
an SNR channel additionally depend on the LDPC stack, and jobs with a ``noc``
channel on the analytic NoC model.  Editing a scenario therefore invalidates
only that scenario's jobs; editing ``repro.ldpc`` invalidates only the jobs
that decode; editing the core invalidates everything — and *nothing else*
ever does.

The cache itself is a content-addressed directory store: one JSON file per
key, fanned out over 256 two-hex-digit shards, written atomically
(temp file + ``os.replace``) so concurrent shards and interrupted campaigns
never publish torn entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from ..scenarios.spec import ScenarioSpec

#: Module groups -> the ``repro`` subpackages whose sources they fingerprint.
#: "core" is everything a plain thermal scenario touches; "ldpc" and "noc"
#: are the optional channels.
MODULE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "core": (
        "chips",
        "core",
        "migration",
        "placement",
        "power",
        "scenarios",
        "thermal",
    ),
    "ldpc": ("ldpc",),
    "noc": ("noc",),
    "stream": ("stream",),
}


def modules_for_spec(spec: ScenarioSpec) -> Tuple[str, ...]:
    """The module groups one scenario's evaluation can possibly touch."""
    groups = ["core"]
    if spec.snr_db is not None:
        groups.append("ldpc")
    if spec.noc is not None:
        groups.append("noc")
    return tuple(groups)


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


#: (root, groups) -> fingerprint hex digest; sources don't change under a
#: running process, so each combination is hashed once.
_FINGERPRINT_CACHE: Dict[Tuple[str, Tuple[str, ...]], str] = {}
_FINGERPRINT_LOCK = threading.Lock()


def code_fingerprint(
    groups: Iterable[str], root: Optional[Path] = None
) -> str:
    """SHA-256 over the ``.py`` sources of the given module groups.

    Files are hashed in sorted relative-path order with their paths mixed in,
    so renames, additions and deletions all change the fingerprint, and the
    digest is independent of filesystem iteration order.
    """
    groups = tuple(sorted(set(groups)))
    unknown = set(groups) - set(MODULE_GROUPS)
    if unknown:
        raise ValueError(f"unknown module groups: {sorted(unknown)}")
    # Only the installed package root is memoized: its sources cannot change
    # under a running process.  Explicit roots (tests fingerprinting mutable
    # source trees) are re-hashed every call.
    memoize = root is None
    base = _package_root() if root is None else Path(root)
    key = (str(base), groups)
    if memoize:
        with _FINGERPRINT_LOCK:
            cached = _FINGERPRINT_CACHE.get(key)
        if cached is not None:
            return cached
    digest = hashlib.sha256()
    for group in groups:
        digest.update(f"[{group}]".encode("utf-8"))
        for subpackage in MODULE_GROUPS[group]:
            package_dir = base / subpackage
            if not package_dir.is_dir():
                continue
            for source in sorted(package_dir.rglob("*.py")):
                rel = source.relative_to(base).as_posix()
                digest.update(rel.encode("utf-8"))
                digest.update(b"\x00")
                digest.update(source.read_bytes())
                digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    if memoize:
        with _FINGERPRINT_LOCK:
            _FINGERPRINT_CACHE[key] = fingerprint
    return fingerprint


def job_cache_key(
    spec: ScenarioSpec, fingerprint: str, variant: Optional[str] = None
) -> str:
    """Content-addressed key of one job: spec identity x code identity.

    ``variant`` distinguishes evaluation modes of the same spec that can
    produce different payloads — e.g. ``"stream:w8"`` for a streamed job
    driven in 8-epoch windows — so batch and streamed results never share an
    entry.  ``None`` (the batch path) keeps historical keys unchanged.
    """
    payload = spec.canonical_json() + "\n" + fingerprint
    if variant is not None:
        payload += "\n" + variant
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed content-addressed store of job-result payloads.

    Entries are immutable by construction — the key commits to both the spec
    and the code, so a published payload is never rewritten with different
    content.  ``put`` is therefore a blind atomic publish and ``get`` a
    single read.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored payload for ``key``, or None on a miss."""
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # A torn entry can only come from an unclean copy of the cache
            # directory itself (writes are atomic); treat it as a miss and
            # let the next put repair it.
            return None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Atomically publish ``payload`` under ``key``."""
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, allow_nan=False)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except FileNotFoundError:
                pass
            raise

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))
