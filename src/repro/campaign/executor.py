"""Sharded, resumable, cache-aware campaign execution.

:func:`run_campaign` drives one campaign directory end to end:

1. **Expand** the spec into its deterministic job grid and compute every
   job's content-addressed key (spec canonical JSON x code fingerprint).
2. **Replay** the directory's journal: entries whose recorded key still
   matches replay for free — an interrupted campaign resumes exactly where
   it was killed, and a spec or code edit silently invalidates only the
   affected lines.
3. **Probe the cache** for the remainder: warm re-runs of unchanged
   campaigns are pure cache lookups, performing *zero* scenario
   evaluations.
4. **Evaluate** the misses — deduplicated by key, fanned across the
   persistent worker pools via the streaming
   :func:`~repro.analysis.runner.run_parallel_iter`, each result journaled
   and published to the cache the moment it completes (so a kill at any
   point loses at most the in-flight jobs).
5. **Report**: per-axis marginals, written to ``report.json``.

``n_jobs="auto"`` sizes the shard from recorded evidence rather than
optimism: the ``analysis.scenario_suite.multicore`` entry in
``BENCH_perf.json`` says what fan-out actually bought on this machine the
last time the benchmark ran, and the campaign only fans out when that
recorded speedup cleared 1.05x.  Everything still flows through
:func:`~repro.analysis.runner.plan_execution`, so cheap grids degrade to
serial instead of paying dispatch overhead.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.runner import run_parallel_iter
from ..analysis.sweep import experiment_cost_hint_s
from ..obs import counter as _obs_counter
from ..obs import enable as _obs_enable
from ..obs import enabled as _obs_enabled
from ..obs import get_logger
from ..obs import get_registry as _obs_registry
from ..obs import get_tracer as _obs_tracer
from ..obs import span as _obs_span
from ..obs import start_tracing as _obs_start_tracing
from ..obs import timer as _obs_timer
from . import manifest
from .cache import ResultCache, code_fingerprint, job_cache_key, modules_for_spec
from .report import CampaignReport, build_report
from .spec import CampaignJob, CampaignSpec, JobResult, evaluate_job

#: Minimum recorded multicore speedup before "auto" fans a campaign out.
AUTO_SPEEDUP_GATE = 1.05

_LOG = get_logger("campaign")

# Campaign telemetry: how each job was satisfied (journal replay, cache hit,
# fresh evaluation) plus the per-evaluation wall time.
_OBS_REPLAYS = _obs_counter("campaign.journal_replays")
_OBS_CACHE_HITS = _obs_counter("campaign.cache_hits")
_OBS_EVALUATIONS = _obs_counter("campaign.evaluations")
_OBS_JOB_TIME = _obs_timer("campaign.job")


@dataclass
class CampaignRun:
    """Outcome of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    directory: Path
    jobs: List[CampaignJob]
    #: Results in job (grid) order; ``None`` only for dry-run misses.
    results: List[Optional[JobResult]]
    #: Scenario evaluations actually performed (0 on a warm re-run).
    evaluated: int
    #: Jobs satisfied from the content-addressed cache this invocation.
    cache_hits: int
    #: Jobs replayed from the directory's journal (a resumed campaign).
    resumed: int
    #: Pending evaluations a ``--dry-run`` would have executed (after
    #: dedup by cache key).
    forecast_evaluations: int
    dry_run: bool
    wall_s: float
    report: Optional[CampaignReport] = None
    #: The (workers, executor) plan the run settled on.
    plan: Tuple[int, str] = field(default=(1, "thread"))
    #: Registry snapshot (``TelemetrySummary.to_dict()``) taken at the end of
    #: the run; None while telemetry is disabled.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def completed(self) -> int:
        return sum(1 for result in self.results if result is not None)


def _perf_record(path: Optional[Path] = None) -> Optional[Dict[str, object]]:
    """The recorded scenario-suite multicore entry, if the repo has one."""
    if path is None:
        candidate = Path(__file__).resolve()
        for parent in candidate.parents:
            if (parent / "BENCH_perf.json").exists():
                path = parent / "BENCH_perf.json"
                break
        else:
            return None
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    entry = payload.get("hot_paths", {}).get("analysis.scenario_suite.multicore")
    return entry if isinstance(entry, dict) else None


def auto_plan(num_pending: int) -> Tuple[Optional[int], str]:
    """(n_jobs, executor) sized from recorded multicore evidence.

    No evidence, a single-CPU host, or a recorded speedup below
    :data:`AUTO_SPEEDUP_GATE` all mean serial — the benchmark history says
    fan-out does not pay here.  Otherwise the recorded shape (worker count
    and executor kind) is reused, capped by the pending job count.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2 or num_pending <= 1:
        return 1, "thread"
    record = _perf_record()
    if record is None:
        # No history yet: fan out over the CPUs and let plan_execution's
        # cost floors catch degenerate grids.
        return min(cpus, num_pending), "thread"
    if float(record.get("speedup", 0.0) or 0.0) < AUTO_SPEEDUP_GATE:
        return 1, "thread"
    executor = str(record.get("executor") or "thread")
    workers = int(record.get("n_jobs") or 0) or cpus
    if workers < 2:
        workers = cpus
    return min(workers, num_pending), executor


def _evaluate_payload(
    spec_payload: Dict[str, object],
    job_id: str,
    axes: Dict[str, object],
    index: int,
    collect_telemetry: bool = False,
    parent_pid: Optional[int] = None,
    stream_window: Optional[int] = None,
) -> Tuple[Dict[str, object], float, Optional[Dict[str, object]]]:
    """Worker: rebuild the job from plain JSON data, run it, time it.

    Takes only JSON-serialisable arguments so the same callable crosses
    process boundaries (sharded execution) and runs inline (serial plan)
    identically — which is what makes sharded output bit-identical to
    serial: both paths produce the result *as its JSON payload*.

    With ``collect_telemetry`` the worker also returns a meta dict: its pid,
    the job's counter/timer deltas (a thread-local scope, correct under both
    thread and process pools), and — only when running in a *different*
    process than ``parent_pid``, whose registry/tracer state the fork or
    spawn did not share — the span events recorded during the job, serialised
    so the parent can merge them onto the shared timeline.  Thread workers
    skip the event capture: their spans already land in the parent's tracer.
    """
    from ..scenarios.spec import ScenarioSpec

    fresh_process = parent_pid is not None and os.getpid() != parent_pid
    if collect_telemetry and fresh_process and not _obs_enabled():
        _obs_enable()
        _obs_start_tracing()
    started = time.perf_counter()
    job = CampaignJob(
        index=index,
        job_id=job_id,
        spec=ScenarioSpec.from_dict(spec_payload),
        axes=dict(axes),
        stream_window=stream_window,
    )
    meta: Optional[Dict[str, object]] = None
    if collect_telemetry:
        tracer = _obs_tracer()
        mark = tracer.mark()
        with _obs_registry().scoped() as scope:
            with _obs_span("campaign.job", job_id=job_id):
                result = evaluate_job(job)
        meta = {"pid": os.getpid(), "telemetry": scope.to_dict(), "events": []}
        if fresh_process:
            meta["events"] = [
                event.to_dict() for event in tracer.events_since(mark)
            ]
            # Process workers persist across jobs and never export; drop the
            # captured events so the worker-side buffer stays bounded.
            tracer.clear()
    else:
        result = evaluate_job(job)
    return result.to_dict(), time.perf_counter() - started, meta


def _retarget(payload: Dict[str, object], job: CampaignJob) -> Dict[str, object]:
    """A shared key's payload re-labelled for one specific job of the group."""
    if payload.get("job_id") == job.job_id and payload.get("axes") == job.axes:
        return payload
    relabelled = dict(payload)
    relabelled["job_id"] = job.job_id
    relabelled["axes"] = dict(job.axes)
    return relabelled


def compute_job_keys(jobs: List[CampaignJob]) -> Dict[str, str]:
    """``job_id -> content-addressed cache key`` for an expanded grid.

    The code fingerprint is computed once per distinct module-group
    combination, not per job.
    """
    fingerprints: Dict[Tuple[str, ...], str] = {}
    keys: Dict[str, str] = {}
    for job in jobs:
        groups = modules_for_spec(job.spec)
        if job.stream_window is not None:
            # Streamed jobs additionally execute the streaming engine, so
            # their keys must track its sources too.
            groups = groups + ("stream",)
        fingerprint = fingerprints.get(groups)
        if fingerprint is None:
            fingerprint = code_fingerprint(groups)
            fingerprints[groups] = fingerprint
        variant = (
            f"stream:w{job.stream_window}" if job.stream_window is not None else None
        )
        keys[job.job_id] = job_cache_key(job.spec, fingerprint, variant=variant)
    return keys


def run_campaign(
    spec: CampaignSpec,
    directory: Union[str, Path],
    n_jobs: Union[int, str, None] = "auto",
    executor: Optional[str] = None,
    cache_root: Optional[Union[str, Path]] = None,
    dry_run: bool = False,
) -> CampaignRun:
    """Execute (or forecast, with ``dry_run``) a campaign in a directory.

    ``cache_root`` defaults to ``<directory>/cache``; pointing several
    campaign directories at one shared cache root lets overlapping grids
    reuse each other's results.  A dry run touches nothing on disk — it
    expands the grid, replays the journal read-only and probes the cache,
    returning the exact evaluation forecast a real run would execute.
    """
    with _obs_span("campaign.run", campaign=spec.name, dry_run=dry_run):
        return _run_campaign(
            spec,
            directory,
            n_jobs=n_jobs,
            executor=executor,
            cache_root=cache_root,
            dry_run=dry_run,
        )


def _run_campaign(
    spec: CampaignSpec,
    directory: Union[str, Path],
    n_jobs: Union[int, str, None] = "auto",
    executor: Optional[str] = None,
    cache_root: Optional[Union[str, Path]] = None,
    dry_run: bool = False,
) -> CampaignRun:
    started = time.perf_counter()
    directory = Path(directory)
    jobs = spec.expand()
    keys = compute_job_keys(jobs)
    cache = ResultCache(Path(cache_root) if cache_root is not None else directory / "cache")

    if not dry_run:
        manifest.bind_directory(directory, spec)
        manifest.repair_journal(directory)
    replayed = manifest.replay_journal(directory, keys)

    results: Dict[str, JobResult] = {}
    resumed = 0
    for job_id, entry in replayed.items():
        payload = entry.get("result")
        if isinstance(payload, dict):
            results[job_id] = JobResult.from_dict(payload)
            resumed += 1
    if resumed:
        _OBS_REPLAYS.add(resumed)
        _LOG.info("campaign %s: replayed %d job(s) from journal", spec.name, resumed)

    cache_hits = 0
    pending: List[CampaignJob] = []
    seen_pending = set()
    for job in jobs:
        if job.job_id in results or job.job_id in seen_pending:
            continue
        payload = cache.get(keys[job.job_id])
        if payload is not None:
            payload = _retarget(payload, job)
            results[job.job_id] = JobResult.from_dict(payload)
            cache_hits += 1
            _OBS_CACHE_HITS.add()
            if not dry_run:
                manifest.append_journal_entry(
                    directory,
                    {
                        "job_id": job.job_id,
                        "key": keys[job.job_id],
                        "from_cache": True,
                        "wall_s": 0.0,
                        "result": payload,
                    },
                )
        else:
            pending.append(job)
            seen_pending.add(job.job_id)

    # Dedup by cache key: byte-identical derived specs (e.g. the same
    # scenario listed twice) evaluate once and fan the payload out.
    by_key: Dict[str, List[CampaignJob]] = {}
    for job in pending:
        by_key.setdefault(keys[job.job_id], []).append(job)
    unique = [group[0] for group in by_key.values()]

    evaluated = 0
    if not dry_run and unique:
        if n_jobs == "auto":
            workers, executor_kind = auto_plan(len(unique))
        else:
            workers = n_jobs  # type: ignore[assignment]
            executor_kind = executor or "thread"
        if executor is not None:
            executor_kind = executor
        hint = sum(
            experiment_cost_hint_s(job.spec.mode, job.spec.num_epochs) for job in unique
        ) / len(unique)
        collect = _obs_enabled()
        _LOG.info(
            "campaign %s: evaluating %d job(s) on %s x%s",
            spec.name,
            len(unique),
            executor_kind,
            workers,
        )
        tasks = [
            partial(
                _evaluate_payload,
                job.spec.to_dict(),
                job.job_id,
                job.axes,
                job.index,
                collect_telemetry=collect,
                parent_pid=os.getpid(),
                stream_window=job.stream_window,
            )
            for job in unique
        ]
        for index, (payload, wall_s, meta) in run_parallel_iter(
            tasks,
            n_jobs=workers,
            executor=executor_kind,
            est_task_seconds=hint,
        ):
            evaluated += 1
            _OBS_EVALUATIONS.add()
            _OBS_JOB_TIME.record(wall_s)
            job_telemetry: Optional[Dict[str, object]] = None
            if meta is not None:
                job_telemetry = meta.get("telemetry")  # type: ignore[assignment]
                events = meta.get("events")
                if events and meta.get("pid") != os.getpid():
                    _obs_tracer().add_serialized(events)  # type: ignore[arg-type]
            key = keys[unique[index].job_id]
            cache.put(key, payload)
            for job in by_key[key]:
                job_payload = _retarget(payload, job)
                results[job.job_id] = JobResult.from_dict(job_payload)
                entry = {
                    "job_id": job.job_id,
                    "key": key,
                    "from_cache": False,
                    "wall_s": wall_s,
                    "result": job_payload,
                }
                if job_telemetry:
                    entry["telemetry"] = job_telemetry
                manifest.append_journal_entry(directory, entry)
        plan = (workers if isinstance(workers, int) else 1, executor_kind)
    else:
        plan = (1, executor or "thread")

    ordered: List[Optional[JobResult]] = [results.get(job.job_id) for job in jobs]
    telemetry: Optional[Dict[str, object]] = None
    if _obs_enabled():
        snapshot = _obs_registry().snapshot()
        if not snapshot.empty:
            telemetry = snapshot.to_dict()
    report: Optional[CampaignReport] = None
    if not dry_run:
        complete = [result for result in ordered if result is not None]
        report = build_report(spec.name, complete)
        report_payload = report.to_dict()
        if telemetry is not None:
            report_payload["telemetry"] = telemetry
        manifest.write_report(directory, report_payload)

    return CampaignRun(
        spec=spec,
        directory=directory,
        jobs=jobs,
        results=ordered,
        evaluated=evaluated,
        cache_hits=cache_hits,
        resumed=resumed,
        forecast_evaluations=len(unique),
        dry_run=dry_run,
        wall_s=time.perf_counter() - started,
        report=report,
        plan=plan,
        telemetry=telemetry,
    )


def campaign_status(directory: Union[str, Path]) -> Dict[str, object]:
    """Resumable-state summary of an existing campaign directory."""
    directory = Path(directory)
    spec = manifest.load_spec(directory)
    jobs = spec.expand()
    keys = compute_job_keys(jobs)
    replayed = manifest.replay_journal(directory, keys)
    journal_entries = manifest.load_journal(directory)
    done = sum(1 for job in jobs if job.job_id in replayed)
    return {
        "campaign": spec.name,
        "directory": str(directory),
        "jobs": len(jobs),
        "completed": done,
        "pending": len(jobs) - done,
        "journal_entries": len(journal_entries),
        "stale_entries": len(journal_entries) - len(replayed)
        if len(journal_entries) >= len(replayed)
        else 0,
        "has_report": manifest.load_report(directory) is not None,
    }
