"""The resumable on-disk record of one campaign run.

A campaign directory holds:

``campaign.json``
    The :class:`~repro.campaign.spec.CampaignSpec` that owns the directory.
    Re-running the *same campaign* (matched by name) with an edited spec is
    the normal iterate-on-a-sweep workflow — the file is rewritten and the
    journal's per-entry key validation re-runs exactly the jobs the edit
    touched.  Pointing a directory at a *different* campaign is an error.

``manifest.jsonl``
    An append-only journal with one line per **completed** job, written the
    moment each result lands (not at campaign end).  A campaign killed
    mid-flight therefore resumes exactly: completed jobs replay from the
    journal, everything else re-runs.  Each entry records the job id, its
    content-addressed cache key, whether the result came from the cache, the
    wall time, and the full result payload.  On load, a truncated trailing
    line (the in-flight write the kill interrupted) is ignored, and an entry
    only counts for a job whose *current* key matches the recorded one — so
    editing a scenario or the code between runs silently invalidates exactly
    the affected journal lines.

``report.json``
    The aggregate report, rewritten after every completed (non-dry) run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from .spec import CampaignSpec

SPEC_FILENAME = "campaign.json"
JOURNAL_FILENAME = "manifest.jsonl"
REPORT_FILENAME = "report.json"


def spec_path(directory: Path) -> Path:
    return Path(directory) / SPEC_FILENAME


def journal_path(directory: Path) -> Path:
    return Path(directory) / JOURNAL_FILENAME


def report_path(directory: Path) -> Path:
    return Path(directory) / REPORT_FILENAME


def bind_directory(directory: Path, spec: CampaignSpec) -> None:
    """Claim (or re-validate) a campaign directory for ``spec``.

    First run writes ``campaign.json``.  Later runs with the same campaign
    *name* may carry an edited spec — the file is rewritten and the
    journal's key validation decides, per job, what survives the edit.
    Binding a directory to a differently named campaign is refused: the
    journal inside belongs to someone else's sweep.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = spec_path(directory)
    if path.exists():
        stored = CampaignSpec.from_json(path.read_text(encoding="utf-8"))
        if stored.name != spec.name:
            raise ValueError(
                f"directory {directory} belongs to campaign {stored.name!r}; "
                f"refusing to run campaign {spec.name!r} in it"
            )
        if stored.to_dict() == spec.to_dict():
            return
    path.write_text(spec.to_json(), encoding="utf-8")


def load_spec(directory: Path) -> CampaignSpec:
    """The spec bound to an existing campaign directory."""
    path = spec_path(directory)
    if not path.exists():
        raise FileNotFoundError(f"{directory} is not a campaign directory ({path} missing)")
    return CampaignSpec.from_json(path.read_text(encoding="utf-8"))


def append_journal_entry(directory: Path, entry: Dict[str, object]) -> None:
    """Durably append one completed-job line to the journal."""
    line = json.dumps(entry, allow_nan=False)
    with open(journal_path(directory), "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()


def repair_journal(directory: Path) -> None:
    """Truncate the torn trailing write an interrupted run left behind.

    Loading tolerates the torn line, but *appending* after it would glue
    the next entry onto the fragment and turn a benign kill artefact into
    interior corruption — so a resuming run calls this before its first
    append.  A journal ending in a clean newline is left untouched.
    """
    path = journal_path(directory)
    if not path.exists():
        return
    data = path.read_bytes()
    if not data or data.endswith(b"\n"):
        return
    keep = data.rfind(b"\n") + 1  # 0 when no complete line survives
    with open(path, "r+b") as handle:
        handle.truncate(keep)


def load_journal(directory: Path) -> List[Dict[str, object]]:
    """Every intact journal entry, in completion order.

    Tolerates exactly the corruption an interrupted campaign can produce: a
    final line with no trailing newline or half-written JSON is dropped; a
    torn line anywhere *else* means the file was damaged by something other
    than a kill and is reported loudly.
    """
    path = journal_path(directory)
    if not path.exists():
        return []
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    terminated = raw.endswith("\n")
    if terminated:
        lines = lines[:-1]
    entries: List[Dict[str, object]] = []
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        last = position == len(lines) - 1
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            if last:
                # The in-flight write a kill interrupted; the job will
                # simply re-run.
                continue
            raise ValueError(
                f"corrupt journal line {position + 1} in {path}; the file "
                "was damaged outside an interrupted run"
            )
    return entries


def replay_journal(
    directory: Path, current_keys: Dict[str, str]
) -> Dict[str, Dict[str, object]]:
    """Journal entries still valid under the current job -> key mapping.

    Returns ``job_id -> entry`` keeping the *latest* valid entry per job.
    An entry is valid only if the job still exists in the expansion and its
    recorded cache key equals the current one — stale lines from before a
    spec or code edit are ignored, which re-runs exactly the affected jobs.
    """
    valid: Dict[str, Dict[str, object]] = {}
    for entry in load_journal(directory):
        job_id = entry.get("job_id")
        key = entry.get("key")
        if not isinstance(job_id, str) or not isinstance(key, str):
            continue
        if current_keys.get(job_id) == key:
            valid[job_id] = entry
    return valid


def write_report(directory: Path, payload: Dict[str, object]) -> None:
    report_path(directory).write_text(
        json.dumps(payload, indent=2, allow_nan=False) + "\n", encoding="utf-8"
    )


def load_report(directory: Path) -> Optional[Dict[str, object]]:
    path = report_path(directory)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))
