"""Declarative fleet-scale campaign specifications.

A :class:`CampaignSpec` names a set of scenarios and the axes to sweep them
over — chip configurations, reconfiguration schemes, feedback strides and
thermal methods — and expands, deterministically, into the cross-product of
:class:`CampaignJob` entries.  Like :class:`repro.scenarios.spec.ScenarioSpec`
it is a plain frozen dataclass that round-trips through JSON, so campaigns
live in version-controlled files and re-expand identically in every process.

Each job's derived scenario spec is the base scenario with the axis values
substituted via :func:`dataclasses.replace`; the scenario *name* is left
untouched so two campaigns whose grids overlap derive byte-identical specs
and therefore share content-addressed cache entries
(see :mod:`repro.campaign.cache`).

:class:`JobResult` is the durable outcome of one job — a flat, JSON-exact
record of the scalar metrics a campaign report aggregates.  It deliberately
excludes wall-clock time (that lives in the journal entry, see
:mod:`repro.campaign.manifest`), so a cached result is bit-identical to the
fresh run that produced it.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..scenarios.compile import run_scenario
from ..scenarios.registry import get_scenario
from ..scenarios.spec import ScenarioSpec

#: Sweep axes a campaign may pin, in expansion (outer -> inner) order, with
#: the :class:`ScenarioSpec` field each one substitutes.
CAMPAIGN_AXES: Tuple[Tuple[str, str], ...] = (
    ("configuration", "configuration"),
    ("scheme", "scheme"),
    ("feedback_stride", "feedback_stride"),
    ("thermal_method", "thermal_method"),
    ("migration_style", "migration_style"),
)


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative sweep: scenarios x configurations x schemes x ..."""

    name: str
    #: Scenario names from the registry, or inline scenario dicts/specs.
    scenarios: Tuple[Union[str, ScenarioSpec], ...]
    #: Axis values to sweep; ``None`` keeps each scenario's own setting.
    configurations: Optional[Tuple[str, ...]] = None
    schemes: Optional[Tuple[str, ...]] = None
    feedback_strides: Optional[Tuple[int, ...]] = None
    thermal_methods: Optional[Tuple[str, ...]] = None
    #: Migration styles ("sudden" / "fluid" / "batched") to sweep; ``None``
    #: keeps each scenario's own style.
    migration_styles: Optional[Tuple[str, ...]] = None
    #: Streaming window sizes (epochs per window) to sweep; ``None`` keeps
    #: the classic whole-horizon batch evaluation.  Window sizes are an
    #: *evaluation* axis — they do not change the derived scenario spec, so
    #: the jobs get a distinct cache-key variant instead of a distinct spec.
    stream_windows: Optional[Tuple[int, ...]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a campaign needs a name")
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        for axis in (
            "configurations",
            "schemes",
            "feedback_strides",
            "thermal_methods",
            "migration_styles",
            "stream_windows",
        ):
            values = getattr(self, axis)
            if values is None:
                continue
            values = tuple(values)
            if not values:
                raise ValueError(f"{axis} must be None or non-empty")
            if len(set(values)) != len(values):
                raise ValueError(f"{axis} contains duplicates: {values}")
            object.__setattr__(self, axis, values)
        if self.stream_windows is not None and any(
            int(window) < 1 for window in self.stream_windows
        ):
            raise ValueError("stream_windows must be positive epoch counts")
        for entry in self.scenarios:
            if not isinstance(entry, (str, ScenarioSpec)):
                raise TypeError(
                    "scenarios must be registry names or ScenarioSpec instances, "
                    f"got {type(entry)}"
                )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scenarios": [
                entry if isinstance(entry, str) else entry.to_dict()
                for entry in self.scenarios
            ],
            "configurations": list(self.configurations) if self.configurations else None,
            "schemes": list(self.schemes) if self.schemes else None,
            "feedback_strides": (
                list(self.feedback_strides) if self.feedback_strides else None
            ),
            "thermal_methods": (
                list(self.thermal_methods) if self.thermal_methods else None
            ),
            "migration_styles": (
                list(self.migration_styles) if self.migration_styles else None
            ),
            "stream_windows": (
                list(self.stream_windows) if self.stream_windows else None
            ),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignSpec":
        params = dict(payload)
        unknown = set(params) - {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        if unknown:
            raise ValueError(f"unknown campaign fields: {sorted(unknown)}")
        scenarios = params.get("scenarios") or ()
        params["scenarios"] = tuple(
            entry if isinstance(entry, str) else ScenarioSpec.from_dict(entry)
            for entry in scenarios  # type: ignore[union-attr]
        )
        for axis in (
            "configurations",
            "schemes",
            "feedback_strides",
            "thermal_methods",
            "migration_styles",
            "stream_windows",
        ):
            values = params.get(axis)
            if values is not None:
                params[axis] = tuple(values)  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def _base_scenarios(self) -> List[ScenarioSpec]:
        return [
            get_scenario(entry) if isinstance(entry, str) else entry
            for entry in self.scenarios
        ]

    def expand(self) -> List["CampaignJob"]:
        """The deterministic job grid: scenarios x every pinned axis."""
        axis_grids: Tuple[Sequence[object], ...] = (
            self.configurations or (None,),
            self.schemes or (None,),
            self.feedback_strides or (None,),
            self.thermal_methods or (None,),
            self.migration_styles or (None,),
        )
        windows: Tuple[Optional[int], ...] = self.stream_windows or (None,)
        jobs: List[CampaignJob] = []
        for base in self._base_scenarios():
            for values in itertools.product(*axis_grids):
                overrides = {
                    field: value
                    for (axis, field), value in zip(CAMPAIGN_AXES, values)
                    if value is not None
                }
                derived = (
                    dataclasses.replace(base, **overrides) if overrides else base
                )
                style = values[-1]
                for window in windows:
                    axes = {
                        "scenario": base.name,
                        "configuration": derived.configuration,
                        "scheme": derived.scheme,
                        "feedback_stride": derived.feedback_stride,
                        "thermal_method": derived.thermal_method,
                    }
                    job_id = (
                        f"{base.name}@{derived.configuration}"
                        f"/{derived.scheme}"
                        f"/fs{derived.feedback_stride}"
                        f"/{derived.thermal_method}"
                    )
                    if style is not None:
                        # Like stream_windows, the style axis only decorates
                        # ids and axes when actually swept, keeping existing
                        # campaigns' journals and cache keys byte-stable.
                        axes["migration_style"] = str(style)
                        job_id += f"/{style}"
                    if window is not None:
                        # The streaming axis only decorates ids and axes when
                        # actually swept, keeping batch campaigns' journals
                        # and cache keys byte-stable.
                        axes["stream_window"] = int(window)
                        job_id += f"/w{int(window)}"
                    jobs.append(
                        CampaignJob(
                            index=len(jobs),
                            job_id=job_id,
                            spec=derived,
                            axes=axes,
                            stream_window=(
                                int(window) if window is not None else None
                            ),
                        )
                    )
        return jobs


@dataclass(frozen=True)
class CampaignJob:
    """One cell of the expanded grid: a concrete scenario spec plus its axes."""

    index: int
    job_id: str
    spec: ScenarioSpec
    #: The axis values this job pins, for the per-axis marginal report.
    axes: Dict[str, object]
    #: Epochs per window when the job is evaluated through the streaming
    #: engine; ``None`` runs the classic whole-horizon batch path.
    stream_window: Optional[int] = None


@dataclass(frozen=True)
class JobResult:
    """Durable scalar outcome of one campaign job (JSON-exact, no wall time)."""

    job_id: str
    axes: Dict[str, object]
    baseline_peak_celsius: float
    settled_peak_celsius: float
    peak_reduction_celsius: float
    settled_mean_celsius: float
    throughput_penalty: float
    migrations: int
    #: Batched steady solves one evaluation of this job performs
    #: (:meth:`~repro.scenarios.compile.CompiledScenario.expected_steady_solves`).
    steady_solves: int
    ambient_span_celsius: float
    decoder_throughput_factor: Optional[float] = None
    noc_mean_latency_cycles: Optional[float] = None
    noc_saturated_epochs: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "axes": dict(self.axes),
            "baseline_peak_celsius": self.baseline_peak_celsius,
            "settled_peak_celsius": self.settled_peak_celsius,
            "peak_reduction_celsius": self.peak_reduction_celsius,
            "settled_mean_celsius": self.settled_mean_celsius,
            "throughput_penalty": self.throughput_penalty,
            "migrations": self.migrations,
            "steady_solves": self.steady_solves,
            "ambient_span_celsius": self.ambient_span_celsius,
            "decoder_throughput_factor": self.decoder_throughput_factor,
            "noc_mean_latency_cycles": self.noc_mean_latency_cycles,
            "noc_saturated_epochs": self.noc_saturated_epochs,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobResult":
        params = dict(payload)
        unknown = set(params) - {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        if unknown:
            raise ValueError(f"unknown job-result fields: {sorted(unknown)}")
        return cls(**params)  # type: ignore[arg-type]


def evaluate_job(job: CampaignJob) -> JobResult:
    """Run one job's scenario and distil the durable result record.

    This is the single evaluation path for both serial and sharded campaign
    execution, so a cached :class:`JobResult` is bit-identical to a fresh one
    by construction (floats survive the JSON round-trip exactly).  Jobs with
    a ``stream_window`` run the same spec through the streaming engine in
    windows of that many epochs instead of one whole-horizon batch.
    """
    from ..scenarios.compile import compile_scenario

    compiled = compile_scenario(job.spec)
    if job.stream_window is not None:
        return _evaluate_streaming_job(job, compiled)
    outcome = run_scenario(compiled)
    experiment = outcome.experiment
    return JobResult(
        job_id=job.job_id,
        axes=dict(job.axes),
        baseline_peak_celsius=float(experiment.baseline_peak_celsius),
        settled_peak_celsius=float(experiment.settled_peak_celsius),
        peak_reduction_celsius=float(experiment.peak_reduction_celsius),
        settled_mean_celsius=float(experiment.settled_mean_celsius),
        throughput_penalty=float(experiment.throughput_penalty),
        migrations=int(experiment.migrations_performed),
        steady_solves=int(compiled.expected_steady_solves()),
        ambient_span_celsius=float(
            outcome.ambient_offset_max_celsius - outcome.ambient_offset_min_celsius
        ),
        decoder_throughput_factor=(
            float(outcome.decoder.throughput_factor) if outcome.decoder else None
        ),
        noc_mean_latency_cycles=(
            float(outcome.noc.mean_latency_cycles) if outcome.noc else None
        ),
        noc_saturated_epochs=(
            int(outcome.noc.saturated_epochs) if outcome.noc else None
        ),
    )


def _evaluate_streaming_job(job: CampaignJob, compiled) -> JobResult:
    """Evaluate one job through the streaming engine (windowed horizon)."""
    from ..stream import StreamingExperiment, scenario_windows

    window = int(job.stream_window)  # type: ignore[arg-type]
    engine = StreamingExperiment.from_scenario(compiled)
    for _update in engine.process(
        scenario_windows(compiled, window, max_epochs=job.spec.num_epochs)
    ):
        pass
    experiment = engine.finalize()
    summary = engine.summary
    offsets = compiled.ambient_offsets
    nominal = compiled.configuration.workload.parameters.iterations_per_block
    mean_iterations = summary.decoder_mean_iterations
    num_windows = -(-job.spec.num_epochs // window)
    return JobResult(
        job_id=job.job_id,
        axes=dict(job.axes),
        baseline_peak_celsius=float(experiment.baseline_peak_celsius),
        settled_peak_celsius=float(experiment.settled_peak_celsius),
        peak_reduction_celsius=float(experiment.peak_reduction_celsius),
        settled_mean_celsius=float(experiment.settled_mean_celsius),
        throughput_penalty=float(experiment.throughput_penalty),
        migrations=int(experiment.migrations_performed),
        steady_solves=int(compiled.expected_steady_solves(windows=num_windows)),
        ambient_span_celsius=(
            float(offsets.max() - offsets.min()) if offsets is not None else 0.0
        ),
        decoder_throughput_factor=(
            float(nominal / mean_iterations) if mean_iterations else None
        ),
        noc_mean_latency_cycles=(
            float(summary.noc_mean_latency_cycles)
            if summary.noc_mean_latency_cycles is not None
            else None
        ),
        noc_saturated_epochs=(
            int(summary.noc_saturated_epochs)
            if summary.noc_mean_latency_cycles is not None
            else None
        ),
    )
