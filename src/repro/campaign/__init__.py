"""Fleet-scale sweep campaigns over the scenario engine.

A campaign multiplies the scenario library into a declarative grid —
scenarios x chip configurations x reconfiguration schemes x feedback
strides x thermal methods — and executes it with the economics of a build
system rather than a benchmark script:

* :mod:`repro.campaign.spec` — the frozen, JSON-round-trippable
  :class:`CampaignSpec`, its deterministic expansion into
  :class:`CampaignJob` cells, and the JSON-exact :class:`JobResult` record;
* :mod:`repro.campaign.cache` — content-addressed results keyed by
  (canonical job spec, fingerprint of the code the job touches), so warm
  re-runs are pure lookups and an edit invalidates exactly what it changed;
* :mod:`repro.campaign.manifest` — the campaign directory: spec binding,
  append-only completion journal (resume-after-kill), report file;
* :mod:`repro.campaign.executor` — :func:`run_campaign`: journal replay,
  cache probing, key-deduplicated sharded evaluation through the
  persistent worker pools, evidence-based ``n_jobs="auto"`` sizing, dry-run
  forecasting;
* :mod:`repro.campaign.report` — per-axis marginal aggregation.

The CLI surface is ``python -m repro campaign run|list|status|report``.
"""

from .cache import ResultCache, code_fingerprint, job_cache_key, modules_for_spec
from .executor import CampaignRun, auto_plan, campaign_status, run_campaign
from .report import AxisMarginal, CampaignReport, build_report
from .spec import CampaignJob, CampaignSpec, JobResult, evaluate_job

__all__ = [
    "AxisMarginal",
    "CampaignJob",
    "CampaignReport",
    "CampaignRun",
    "CampaignSpec",
    "JobResult",
    "ResultCache",
    "auto_plan",
    "build_report",
    "campaign_status",
    "code_fingerprint",
    "evaluate_job",
    "job_cache_key",
    "modules_for_spec",
    "run_campaign",
]
