"""Metrics recorded by the runtime-reconfiguration experiments.

The paper reports three kinds of numbers: peak-temperature reductions
(Figure 1), average-temperature effects of migration energy, and throughput
penalties as a function of the migration period.  The records here carry all
three plus the per-epoch detail needed to plot time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..noc.topology import Coordinate


@dataclass
class ThermalMetrics:
    """Spatial temperature summary at one instant (or steady state)."""

    peak_celsius: float
    mean_celsius: float
    min_celsius: float
    per_unit_celsius: Dict[Coordinate, float] = field(default_factory=dict)

    @property
    def spread_celsius(self) -> float:
        """Peak-to-minimum spatial spread; migration's goal is to shrink this."""
        return self.peak_celsius - self.min_celsius

    @property
    def spatial_std_celsius(self) -> float:
        """Standard deviation of unit temperatures (thermal uniformity)."""
        if not self.per_unit_celsius:
            return 0.0
        return float(np.std(list(self.per_unit_celsius.values())))

    def hottest_unit(self) -> Optional[Coordinate]:
        if not self.per_unit_celsius:
            return None
        return max(self.per_unit_celsius, key=self.per_unit_celsius.get)

    @classmethod
    def from_map(cls, per_unit_celsius: Dict[Coordinate, float]) -> "ThermalMetrics":
        values = list(per_unit_celsius.values())
        return cls(
            peak_celsius=max(values),
            mean_celsius=float(np.mean(values)),
            min_celsius=min(values),
            per_unit_celsius=dict(per_unit_celsius),
        )

    @classmethod
    def from_vector(cls, topology, per_unit_celsius: np.ndarray) -> "ThermalMetrics":
        """Metrics from one row of a batched temperature array.

        The vector follows the topology's row-major coordinate index; the
        per-unit dict view is kept so reports and policies see the same shape
        as :meth:`from_map` produces.
        """
        values = np.asarray(per_unit_celsius, dtype=float)
        if values.shape != (topology.num_nodes,):
            raise ValueError(
                f"expected {topology.num_nodes} unit temperatures, got shape {values.shape}"
            )
        return cls(
            peak_celsius=float(values.max()),
            mean_celsius=float(values.mean()),
            min_celsius=float(values.min()),
            per_unit_celsius={
                coord: float(values[idx])
                for idx, coord in enumerate(topology.coordinates())
            },
        )


@dataclass
class PerformanceMetrics:
    """Throughput accounting over a simulated interval."""

    total_cycles: int
    migration_cycles: int
    migrations_performed: int

    def __post_init__(self) -> None:
        if self.total_cycles < 0 or self.migration_cycles < 0:
            raise ValueError("cycle counts cannot be negative")
        if self.migration_cycles > self.total_cycles:
            raise ValueError("migration cycles cannot exceed total cycles")

    @property
    def useful_cycles(self) -> int:
        return self.total_cycles - self.migration_cycles

    @property
    def throughput_penalty(self) -> float:
        """Fraction of cycles lost to migration (the paper's 1.6 % / 0.4 % / 0.2 %)."""
        if self.total_cycles == 0:
            return 0.0
        return self.migration_cycles / self.total_cycles

    @property
    def throughput_fraction(self) -> float:
        """Fraction of nominal throughput retained."""
        return 1.0 - self.throughput_penalty


@dataclass
class EpochRecord:
    """One migration period of an experiment."""

    epoch_index: int
    mapping_permutation: List[int]
    transform_applied: Optional[str]
    migration_cycles: int
    migration_energy_j: float
    thermal: ThermalMetrics
    power_map: Dict[Coordinate, float] = field(default_factory=dict)

    @property
    def migrated(self) -> bool:
        return self.transform_applied is not None


@dataclass
class ExperimentResult:
    """Complete outcome of one (configuration, policy) experiment."""

    configuration_name: str
    scheme_name: str
    period_us: float
    baseline_peak_celsius: float
    baseline_mean_celsius: float
    epochs: List[EpochRecord]
    performance: PerformanceMetrics
    total_migration_energy_j: float
    settled_peak_celsius: float
    settled_mean_celsius: float

    # ------------------------------------------------------------------
    @property
    def peak_reduction_celsius(self) -> float:
        """Figure 1's quantity: baseline peak minus peak with migration.

        Positive means migration lowered the hotspot; the paper reports up to
        ~8 °C for the best schemes and a slightly negative value for rotation
        on configuration E.
        """
        return self.baseline_peak_celsius - self.settled_peak_celsius

    @property
    def mean_increase_celsius(self) -> float:
        """Average-temperature change caused by migration energy."""
        return self.settled_mean_celsius - self.baseline_mean_celsius

    @property
    def throughput_penalty(self) -> float:
        return self.performance.throughput_penalty

    @property
    def migrations_performed(self) -> int:
        return self.performance.migrations_performed

    def peak_series(self) -> np.ndarray:
        """Per-epoch peak temperatures (for convergence plots)."""
        return np.array([epoch.thermal.peak_celsius for epoch in self.epochs])

    def summary(self) -> Dict[str, float]:
        """Flat dictionary for CSV/report output."""
        return {
            "configuration": self.configuration_name,
            "scheme": self.scheme_name,
            "period_us": self.period_us,
            "baseline_peak_c": round(self.baseline_peak_celsius, 3),
            "settled_peak_c": round(self.settled_peak_celsius, 3),
            "peak_reduction_c": round(self.peak_reduction_celsius, 3),
            "mean_increase_c": round(self.mean_increase_celsius, 3),
            "throughput_penalty": round(self.throughput_penalty, 5),
            "migrations": self.migrations_performed,
            "migration_energy_j": self.total_migration_energy_j,
        }
