"""Reconfiguration policies: when to migrate and with which transform.

The paper evaluates *periodic* migration with a fixed transform (one curve
per transform in Figure 1, one period per point in the Section 3 sweep).  The
policy abstraction also provides two natural extensions the conclusions hint
at — temperature-threshold triggering and an adaptive transform choice —
which are exercised by the extension benchmarks and examples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..migration.transforms import (
    FIGURE1_SCHEMES,
    MigrationTransform,
    make_transform,
)
from ..noc.topology import Coordinate, MeshTopology
from ..power.trace import vector_to_map
from .metrics import ThermalMetrics


class PolicyContext:
    """Information a policy may use when deciding whether to migrate.

    The context is vector-native: the experiment driver hands policies the
    previous epoch's power as a row-major ``current_power_vector`` and never
    builds a dict per epoch.  :attr:`current_power_map` remains available as
    a **lazily built** dict view — the conversion runs only if a policy
    actually reads it, so policies that work on the vector (or ignore power
    entirely) keep ``vector_to_map`` out of the epoch loop.  Constructing a
    context with an explicit ``current_power_map`` dict still works for
    hand-written tests and external callers.
    """

    def __init__(
        self,
        epoch_index: int,
        current_thermal: Optional[ThermalMetrics],
        current_power_map: Optional[Dict[Coordinate, float]] = None,
        topology: Optional[MeshTopology] = None,
        current_power_vector: Optional[np.ndarray] = None,
        migration_in_progress: bool = False,
    ):
        if topology is None:
            raise TypeError("PolicyContext requires a topology")
        self.epoch_index = epoch_index
        self.current_thermal = current_thermal
        self.topology = topology
        self.current_power_vector = current_power_vector
        #: True while a staged migration plan is still unfolding — the
        #: controller will not start a new migration this epoch, so policies
        #: may skip their decision work (any transform returned is dropped
        #: and counted as a stalled epoch).
        self.migration_in_progress = migration_in_progress
        self._power_map: Optional[Dict[Coordinate, float]] = (
            dict(current_power_map) if current_power_map is not None else None
        )

    @property
    def current_power_map(self) -> Dict[Coordinate, float]:
        """Dict view of the previous epoch's power (built on first access)."""
        if self._power_map is None:
            if self.current_power_vector is None:
                self._power_map = {}
            else:
                self._power_map = vector_to_map(
                    self.topology, self.current_power_vector
                )
        return self._power_map

    @property
    def has_power(self) -> bool:
        """Whether any power information is attached (vector or dict)."""
        if self.current_power_vector is not None:
            return self.current_power_vector.size > 0
        return bool(self._power_map)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PolicyContext(epoch_index={self.epoch_index}, "
            f"current_thermal={self.current_thermal is not None}, "
            f"has_power={self.has_power})"
        )


class ReconfigurationPolicy(ABC):
    """Decides, at each period boundary, which transform (if any) to apply."""

    #: Name used in reports.
    name: str = "abstract"

    #: Whether the policy reads ``context.current_thermal`` and therefore
    #: needs the experiment driver to evaluate feedback temperatures.  The
    #: driver used to infer this with isinstance checks, which silently put
    #: every custom policy on the expensive per-epoch feedback path; now a
    #: policy opts in explicitly (threshold/adaptive do), and everything else
    #: runs feedback-free at zero thermal cost inside the epoch loop.
    requires_thermal_feedback: bool = False

    def __init__(self, period_us: float):
        if period_us <= 0:
            raise ValueError("migration period must be positive")
        self.period_us = period_us

    @abstractmethod
    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        """Transform to apply at this period boundary, or None to stay put."""

    def reset(self) -> None:
        """Clear any internal state before a fresh experiment run."""

    def compact(self) -> None:
        """Fold any per-epoch logs into aggregate counters.

        Streaming runs call this once per window so policy state stays
        constant-size over an unbounded stream.  Policies whose state is
        already O(1) (all the built-ins except adaptive's choice log) need
        not override it.
        """

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the decision-relevant state."""
        return {}

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`state_dict`."""


class NoMigrationPolicy(ReconfigurationPolicy):
    """Baseline: never migrate (static thermally-aware mapping only)."""

    name = "static"

    def __init__(self, period_us: float = 109.0):
        super().__init__(period_us)

    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        return None


class PeriodicMigrationPolicy(ReconfigurationPolicy):
    """The paper's scheme: apply the same transform at every period boundary."""

    def __init__(
        self,
        topology: MeshTopology,
        scheme: str,
        period_us: float = 109.0,
        skip_first: bool = True,
    ):
        super().__init__(period_us)
        self.scheme = scheme
        self.transform = make_transform(scheme, topology)
        self.name = f"periodic-{scheme}"
        #: when True, the first epoch runs in the static mapping (so the
        #: experiment's baseline and migrated phases share a starting point).
        self.skip_first = skip_first

    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        if self.skip_first and context.epoch_index == 0:
            return None
        return self.transform


class ThresholdMigrationPolicy(ReconfigurationPolicy):
    """Migrate only while the peak temperature exceeds a trigger level.

    An extension beyond the paper: periodic checking, but migrations are
    suppressed when the chip is already cool, saving the migration energy and
    throughput penalty during light load.
    """

    requires_thermal_feedback = True

    def __init__(
        self,
        topology: MeshTopology,
        scheme: str,
        trigger_celsius: float,
        period_us: float = 109.0,
    ):
        super().__init__(period_us)
        self.scheme = scheme
        self.trigger_celsius = trigger_celsius
        self.transform = make_transform(scheme, topology)
        self.name = f"threshold-{scheme}@{trigger_celsius:g}C"
        self.migrations_triggered = 0

    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        thermal = context.current_thermal
        if thermal is None:
            return None
        if thermal.peak_celsius >= self.trigger_celsius:
            self.migrations_triggered += 1
            return self.transform
        return None

    def reset(self) -> None:
        self.migrations_triggered = 0

    def state_dict(self) -> Dict[str, object]:
        return {"migrations_triggered": self.migrations_triggered}

    def restore_state(self, state: Dict[str, object]) -> None:
        self.migrations_triggered = int(state["migrations_triggered"])  # type: ignore[arg-type]


class AdaptiveMigrationPolicy(ReconfigurationPolicy):
    """Pick, each period, the candidate transform that best cools the hotspot.

    At every boundary the policy scores each candidate transform by how far
    the predicted post-migration hotspot ends up from the currently hottest
    unit (a cheap spatial heuristic that needs no thermal solve), preferring
    transforms that move the hot workload furthest from its heat.  This is
    the "dynamic alteration of the migration function at runtime" the paper's
    Section 2.3 explicitly allows for.
    """

    requires_thermal_feedback = True

    def __init__(
        self,
        topology: MeshTopology,
        candidate_schemes: Optional[Sequence[str]] = None,
        period_us: float = 109.0,
    ):
        super().__init__(period_us)
        self.topology = topology
        schemes = list(candidate_schemes) if candidate_schemes else list(FIGURE1_SCHEMES)
        self.candidates: List[MigrationTransform] = []
        for scheme in schemes:
            try:
                self.candidates.append(make_transform(scheme, topology))
            except ValueError:
                # e.g. rotation on a non-square mesh: simply not a candidate.
                continue
        if not self.candidates:
            raise ValueError("no valid candidate transforms for this topology")
        self.name = "adaptive"
        self.choices: List[str] = []
        #: transform name -> times chosen, including compacted-away entries.
        self.choice_counts: Dict[str, int] = {}

    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        thermal = context.current_thermal
        if thermal is None or not context.has_power:
            choice = self.candidates[0]
            self._record_choice(choice.name)
            return choice
        hottest = thermal.hottest_unit()
        if hottest is None:
            hottest = self.topology.center

        best = None
        best_score = None
        for transform in self.candidates:
            displaced = transform(hottest)
            distance = self.topology.manhattan_distance(hottest, displaced)
            # Secondary criterion: prefer transforms with fewer fixed points
            # (they leave nothing pinned on a hotspot).
            fixed_penalty = len(transform.fixed_points()) * 0.25
            score = distance - fixed_penalty
            if best_score is None or score > best_score:
                best_score = score
                best = transform
        self._record_choice(best.name)
        return best

    def _record_choice(self, name: str) -> None:
        self.choices.append(name)
        self.choice_counts[name] = self.choice_counts.get(name, 0) + 1

    def reset(self) -> None:
        self.choices = []
        self.choice_counts = {}

    def compact(self) -> None:
        """Drop the per-epoch choice log; :attr:`choice_counts` keeps totals."""
        self.choices = []

    def state_dict(self) -> Dict[str, object]:
        return {"choice_counts": dict(self.choice_counts)}

    def restore_state(self, state: Dict[str, object]) -> None:
        counts = state["choice_counts"]
        self.choice_counts = {str(k): int(v) for k, v in counts.items()}  # type: ignore[union-attr]
        self.choices = []


def make_policy(
    name: str,
    topology: MeshTopology,
    period_us: float = 109.0,
    **kwargs,
) -> ReconfigurationPolicy:
    """Factory: ``"static"``, a Figure-1 scheme name, ``"adaptive"``, or
    ``"threshold-<scheme>"``."""
    if name == "static":
        return NoMigrationPolicy(period_us)
    if name == "adaptive":
        return AdaptiveMigrationPolicy(topology, period_us=period_us, **kwargs)
    if name.startswith("threshold-"):
        scheme = name[len("threshold-") :]
        return ThresholdMigrationPolicy(topology, scheme, period_us=period_us, **kwargs)
    return PeriodicMigrationPolicy(topology, name, period_us=period_us, **kwargs)
