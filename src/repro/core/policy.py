"""Reconfiguration policies: when to migrate and with which transform.

The paper evaluates *periodic* migration with a fixed transform (one curve
per transform in Figure 1, one period per point in the Section 3 sweep).  The
policy abstraction also provides two natural extensions the conclusions hint
at — temperature-threshold triggering and an adaptive transform choice —
which are exercised by the extension benchmarks and examples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..migration.transforms import (
    FIGURE1_SCHEMES,
    MigrationTransform,
    make_transform,
)
from ..noc.topology import Coordinate, MeshTopology
from .metrics import ThermalMetrics


@dataclass
class PolicyContext:
    """Information a policy may use when deciding whether to migrate."""

    epoch_index: int
    current_thermal: Optional[ThermalMetrics]
    current_power_map: Dict[Coordinate, float]
    topology: MeshTopology


class ReconfigurationPolicy(ABC):
    """Decides, at each period boundary, which transform (if any) to apply."""

    #: Name used in reports.
    name: str = "abstract"

    def __init__(self, period_us: float):
        if period_us <= 0:
            raise ValueError("migration period must be positive")
        self.period_us = period_us

    @abstractmethod
    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        """Transform to apply at this period boundary, or None to stay put."""

    def reset(self) -> None:
        """Clear any internal state before a fresh experiment run."""


class NoMigrationPolicy(ReconfigurationPolicy):
    """Baseline: never migrate (static thermally-aware mapping only)."""

    name = "static"

    def __init__(self, period_us: float = 109.0):
        super().__init__(period_us)

    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        return None


class PeriodicMigrationPolicy(ReconfigurationPolicy):
    """The paper's scheme: apply the same transform at every period boundary."""

    def __init__(
        self,
        topology: MeshTopology,
        scheme: str,
        period_us: float = 109.0,
        skip_first: bool = True,
    ):
        super().__init__(period_us)
        self.scheme = scheme
        self.transform = make_transform(scheme, topology)
        self.name = f"periodic-{scheme}"
        #: when True, the first epoch runs in the static mapping (so the
        #: experiment's baseline and migrated phases share a starting point).
        self.skip_first = skip_first

    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        if self.skip_first and context.epoch_index == 0:
            return None
        return self.transform


class ThresholdMigrationPolicy(ReconfigurationPolicy):
    """Migrate only while the peak temperature exceeds a trigger level.

    An extension beyond the paper: periodic checking, but migrations are
    suppressed when the chip is already cool, saving the migration energy and
    throughput penalty during light load.
    """

    def __init__(
        self,
        topology: MeshTopology,
        scheme: str,
        trigger_celsius: float,
        period_us: float = 109.0,
    ):
        super().__init__(period_us)
        self.scheme = scheme
        self.trigger_celsius = trigger_celsius
        self.transform = make_transform(scheme, topology)
        self.name = f"threshold-{scheme}@{trigger_celsius:g}C"
        self.migrations_triggered = 0

    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        thermal = context.current_thermal
        if thermal is None:
            return None
        if thermal.peak_celsius >= self.trigger_celsius:
            self.migrations_triggered += 1
            return self.transform
        return None

    def reset(self) -> None:
        self.migrations_triggered = 0


class AdaptiveMigrationPolicy(ReconfigurationPolicy):
    """Pick, each period, the candidate transform that best cools the hotspot.

    At every boundary the policy scores each candidate transform by how far
    the predicted post-migration hotspot ends up from the currently hottest
    unit (a cheap spatial heuristic that needs no thermal solve), preferring
    transforms that move the hot workload furthest from its heat.  This is
    the "dynamic alteration of the migration function at runtime" the paper's
    Section 2.3 explicitly allows for.
    """

    def __init__(
        self,
        topology: MeshTopology,
        candidate_schemes: Optional[Sequence[str]] = None,
        period_us: float = 109.0,
    ):
        super().__init__(period_us)
        self.topology = topology
        schemes = list(candidate_schemes) if candidate_schemes else list(FIGURE1_SCHEMES)
        self.candidates: List[MigrationTransform] = []
        for scheme in schemes:
            try:
                self.candidates.append(make_transform(scheme, topology))
            except ValueError:
                # e.g. rotation on a non-square mesh: simply not a candidate.
                continue
        if not self.candidates:
            raise ValueError("no valid candidate transforms for this topology")
        self.name = "adaptive"
        self.choices: List[str] = []

    def decide(self, context: PolicyContext) -> Optional[MigrationTransform]:
        thermal = context.current_thermal
        if thermal is None or not context.current_power_map:
            choice = self.candidates[0]
            self.choices.append(choice.name)
            return choice
        hottest = thermal.hottest_unit()
        if hottest is None:
            hottest = self.topology.center

        best = None
        best_score = None
        for transform in self.candidates:
            displaced = transform(hottest)
            distance = self.topology.manhattan_distance(hottest, displaced)
            # Secondary criterion: prefer transforms with fewer fixed points
            # (they leave nothing pinned on a hotspot).
            fixed_penalty = len(transform.fixed_points()) * 0.25
            score = distance - fixed_penalty
            if best_score is None or score > best_score:
                best_score = score
                best = transform
        self.choices.append(best.name)
        return best

    def reset(self) -> None:
        self.choices = []


def make_policy(
    name: str,
    topology: MeshTopology,
    period_us: float = 109.0,
    **kwargs,
) -> ReconfigurationPolicy:
    """Factory: ``"static"``, a Figure-1 scheme name, ``"adaptive"``, or
    ``"threshold-<scheme>"``."""
    if name == "static":
        return NoMigrationPolicy(period_us)
    if name == "adaptive":
        return AdaptiveMigrationPolicy(topology, period_us=period_us, **kwargs)
    if name.startswith("threshold-"):
        scheme = name[len("threshold-") :]
        return ThresholdMigrationPolicy(topology, scheme, period_us=period_us, **kwargs)
    return PeriodicMigrationPolicy(topology, name, period_us=period_us, **kwargs)
