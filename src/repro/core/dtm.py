"""Conventional dynamic thermal management (DTM) baselines.

The paper's introduction contrasts runtime reconfiguration against the
thermal solutions "employed in current commercial processors such as dynamic
clock disabling and dynamic frequency scaling [which] stop or shut down the
entire chip for brief periods of time".  These baselines trade *global*
throughput for temperature, whereas migration only moves the heat around.

This module implements the two classical chip-wide mechanisms so the
comparison can be made quantitatively:

* :class:`StopGoThrottling` — duty-cycle the whole chip (clock gating): for a
  fraction ``d`` of the time the chip runs at full power, for ``1 - d`` it
  only leaks.  Throughput scales with ``d``.
* :class:`DvfsThrottling` — scale frequency (and optionally voltage) of the
  whole chip.  Dynamic power scales as ``f * V^2`` while throughput scales
  with ``f``.

Both expose the same question the migration experiments answer: *what does it
cost, in throughput, to bring the peak temperature down by X degrees?*
:func:`compare_with_migration` puts the three techniques side by side on a
chip configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..chips.configurations import ChipConfiguration
from ..noc.topology import Coordinate
from ..power.trace import map_to_vector
from .experiment import ExperimentSettings, ThermalExperiment
from .policy import PeriodicMigrationPolicy


@dataclass
class DtmOperatingPoint:
    """One throttling level of a chip-wide DTM mechanism."""

    label: str
    throughput_fraction: float
    peak_celsius: float
    mean_celsius: float

    @property
    def throughput_penalty(self) -> float:
        return 1.0 - self.throughput_fraction


class StopGoThrottling:
    """Global stop-go (clock-gating) thermal management.

    At duty cycle ``d`` the chip alternates between running at full power and
    being clock-gated (leakage only).  Because the gating period of real DTM
    (microseconds to milliseconds) is far below the package time constants,
    the die effectively sees the time-averaged power
    ``d * P_active + (1 - d) * P_idle``.
    """

    name = "stop-go"

    def __init__(self, configuration: ChipConfiguration, idle_fraction_of_power: float = 0.08):
        if not 0.0 <= idle_fraction_of_power < 1.0:
            raise ValueError("idle power fraction must be in [0, 1)")
        self.configuration = configuration
        self.idle_fraction_of_power = idle_fraction_of_power

    def power_map(self, duty_cycle: float) -> Dict[Coordinate, float]:
        """Effective per-unit power at a given duty cycle."""
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")
        base = self.configuration.power_map()
        idle = self.idle_fraction_of_power
        return {
            coord: watts * (duty_cycle + (1.0 - duty_cycle) * idle)
            for coord, watts in base.items()
        }

    def operating_point(self, duty_cycle: float) -> DtmOperatingPoint:
        temps = self.configuration.thermal_model.steady_state_by_coord(
            self.power_map(duty_cycle)
        )
        values = list(temps.values())
        return DtmOperatingPoint(
            label=f"{self.name} d={duty_cycle:.2f}",
            throughput_fraction=duty_cycle,
            peak_celsius=max(values),
            mean_celsius=float(np.mean(values)),
        )

    def duty_cycle_for_peak(self, target_peak_celsius: float) -> float:
        """Smallest throughput loss that keeps the peak below the target.

        The effective power (and hence the temperature rise) is affine in the
        duty cycle, so the answer is a closed-form interpolation between the
        full and gated operating points — evaluated with one batched steady
        solve — clamped to (0, 1].
        """
        base = map_to_vector(
            self.configuration.topology, self.configuration.power_map()
        )
        idle_fraction = self.idle_fraction_of_power
        scales = np.array(
            [d + (1.0 - d) * idle_fraction for d in (1.0, 1e-6)]
        )
        peaks = (
            self.configuration.thermal_model.steady_temperatures(
                scales[:, np.newaxis] * base[np.newaxis, :]
            ).max(axis=1)
        )
        full, idle = float(peaks[0]), float(peaks[1])
        if target_peak_celsius >= full:
            return 1.0
        if target_peak_celsius <= idle:
            raise ValueError(
                f"target {target_peak_celsius:.2f} C is below the idle-chip peak "
                f"{idle:.2f} C; no duty cycle can reach it"
            )
        # Linear interpolation between the idle and full operating points.
        fraction = (target_peak_celsius - idle) / (full - idle)
        return float(np.clip(fraction, 1e-6, 1.0))


class DvfsThrottling:
    """Global dynamic voltage/frequency scaling.

    Frequency scaling alone multiplies dynamic power (and throughput) by the
    frequency ratio; coupled voltage scaling (``scale_voltage=True``) follows
    the classical linear V-f relation so dynamic power shrinks roughly with
    the cube of the ratio while throughput still shrinks linearly.
    """

    name = "dvfs"

    def __init__(
        self,
        configuration: ChipConfiguration,
        leakage_fraction_of_power: float = 0.08,
        scale_voltage: bool = True,
        min_voltage_ratio: float = 0.6,
    ):
        if not 0.0 <= leakage_fraction_of_power < 1.0:
            raise ValueError("leakage fraction must be in [0, 1)")
        if not 0.0 < min_voltage_ratio <= 1.0:
            raise ValueError("minimum voltage ratio must be in (0, 1]")
        self.configuration = configuration
        self.leakage_fraction_of_power = leakage_fraction_of_power
        self.scale_voltage = scale_voltage
        self.min_voltage_ratio = min_voltage_ratio

    def _power_scale(self, frequency_ratio: float) -> float:
        """Dynamic-power multiplier at a given frequency ratio."""
        if self.scale_voltage:
            voltage_ratio = max(frequency_ratio, self.min_voltage_ratio)
            return frequency_ratio * voltage_ratio**2
        return frequency_ratio

    def power_map(self, frequency_ratio: float) -> Dict[Coordinate, float]:
        if not 0.0 < frequency_ratio <= 1.0:
            raise ValueError("frequency ratio must be in (0, 1]")
        base = self.configuration.power_map()
        leak = self.leakage_fraction_of_power
        dynamic_scale = self._power_scale(frequency_ratio)
        return {
            coord: watts * (leak + (1.0 - leak) * dynamic_scale)
            for coord, watts in base.items()
        }

    def operating_point(self, frequency_ratio: float) -> DtmOperatingPoint:
        temps = self.configuration.thermal_model.steady_state_by_coord(
            self.power_map(frequency_ratio)
        )
        values = list(temps.values())
        return DtmOperatingPoint(
            label=f"{self.name} f={frequency_ratio:.2f}",
            throughput_fraction=frequency_ratio,
            peak_celsius=max(values),
            mean_celsius=float(np.mean(values)),
        )

    def frequency_for_peak(
        self, target_peak_celsius: float, resolution: float = 0.01
    ) -> float:
        """Highest frequency ratio whose steady peak stays below the target.

        All candidate ratios share the same spatial power shape (the scaling
        is global), so the whole search grid is one batched multi-RHS steady
        solve instead of a solve per candidate.
        """
        if resolution <= 0 or resolution >= 1:
            raise ValueError("resolution must be in (0, 1)")
        ratios: List[float] = []
        ratio = 1.0
        while ratio > resolution:
            ratios.append(ratio)
            ratio -= resolution
        base = map_to_vector(
            self.configuration.topology, self.configuration.power_map()
        )
        leak = self.leakage_fraction_of_power
        scales = np.array(
            [leak + (1.0 - leak) * self._power_scale(r) for r in ratios]
        )
        peaks = (
            self.configuration.thermal_model.steady_temperatures(
                scales[:, np.newaxis] * base[np.newaxis, :]
            ).max(axis=1)
        )
        for candidate, peak in zip(ratios, peaks):
            if peak <= target_peak_celsius:
                return candidate
        raise ValueError(
            f"even the slowest operating point cannot reach {target_peak_celsius:.2f} C"
        )


@dataclass
class DtmComparison:
    """Throughput cost of reaching the same peak temperature three ways."""

    configuration: str
    target_peak_celsius: float
    migration_scheme: str
    migration_penalty: float
    migration_peak_celsius: float
    stop_go_penalty: float
    dvfs_penalty: float

    def to_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "technique": f"runtime reconfiguration ({self.migration_scheme})",
                "peak_c": round(self.migration_peak_celsius, 2),
                "throughput_penalty_pct": round(100 * self.migration_penalty, 2),
            },
            {
                "technique": "stop-go clock gating",
                "peak_c": round(self.target_peak_celsius, 2),
                "throughput_penalty_pct": round(100 * self.stop_go_penalty, 2),
            },
            {
                "technique": "global DVFS",
                "peak_c": round(self.target_peak_celsius, 2),
                "throughput_penalty_pct": round(100 * self.dvfs_penalty, 2),
            },
        ]


def _stop_go_throughput(configuration: ChipConfiguration, target_peak: float) -> float:
    """Duty cycle reaching ``target_peak`` (picklable parallel worker)."""
    return StopGoThrottling(configuration).duty_cycle_for_peak(target_peak)


def _dvfs_throughput(configuration: ChipConfiguration, target_peak: float) -> float:
    """Frequency ratio reaching ``target_peak`` (picklable parallel worker)."""
    return DvfsThrottling(configuration).frequency_for_peak(target_peak)


def compare_with_migration(
    configuration: ChipConfiguration,
    scheme: str = "xy-shift",
    period_us: float = 109.0,
    num_epochs: int = 41,
    n_jobs: Optional[int] = None,
    executor: str = "process",
) -> DtmComparison:
    """Make the paper's implicit comparison explicit.

    Runs the migration experiment, takes the peak temperature it achieves,
    and asks what global stop-go or DVFS throttling would cost in throughput
    to reach the *same* peak on the *same* chip.  The two throttling searches
    depend only on that target peak, so ``n_jobs`` runs them concurrently.
    """
    from functools import partial

    from ..analysis.runner import run_parallel

    policy = PeriodicMigrationPolicy(configuration.topology, scheme, period_us=period_us)
    settings = ExperimentSettings(
        num_epochs=num_epochs, mode="steady", settle_epochs=num_epochs - 1
    )
    migration = ThermalExperiment(configuration, policy, settings=settings).run()
    target_peak = migration.settled_peak_celsius

    # The two throttling searches are batched single-solve bisections — a
    # few milliseconds each.  The cost hint lets the runner drop a process
    # request down to thread/serial execution instead of paying pickling.
    duty, frequency = run_parallel(
        [
            partial(_stop_go_throughput, configuration, target_peak),
            partial(_dvfs_throughput, configuration, target_peak),
        ],
        n_jobs=n_jobs,
        executor=executor,
        est_task_seconds=5e-3,
    )

    return DtmComparison(
        configuration=configuration.name,
        target_peak_celsius=target_peak,
        migration_scheme=scheme,
        migration_penalty=migration.throughput_penalty,
        migration_peak_celsius=migration.settled_peak_celsius,
        stop_go_penalty=1.0 - duty,
        dvfs_penalty=1.0 - frequency,
    )
