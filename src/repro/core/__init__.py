"""Core contribution: runtime reconfiguration policies, controller and experiments."""

from .controller import MigrationEvent, RuntimeReconfigurationController
from .dtm import (
    DtmComparison,
    DtmOperatingPoint,
    DvfsThrottling,
    StopGoThrottling,
    compare_with_migration,
)
from .experiment import ExperimentSettings, FeedbackPlan, ThermalExperiment
from .metrics import (
    EpochRecord,
    ExperimentResult,
    PerformanceMetrics,
    ThermalMetrics,
)
from .policy import (
    AdaptiveMigrationPolicy,
    NoMigrationPolicy,
    PeriodicMigrationPolicy,
    PolicyContext,
    ReconfigurationPolicy,
    ThresholdMigrationPolicy,
    make_policy,
)

__all__ = [
    "MigrationEvent",
    "RuntimeReconfigurationController",
    "DtmComparison",
    "DtmOperatingPoint",
    "DvfsThrottling",
    "StopGoThrottling",
    "compare_with_migration",
    "ExperimentSettings",
    "FeedbackPlan",
    "ThermalExperiment",
    "EpochRecord",
    "ExperimentResult",
    "PerformanceMetrics",
    "ThermalMetrics",
    "AdaptiveMigrationPolicy",
    "NoMigrationPolicy",
    "PeriodicMigrationPolicy",
    "PolicyContext",
    "ReconfigurationPolicy",
    "ThresholdMigrationPolicy",
    "make_policy",
]
