"""The end-to-end thermal experiment driver.

:class:`ThermalExperiment` couples a chip configuration, a reconfiguration
policy, the migration cost model and the thermal solver, and produces the
numbers the paper reports:

* **Figure 1** — reduction in peak temperature per configuration per
  migration scheme, via :meth:`ThermalExperiment.run` in ``"steady"`` mode
  (the long-run periodic regime: spatially, the die sees the time-averaged
  power of the migration orbit, plus the migration energy);
* **Section 3's period sweep** — throughput penalty and residual peak ripple
  as a function of the migration period, via ``"transient"`` mode, which
  integrates the RC network over the actual sequence of epochs starting from
  the settled regime.

The pipeline is array-native end to end: the policy/controller loop emits a
:class:`repro.power.trace.PowerTrace` (one row per epoch, row-major
coordinate index), steady mode evaluates the baseline, every epoch and the
settled-regime average with **one** multi-RHS solve against the cached
factorisation, and transient mode routes the whole piecewise-constant trace
through **one** ``transient_sequence`` call with thermal state carried across
epochs.  Dict views survive only at the edges (policy contexts and the
per-epoch records).  Any :class:`repro.thermal.model.ThermalModel` — the
block-level :class:`repro.thermal.hotspot.HotSpotModel` or the refined
:class:`repro.thermal.grid.GridThermalModel` — can drive the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..chips.configurations import ChipConfiguration
from ..migration.unit import MigrationCost, MigrationUnit
from ..power.trace import PowerTrace, vector_to_map
from ..thermal.model import ThermalModel
from .controller import RuntimeReconfigurationController
from .metrics import EpochRecord, ExperimentResult, PerformanceMetrics, ThermalMetrics
from .policy import NoMigrationPolicy, PolicyContext, ReconfigurationPolicy


@dataclass
class ExperimentSettings:
    """Knobs of the experiment driver."""

    #: Number of migration periods to simulate.
    num_epochs: int = 60
    #: "steady" (time-averaged power, the Figure 1 mode) or "transient"
    #: (integrate the RC network epoch by epoch from the settled regime).
    mode: str = "steady"
    #: Include migration energy in the power maps (the paper does).
    include_migration_energy: bool = True
    #: Fraction of final epochs considered the settled regime.
    settle_fraction: float = 0.5
    #: Explicit number of settled epochs; overrides ``settle_fraction`` when
    #: set.  Choosing a multiple of the transform's orbit length (e.g. 20 or
    #: 40, which divides by 2, 4 and 5) makes the time average exact.
    settle_epochs: Optional[int] = None
    #: Implicit-Euler steps per epoch in transient mode.
    transient_steps_per_epoch: int = 8
    #: Transient integration method: "euler" steps the cached factorisation,
    #: "spectral" jumps to the sampled instants through the eigenbasis.
    thermal_method: str = "euler"

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise ValueError("at least one epoch is required")
        if self.mode not in ("steady", "transient"):
            raise ValueError("mode must be 'steady' or 'transient'")
        if not 0.0 < self.settle_fraction <= 1.0:
            raise ValueError("settle_fraction must be in (0, 1]")
        if self.settle_epochs is not None and not 1 <= self.settle_epochs <= self.num_epochs:
            raise ValueError("settle_epochs must be between 1 and num_epochs")
        if self.transient_steps_per_epoch < 1:
            raise ValueError("transient_steps_per_epoch must be at least 1")
        if self.thermal_method not in ("euler", "spectral"):
            raise ValueError("thermal_method must be 'euler' or 'spectral'")

    def settled_count(self, available_epochs: int) -> int:
        """Number of final epochs that form the settled regime."""
        if self.settle_epochs is not None:
            return min(self.settle_epochs, available_epochs)
        return max(1, int(available_epochs * self.settle_fraction))


class ThermalExperiment:
    """Runs one (configuration, policy) experiment.

    ``thermal_model`` overrides the configuration's default block-level model
    with any other :class:`repro.thermal.model.ThermalModel` (e.g. a
    :class:`repro.thermal.grid.GridThermalModel` for the resolution
    ablation); the batched pipeline is identical either way.

    ``power_modulation`` and ``ambient_offsets_celsius`` are the scenario
    hooks (see :mod:`repro.scenarios`): the modulation matrix scales each
    epoch's power row as the controller emits it (so feedback policies see
    the modulated chip), and the ambient offsets shift each epoch's ambient
    boundary.  Both modes are exact.  In steady mode the RC network's
    conduction block conserves energy, so a uniform ambient change moves
    every steady temperature by exactly that amount — the per-epoch offsets
    are added after the one batched solve.  In transient mode the ambient
    forcing ``G_amb * T_amb(t)`` is affine in the RHS, so the offsets ride
    into the single ``transient_sequence`` call as a per-interval boundary
    term (and the warm start uses the epoch-0 ambient): the RC network
    actually integrates the time-varying ambient, at no extra solves.  The
    static baseline is always reported at the nominal ambient with
    unmodulated load.
    """

    def __init__(
        self,
        configuration: ChipConfiguration,
        policy: ReconfigurationPolicy,
        settings: Optional[ExperimentSettings] = None,
        migration_unit: Optional[MigrationUnit] = None,
        thermal_model: Optional[ThermalModel] = None,
        power_modulation: Optional[np.ndarray] = None,
        ambient_offsets_celsius: Optional[np.ndarray] = None,
    ):
        self.configuration = configuration
        self.policy = policy
        self.settings = settings or ExperimentSettings()
        self.thermal_model: ThermalModel = thermal_model or configuration.thermal_model
        self.controller = RuntimeReconfigurationController(
            configuration,
            migration_unit=migration_unit,
            include_migration_energy=self.settings.include_migration_energy,
        )
        num_epochs = self.settings.num_epochs
        num_units = configuration.topology.num_nodes
        self.power_modulation: Optional[np.ndarray] = None
        if power_modulation is not None:
            modulation = np.asarray(power_modulation, dtype=float)
            if modulation.shape != (num_epochs, num_units):
                raise ValueError(
                    f"power_modulation must be ({num_epochs}, {num_units}), "
                    f"got shape {modulation.shape}"
                )
            if not np.all(np.isfinite(modulation)) or modulation.min() < 0:
                raise ValueError("power_modulation must be finite and non-negative")
            self.power_modulation = modulation
        self.ambient_offsets: Optional[np.ndarray] = None
        if ambient_offsets_celsius is not None:
            offsets = np.asarray(ambient_offsets_celsius, dtype=float)
            if offsets.shape != (num_epochs,):
                raise ValueError(
                    f"ambient_offsets_celsius must have {num_epochs} entries, "
                    f"got shape {offsets.shape}"
                )
            if not np.all(np.isfinite(offsets)):
                raise ValueError("ambient offsets must be finite")
            self.ambient_offsets = offsets

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Run the configured experiment and return its result."""
        self.policy.reset()
        self.controller.reset()
        if self.settings.mode == "steady":
            return self._run_steady()
        return self._run_transient()

    # ------------------------------------------------------------------
    # Shared epoch loop
    # ------------------------------------------------------------------
    def _epoch_sequence(
        self, thermal_feedback: bool
    ) -> Tuple[PowerTrace, List[Optional[MigrationCost]], List[Optional[str]]]:
        """Run the policy/controller loop and collect the epoch power trace.

        Returns the trace (one row per epoch) plus the per-epoch migration
        cost and transform name.  ``thermal_feedback`` controls whether the
        policy sees the predicted steady-state temperature of the previous
        epoch's power map (needed by threshold/adaptive policies, and
        necessarily a per-epoch solve); the periodic policies ignore it.
        """
        configuration = self.configuration
        controller = self.controller
        period_s = self.policy.period_us * 1e-6
        thermal_model = self.thermal_model
        topology = configuration.topology

        trace = PowerTrace(topology)
        costs: List[Optional[MigrationCost]] = []
        names: List[Optional[str]] = []
        previous_thermal: Optional[ThermalMetrics] = None
        previous_power = controller.static_power_vector()

        def feedback_metrics(power: np.ndarray, epoch_index: int) -> ThermalMetrics:
            # Feedback policies must see the scenario's ambient too: a
            # uniform ambient shift moves every steady temperature by the
            # same amount, so the epoch's offset is added to the solved map
            # before the policy reads it.
            temps = thermal_model.steady_state_by_coord(vector_to_map(topology, power))
            if self.ambient_offsets is not None:
                offset = float(self.ambient_offsets[epoch_index])
                temps = {coord: value + offset for coord, value in temps.items()}
            return ThermalMetrics.from_map(temps)

        for epoch_index in range(self.settings.num_epochs):
            if thermal_feedback and previous_thermal is None:
                previous_thermal = feedback_metrics(previous_power, epoch_index)
            # Only feedback policies read the power map; skip the dict view
            # for the periodic/static policies so the batched loop stays
            # dict-free per epoch.
            context = PolicyContext(
                epoch_index=epoch_index,
                current_thermal=previous_thermal,
                current_power_map=(
                    vector_to_map(topology, previous_power) if thermal_feedback else {}
                ),
                topology=topology,
            )
            transform = self.policy.decide(context)
            cost: Optional[MigrationCost] = None
            name: Optional[str] = None
            if transform is not None and transform.name != "identity":
                cost = controller.apply_migration(transform, epoch_index)
                name = transform.name
            power = controller.epoch_power_vector(period_s, cost)
            if self.power_modulation is not None:
                # Scenario hook: scale this epoch's row as it is emitted, so
                # the trace, the feedback path and the records all see the
                # modulated chip.
                power = power * self.power_modulation[epoch_index]
            trace.add_interval(period_s, power)
            costs.append(cost)
            names.append(name)

            if thermal_feedback:
                previous_thermal = feedback_metrics(power, epoch_index)
            previous_power = power
            controller.advance_epoch()
        return trace, costs, names

    def _needs_thermal_feedback(self) -> bool:
        """Only stateful policies need per-epoch temperature estimates."""
        return not isinstance(self.policy, NoMigrationPolicy) and not self._is_periodic()

    def _is_periodic(self) -> bool:
        from .policy import PeriodicMigrationPolicy

        return isinstance(self.policy, (PeriodicMigrationPolicy, NoMigrationPolicy))

    # ------------------------------------------------------------------
    def _performance(self, period_cycles: int) -> PerformanceMetrics:
        total_cycles = period_cycles * self.settings.num_epochs
        return PerformanceMetrics(
            total_cycles=total_cycles,
            migration_cycles=min(self.controller.total_migration_cycles, total_cycles),
            migrations_performed=self.controller.migrations_performed,
        )

    def _records(
        self,
        trace: PowerTrace,
        costs: List[Optional[MigrationCost]],
        names: List[Optional[str]],
        epoch_metrics: List[ThermalMetrics],
    ) -> List[EpochRecord]:
        """Per-epoch records (dict views of the trace at the report edge)."""
        return [
            EpochRecord(
                epoch_index=idx,
                mapping_permutation=[],
                transform_applied=names[idx],
                migration_cycles=costs[idx].cycles if costs[idx] else 0,
                migration_energy_j=costs[idx].total_energy_j if costs[idx] else 0.0,
                thermal=epoch_metrics[idx],
                power_map=trace.power_map(idx),
            )
            for idx in range(len(trace))
        ]

    # ------------------------------------------------------------------
    def _run_steady(self) -> ExperimentResult:
        configuration = self.configuration
        thermal_model = self.thermal_model
        topology = configuration.topology
        period_cycles = configuration.block_period_cycles(self.policy.period_us)

        trace, costs, names = self._epoch_sequence(
            thermal_feedback=self._needs_thermal_feedback()
        )

        # One batch carries everything steady mode needs: the static
        # baseline, every epoch's power row, and the settled-regime average
        # (the time-mean over the final epochs — one or more full orbits of
        # the transform).  A single multi-RHS solve evaluates all of them.
        settle_count = self.settings.settled_count(len(trace))
        settled_power = trace.mean_tail_vector(settle_count)
        batch = np.vstack(
            [
                self.controller.static_power_vector()[np.newaxis, :],
                trace.powers,
                settled_power[np.newaxis, :],
            ]
        )
        temperatures = thermal_model.steady_temperatures(batch)
        if self.ambient_offsets is not None:
            # A uniform ambient shift moves every steady temperature by the
            # same amount (the conduction block conserves energy), so adding
            # the per-epoch offsets after the one batched solve is exact.
            # The settled row solved the mean tail power, so it gets the mean
            # tail offset; the baseline stays at nominal ambient.
            temperatures[1:-1] += self.ambient_offsets[:, np.newaxis]
            temperatures[-1] += float(np.mean(self.ambient_offsets[-settle_count:]))
        baseline = ThermalMetrics.from_vector(topology, temperatures[0])
        settled = ThermalMetrics.from_vector(topology, temperatures[-1])
        epoch_metrics = [
            ThermalMetrics.from_vector(topology, row) for row in temperatures[1:-1]
        ]

        return ExperimentResult(
            configuration_name=configuration.name,
            scheme_name=self.policy.name,
            period_us=self.policy.period_us,
            baseline_peak_celsius=baseline.peak_celsius,
            baseline_mean_celsius=baseline.mean_celsius,
            epochs=self._records(trace, costs, names, epoch_metrics),
            performance=self._performance(period_cycles),
            total_migration_energy_j=self.controller.total_migration_energy_j,
            settled_peak_celsius=settled.peak_celsius,
            settled_mean_celsius=settled.mean_celsius,
        )

    # ------------------------------------------------------------------
    def _run_transient(self) -> ExperimentResult:
        configuration = self.configuration
        thermal_model = self.thermal_model
        topology = configuration.topology
        period_s = self.policy.period_us * 1e-6
        period_cycles = configuration.block_period_cycles(self.policy.period_us)
        time_step = period_s / self.settings.transient_steps_per_epoch

        trace, costs, names = self._epoch_sequence(
            thermal_feedback=self._needs_thermal_feedback()
        )

        # The baseline is still a steady solve of the static power.
        baseline = ThermalMetrics.from_vector(
            topology,
            thermal_model.steady_temperatures(
                self.controller.static_power_vector()[np.newaxis, :]
            )[0],
        )

        # Start from the settled regime: steady state of the time-weighted
        # average power (equal-duration epochs reduce this to the plain mean,
        # but variable-duration traces need the weighting) at the epoch-0
        # ambient, so the transient only has to resolve the within-period
        # ripple.  The whole piecewise-constant trace then goes through one
        # transient_sequence call with state carried across epochs — no
        # per-epoch Python round-trip; the per-epoch ambient offsets enter as
        # an affine boundary term, so time-varying ambient is exact here.
        state = thermal_model.warm_state(
            trace.average_vector(),
            ambient_offset_kelvin=(
                float(self.ambient_offsets[0]) if self.ambient_offsets is not None else 0.0
            ),
        )
        result = thermal_model.transient_sequence(
            trace,
            initial_state=state,
            time_step_s=time_step,
            method=self.settings.thermal_method,
            ambient_offsets_kelvin=self.ambient_offsets,
        )

        # Per-epoch metrics come from segment reductions over the
        # concatenated series: each epoch's peak is the maximum over its
        # sample range (initial instant included, matching the per-epoch
        # reference), and its spatial metrics come from its final instant.
        if result.interval_ranges is None:
            raise ValueError(
                "the thermal model's transient_sequence must populate "
                "TransientResult.interval_ranges (one (start, stop) sample "
                "range per epoch) for the batched pipeline"
            )
        series = thermal_model.unit_series(result)
        starts = np.array([start for start, _stop in result.interval_ranges])
        ends = np.array([stop for _start, stop in result.interval_ranges])
        peak_by_epoch = np.maximum.reduceat(series.max(axis=0), starts)
        final_temps = series[:, ends - 1]
        epoch_metrics = [
            ThermalMetrics.from_vector(topology, final_temps[:, idx])
            for idx in range(len(trace))
        ]
        mean_by_epoch = np.array([metric.mean_celsius for metric in epoch_metrics])

        settle_count = self.settings.settled_count(len(trace))
        settled_peak = float(np.max(peak_by_epoch[-settle_count:]))
        settled_mean = float(np.mean(mean_by_epoch[-settle_count:]))

        return ExperimentResult(
            configuration_name=configuration.name,
            scheme_name=self.policy.name,
            period_us=self.policy.period_us,
            baseline_peak_celsius=baseline.peak_celsius,
            baseline_mean_celsius=baseline.mean_celsius,
            epochs=self._records(trace, costs, names, epoch_metrics),
            performance=self._performance(period_cycles),
            total_migration_energy_j=self.controller.total_migration_energy_j,
            settled_peak_celsius=settled_peak,
            settled_mean_celsius=settled_mean,
        )
