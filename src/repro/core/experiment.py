"""The end-to-end thermal experiment driver.

:class:`ThermalExperiment` couples a chip configuration, a reconfiguration
policy, the migration cost model and the thermal solver, and produces the
numbers the paper reports:

* **Figure 1** — reduction in peak temperature per configuration per
  migration scheme, via :meth:`ThermalExperiment.run` in ``"steady"`` mode
  (the long-run periodic regime: spatially, the die sees the time-averaged
  power of the migration orbit, plus the migration energy);
* **Section 3's period sweep** — throughput penalty and residual peak ripple
  as a function of the migration period, via ``"transient"`` mode, which
  integrates the RC network over the actual sequence of epochs starting from
  the settled regime.

Both modes share the epoch loop: at every period boundary the policy decides
whether (and how) to migrate, the controller applies the transform and
charges its cycles/energy, and the resulting per-PE power map is handed to
the thermal model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..chips.configurations import ChipConfiguration
from ..migration.unit import MigrationCost, MigrationUnit
from ..noc.topology import Coordinate
from .controller import RuntimeReconfigurationController
from .metrics import EpochRecord, ExperimentResult, PerformanceMetrics, ThermalMetrics
from .policy import NoMigrationPolicy, PolicyContext, ReconfigurationPolicy


@dataclass
class ExperimentSettings:
    """Knobs of the experiment driver."""

    #: Number of migration periods to simulate.
    num_epochs: int = 60
    #: "steady" (time-averaged power, the Figure 1 mode) or "transient"
    #: (integrate the RC network epoch by epoch from the settled regime).
    mode: str = "steady"
    #: Include migration energy in the power maps (the paper does).
    include_migration_energy: bool = True
    #: Fraction of final epochs considered the settled regime.
    settle_fraction: float = 0.5
    #: Explicit number of settled epochs; overrides ``settle_fraction`` when
    #: set.  Choosing a multiple of the transform's orbit length (e.g. 20 or
    #: 40, which divides by 2, 4 and 5) makes the time average exact.
    settle_epochs: Optional[int] = None
    #: Implicit-Euler steps per epoch in transient mode.
    transient_steps_per_epoch: int = 8
    #: Transient integration method: "euler" steps the cached factorisation,
    #: "spectral" jumps to the sampled instants through the eigenbasis.
    thermal_method: str = "euler"

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise ValueError("at least one epoch is required")
        if self.mode not in ("steady", "transient"):
            raise ValueError("mode must be 'steady' or 'transient'")
        if not 0.0 < self.settle_fraction <= 1.0:
            raise ValueError("settle_fraction must be in (0, 1]")
        if self.settle_epochs is not None and not 1 <= self.settle_epochs <= self.num_epochs:
            raise ValueError("settle_epochs must be between 1 and num_epochs")
        if self.transient_steps_per_epoch < 1:
            raise ValueError("transient_steps_per_epoch must be at least 1")
        if self.thermal_method not in ("euler", "spectral"):
            raise ValueError("thermal_method must be 'euler' or 'spectral'")

    def settled_count(self, available_epochs: int) -> int:
        """Number of final epochs that form the settled regime."""
        if self.settle_epochs is not None:
            return min(self.settle_epochs, available_epochs)
        return max(1, int(available_epochs * self.settle_fraction))


class ThermalExperiment:
    """Runs one (configuration, policy) experiment."""

    def __init__(
        self,
        configuration: ChipConfiguration,
        policy: ReconfigurationPolicy,
        settings: Optional[ExperimentSettings] = None,
        migration_unit: Optional[MigrationUnit] = None,
    ):
        self.configuration = configuration
        self.policy = policy
        self.settings = settings or ExperimentSettings()
        self.controller = RuntimeReconfigurationController(
            configuration,
            migration_unit=migration_unit,
            include_migration_energy=self.settings.include_migration_energy,
        )

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Run the configured experiment and return its result."""
        self.policy.reset()
        self.controller.reset()
        if self.settings.mode == "steady":
            return self._run_steady()
        return self._run_transient()

    # ------------------------------------------------------------------
    # Shared epoch loop
    # ------------------------------------------------------------------
    def _epoch_sequence(
        self, thermal_feedback: bool
    ) -> List[Tuple[Dict[Coordinate, float], Optional[MigrationCost], Optional[str]]]:
        """Run the policy/controller loop and collect per-epoch power maps.

        ``thermal_feedback`` controls whether the policy sees the predicted
        steady-state temperature of the previous epoch's power map (needed by
        threshold/adaptive policies); the periodic policies ignore it.
        """
        configuration = self.configuration
        controller = self.controller
        period_s = self.policy.period_us * 1e-6
        thermal_model = configuration.thermal_model

        epochs: List[Tuple[Dict[Coordinate, float], Optional[MigrationCost], Optional[str]]] = []
        previous_thermal: Optional[ThermalMetrics] = None
        previous_power = controller.static_power_map()

        for epoch_index in range(self.settings.num_epochs):
            if thermal_feedback and previous_thermal is None:
                previous_thermal = ThermalMetrics.from_map(
                    thermal_model.steady_state_by_coord(previous_power)
                )
            context = PolicyContext(
                epoch_index=epoch_index,
                current_thermal=previous_thermal,
                current_power_map=previous_power,
                topology=configuration.topology,
            )
            transform = self.policy.decide(context)
            cost: Optional[MigrationCost] = None
            name: Optional[str] = None
            if transform is not None and transform.name != "identity":
                cost = controller.apply_migration(transform, epoch_index)
                name = transform.name
            power = controller.epoch_power_map(period_s, cost)
            epochs.append((power, cost, name))

            if thermal_feedback:
                previous_thermal = ThermalMetrics.from_map(
                    thermal_model.steady_state_by_coord(power)
                )
            previous_power = power
            controller.advance_epoch()
        return epochs

    def _needs_thermal_feedback(self) -> bool:
        """Only stateful policies need per-epoch temperature estimates."""
        return not isinstance(self.policy, NoMigrationPolicy) and not self._is_periodic()

    def _is_periodic(self) -> bool:
        from .policy import PeriodicMigrationPolicy

        return isinstance(self.policy, (PeriodicMigrationPolicy, NoMigrationPolicy))

    # ------------------------------------------------------------------
    def _baseline(self) -> Tuple[float, float, Dict[Coordinate, float]]:
        thermal_model = self.configuration.thermal_model
        static_power = self.controller.static_power_map()
        temps = thermal_model.steady_state_by_coord(static_power)
        metrics = ThermalMetrics.from_map(temps)
        return metrics.peak_celsius, metrics.mean_celsius, static_power

    def _performance(self, period_cycles: int) -> PerformanceMetrics:
        total_cycles = period_cycles * self.settings.num_epochs
        return PerformanceMetrics(
            total_cycles=total_cycles,
            migration_cycles=min(self.controller.total_migration_cycles, total_cycles),
            migrations_performed=self.controller.migrations_performed,
        )

    # ------------------------------------------------------------------
    def _run_steady(self) -> ExperimentResult:
        configuration = self.configuration
        thermal_model = configuration.thermal_model
        period_s = self.policy.period_us * 1e-6
        period_cycles = configuration.block_period_cycles(self.policy.period_us)

        baseline_peak, baseline_mean, _static_power = self._baseline()
        epochs_raw = self._epoch_sequence(thermal_feedback=self._needs_thermal_feedback())

        records: List[EpochRecord] = []
        for idx, (power, cost, name) in enumerate(epochs_raw):
            temps = thermal_model.steady_state_by_coord(power)
            records.append(
                EpochRecord(
                    epoch_index=idx,
                    mapping_permutation=[],
                    transform_applied=name,
                    migration_cycles=cost.cycles if cost else 0,
                    migration_energy_j=cost.total_energy_j if cost else 0.0,
                    thermal=ThermalMetrics.from_map(temps),
                    power_map=power,
                )
            )

        # Settled regime: the die responds to the time-average of the power
        # maps over the final epochs (one or more full orbits of the transform).
        settle_count = self.settings.settled_count(len(epochs_raw))
        settled_epochs = epochs_raw[-settle_count:]
        averaged: Dict[Coordinate, float] = {
            coord: 0.0 for coord in configuration.topology.coordinates()
        }
        for power, _cost, _name in settled_epochs:
            for coord, watts in power.items():
                averaged[coord] += watts / settle_count
        settled_temps = thermal_model.steady_state_by_coord(averaged)
        settled_metrics = ThermalMetrics.from_map(settled_temps)

        return ExperimentResult(
            configuration_name=configuration.name,
            scheme_name=self.policy.name,
            period_us=self.policy.period_us,
            baseline_peak_celsius=baseline_peak,
            baseline_mean_celsius=baseline_mean,
            epochs=records,
            performance=self._performance(period_cycles),
            total_migration_energy_j=self.controller.total_migration_energy_j,
            settled_peak_celsius=settled_metrics.peak_celsius,
            settled_mean_celsius=settled_metrics.mean_celsius,
        )

    # ------------------------------------------------------------------
    def _run_transient(self) -> ExperimentResult:
        configuration = self.configuration
        thermal_model = configuration.thermal_model
        period_s = self.policy.period_us * 1e-6
        period_cycles = configuration.block_period_cycles(self.policy.period_us)
        time_step = period_s / self.settings.transient_steps_per_epoch

        baseline_peak, baseline_mean, _static_power = self._baseline()
        epochs_raw = self._epoch_sequence(thermal_feedback=self._needs_thermal_feedback())

        # Start from the settled regime: steady state of the time-averaged
        # power, so the transient only has to resolve the within-period ripple.
        averaged: Dict[Coordinate, float] = {
            coord: 0.0 for coord in configuration.topology.coordinates()
        }
        for power, _cost, _name in epochs_raw:
            for coord, watts in power.items():
                averaged[coord] += watts / len(epochs_raw)
        state = thermal_model.warm_state(averaged)

        records: List[EpochRecord] = []
        peak_by_epoch: List[float] = []
        mean_by_epoch: List[float] = []
        for idx, (power, cost, name) in enumerate(epochs_raw):
            result = thermal_model.transient(
                power,
                period_s,
                initial_state=state,
                time_step_s=time_step,
                method=self.settings.thermal_method,
            )
            state = result.final_state_kelvin
            final_map = result.final_map()
            per_unit = {
                coord: final_map.block_celsius[f"PE_{coord[0]}_{coord[1]}"]
                for coord in configuration.topology.coordinates()
            }
            metrics = ThermalMetrics.from_map(per_unit)
            peak_by_epoch.append(result.peak_celsius)
            mean_by_epoch.append(metrics.mean_celsius)
            records.append(
                EpochRecord(
                    epoch_index=idx,
                    mapping_permutation=[],
                    transform_applied=name,
                    migration_cycles=cost.cycles if cost else 0,
                    migration_energy_j=cost.total_energy_j if cost else 0.0,
                    thermal=metrics,
                    power_map=power,
                )
            )

        settle_count = self.settings.settled_count(len(records))
        settled_peak = float(np.max(peak_by_epoch[-settle_count:]))
        settled_mean = float(np.mean(mean_by_epoch[-settle_count:]))

        return ExperimentResult(
            configuration_name=configuration.name,
            scheme_name=self.policy.name,
            period_us=self.policy.period_us,
            baseline_peak_celsius=baseline_peak,
            baseline_mean_celsius=baseline_mean,
            epochs=records,
            performance=self._performance(period_cycles),
            total_migration_energy_j=self.controller.total_migration_energy_j,
            settled_peak_celsius=settled_peak,
            settled_mean_celsius=settled_mean,
        )
