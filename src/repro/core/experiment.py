"""The end-to-end thermal experiment driver.

:class:`ThermalExperiment` couples a chip configuration, a reconfiguration
policy, the migration cost model and the thermal solver, and produces the
numbers the paper reports:

* **Figure 1** — reduction in peak temperature per configuration per
  migration scheme, via :meth:`ThermalExperiment.run` in ``"steady"`` mode
  (the long-run periodic regime: spatially, the die sees the time-averaged
  power of the migration orbit, plus the migration energy);
* **Section 3's period sweep** — throughput penalty and residual peak ripple
  as a function of the migration period, via ``"transient"`` mode, which
  integrates the RC network over the actual sequence of epochs starting from
  the settled regime.

The pipeline is array-native end to end: the policy/controller loop emits a
:class:`repro.power.trace.PowerTrace` (one row per epoch, row-major
coordinate index), steady mode evaluates the baseline, every epoch and the
settled-regime average with **one** multi-RHS solve against the cached
factorisation, and transient mode routes the whole piecewise-constant trace
through **one** ``transient_sequence`` call with thermal state carried across
epochs.  Dict views survive only at the edges (lazily-built policy-context
views and the per-epoch records).  Policies that declare
``requires_thermal_feedback`` (threshold/adaptive) get their temperature
estimates from a :class:`FeedbackPlan`: one multi-RHS steady batch per
``feedback_stride`` epochs instead of a dict-round-tripped solve per epoch.
Any :class:`repro.thermal.model.ThermalModel` — the
block-level :class:`repro.thermal.hotspot.HotSpotModel` or the refined
:class:`repro.thermal.grid.GridThermalModel` — can drive the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..chips.configurations import ChipConfiguration
from ..migration.unit import MigrationCost, MigrationUnit
from ..obs import span as _obs_span
from ..power.trace import PowerTrace
from ..thermal.model import ThermalModel
from .controller import RuntimeReconfigurationController
from .metrics import EpochRecord, ExperimentResult, PerformanceMetrics, ThermalMetrics
from .policy import PolicyContext, ReconfigurationPolicy


@dataclass
class ExperimentSettings:
    """Knobs of the experiment driver."""

    #: Number of migration periods to simulate.
    num_epochs: int = 60
    #: "steady" (time-averaged power, the Figure 1 mode) or "transient"
    #: (integrate the RC network epoch by epoch from the settled regime).
    mode: str = "steady"
    #: Include migration energy in the power maps (the paper does).
    include_migration_energy: bool = True
    #: Fraction of final epochs considered the settled regime.
    settle_fraction: float = 0.5
    #: Explicit number of settled epochs; overrides ``settle_fraction`` when
    #: set.  Choosing a multiple of the transform's orbit length (e.g. 20 or
    #: 40, which divides by 2, 4 and 5) makes the time average exact.
    settle_epochs: Optional[int] = None
    #: Implicit-Euler steps per epoch in transient mode.
    transient_steps_per_epoch: int = 8
    #: Transient integration method: "euler" steps the cached factorisation,
    #: "spectral" jumps to the sampled instants through the eigenbasis.
    thermal_method: str = "euler"
    #: Feedback refresh stride *k*: policies that require thermal feedback
    #: see temperatures re-evaluated every ``k`` epochs with one multi-RHS
    #: batch per refresh (``ceil(num_epochs / k)`` steady solves in total,
    #: the epoch-0 probe included).  ``k=1`` reproduces the per-epoch
    #: feedback trajectory exactly; larger strides trade feedback freshness
    #: for solve count (see :class:`FeedbackPlan`).
    feedback_stride: int = 1
    #: What feedback policies see *between* refreshes (zero solves either
    #: way): "hold" repeats the most recently solved temperatures, "previous"
    #: answers epoch ``i``'s decision (which wants the temperatures of power
    #: row ``i-1``) with the solved row of epoch ``i - 1 -
    #: feedback_stride`` — the same orbit phase, one chunk earlier (exact
    #: for orbit-periodic workloads when the stride is a multiple of the
    #: transform orbit).
    feedback_predictor: str = "hold"

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise ValueError("at least one epoch is required")
        if self.mode not in ("steady", "transient"):
            raise ValueError("mode must be 'steady' or 'transient'")
        if not 0.0 < self.settle_fraction <= 1.0:
            raise ValueError("settle_fraction must be in (0, 1]")
        if self.settle_epochs is not None and not 1 <= self.settle_epochs <= self.num_epochs:
            raise ValueError("settle_epochs must be between 1 and num_epochs")
        if self.transient_steps_per_epoch < 1:
            raise ValueError("transient_steps_per_epoch must be at least 1")
        if self.thermal_method not in ("euler", "spectral"):
            raise ValueError("thermal_method must be 'euler' or 'spectral'")
        if self.feedback_stride < 1:
            raise ValueError("feedback_stride must be at least 1")
        if self.feedback_predictor not in ("hold", "previous"):
            raise ValueError("feedback_predictor must be 'hold' or 'previous'")

    def settled_count(self, available_epochs: int) -> int:
        """Number of final epochs that form the settled regime."""
        if self.settle_epochs is not None:
            return min(self.settle_epochs, available_epochs)
        return max(1, int(available_epochs * self.settle_fraction))


class FeedbackPlan:
    """Chunked thermal feedback for threshold/adaptive policies.

    Feedback policies read the predicted steady temperature of the previous
    epoch's power map.  The seed path solved one dict-round-tripped steady
    state per epoch *plus* a standalone probe of the static pre-experiment
    power — the last per-epoch thermal work left in the pipeline.  The plan
    replaces it with a chunked, vector-native evaluation:

    * power rows are queued as the controller emits them
      (:meth:`observe`);
    * at every ``stride``-th epoch boundary the queue is flushed through
      **one** multi-RHS :meth:`ThermalModel.steady_temperatures` batch
      against the model's cached factorisation (:meth:`thermal_for`), the
      per-epoch ambient offsets added to the solved rows — the epoch-0
      probe of the static power is just the first batch's row, not a
      standalone dict-path solve;
    * between refreshes the policy sees a **zero-solve** stand-in: the
      "hold" predictor repeats the newest solved row, the "previous"
      predictor reuses the previous batch's temperatures row-for-row (the
      decision at epoch ``i`` wants ``T(P[i-1])`` and gets the solved row
      of epoch ``i - 1 - stride`` — the same orbit phase, one chunk
      earlier; exact for orbit-periodic traces when the stride is a
      multiple of the transform orbit).

    A run of ``E`` epochs performs exactly ``ceil(E / stride)`` steady
    solves here; with ``stride=1`` every decision sees exactly what the
    seed per-epoch path produced (to solver precision), because each
    refresh then solves precisely the one previous-epoch row.
    """

    #: Queue tag for the pre-experiment static power (the epoch-0 probe);
    #: it reads the epoch-0 ambient offset, like the seed probe did.
    PROBE = -1

    def __init__(
        self,
        thermal_model: ThermalModel,
        topology,
        stride: int,
        ambient_offsets: Optional[np.ndarray] = None,
        predictor: str = "hold",
    ):
        if stride < 1:
            raise ValueError("feedback stride must be at least 1")
        if predictor not in ("hold", "previous"):
            raise ValueError("feedback predictor must be 'hold' or 'previous'")
        self.thermal_model = thermal_model
        self.topology = topology
        self.stride = stride
        self.predictor = predictor
        self.ambient_offsets = ambient_offsets
        #: Number of multi-RHS feedback batches solved so far.
        self.batch_solves = 0
        #: Total power rows evaluated across those batches.
        self.rows_solved = 0
        #: Decisions served from a predictor instead of a fresh solve.
        self.predictions_served = 0
        self._pending_rows: List[np.ndarray] = []
        self._pending_epochs: List[int] = []
        #: epoch tag -> solved per-unit Celsius row (offsets applied), for
        #: the most recent batch; metrics are built lazily per consumed row.
        self._solved: dict = {}
        self._last_epoch: Optional[int] = None
        self._metrics: dict = {}

    # ------------------------------------------------------------------
    def prime(self, static_power: np.ndarray) -> None:
        """Queue the pre-experiment static power as the epoch-0 probe row."""
        self._pending_rows.append(np.asarray(static_power, dtype=float))
        self._pending_epochs.append(self.PROBE)

    def observe(self, epoch_index: int, power_row: np.ndarray) -> None:
        """Queue one emitted epoch power row for the next refresh."""
        self._pending_rows.append(power_row)
        self._pending_epochs.append(epoch_index)

    # ------------------------------------------------------------------
    def _offset_for(self, epoch_tag: int) -> float:
        if self.ambient_offsets is None:
            return 0.0
        index = 0 if epoch_tag == self.PROBE else epoch_tag
        return float(self.ambient_offsets[index])

    def _refresh(self) -> None:
        """Evaluate every queued row with one multi-RHS steady batch."""
        if not self._pending_rows:
            return
        batch = np.vstack(self._pending_rows)
        temperatures = self.thermal_model.steady_temperatures(batch)
        self.batch_solves += 1
        self.rows_solved += len(self._pending_rows)
        self._solved = {}
        for row, epoch_tag in enumerate(self._pending_epochs):
            self._solved[epoch_tag] = temperatures[row] + self._offset_for(epoch_tag)
        self._last_epoch = self._pending_epochs[-1]
        self._metrics = {}
        self._pending_rows = []
        self._pending_epochs = []

    def _metrics_for(self, epoch_tag: int) -> ThermalMetrics:
        metrics = self._metrics.get(epoch_tag)
        if metrics is None:
            metrics = ThermalMetrics.from_vector(self.topology, self._solved[epoch_tag])
            self._metrics[epoch_tag] = metrics
        return metrics

    def thermal_for(self, epoch_index: int) -> ThermalMetrics:
        """Feedback temperatures for the decision at ``epoch_index``.

        Refreshes (one batched solve over all rows queued since the last
        refresh) on every ``stride``-th epoch; between refreshes the
        configured predictor answers at zero solves.
        """
        if epoch_index % self.stride == 0:
            self._refresh()
        else:
            self.predictions_served += 1
            if self.predictor == "previous":
                # The decision at epoch i wants T(P[i-1]); the newest batch
                # holds the solved row of epoch i-1-stride — the same orbit
                # phase, one chunk earlier.
                proxy = epoch_index - 1 - self.stride
                if proxy in self._solved:
                    return self._metrics_for(proxy)
        if self._last_epoch is None:
            raise RuntimeError(
                "FeedbackPlan.thermal_for called before any row was queued; "
                "prime() the plan with the static power first"
            )
        return self._metrics_for(self._last_epoch)


class ThermalExperiment:
    """Runs one (configuration, policy) experiment.

    ``thermal_model`` overrides the configuration's default block-level model
    with any other :class:`repro.thermal.model.ThermalModel` (e.g. a
    :class:`repro.thermal.grid.GridThermalModel` for the resolution
    ablation); the batched pipeline is identical either way.

    ``power_modulation`` and ``ambient_offsets_celsius`` are the scenario
    hooks (see :mod:`repro.scenarios`): the modulation matrix scales each
    epoch's power row as the controller emits it (so feedback policies see
    the modulated chip), and the ambient offsets shift each epoch's ambient
    boundary.  Both modes are exact.  In steady mode the RC network's
    conduction block conserves energy, so a uniform ambient change moves
    every steady temperature by exactly that amount — the per-epoch offsets
    are added after the one batched solve.  In transient mode the ambient
    forcing ``G_amb * T_amb(t)`` is affine in the RHS, so the offsets ride
    into the single ``transient_sequence`` call as a per-interval boundary
    term (and the warm start uses the epoch-0 ambient): the RC network
    actually integrates the time-varying ambient, at no extra solves.  The
    static baseline is always reported at the nominal ambient with
    unmodulated load.
    """

    def __init__(
        self,
        configuration: ChipConfiguration,
        policy: ReconfigurationPolicy,
        settings: Optional[ExperimentSettings] = None,
        migration_unit: Optional[MigrationUnit] = None,
        thermal_model: Optional[ThermalModel] = None,
        power_modulation: Optional[np.ndarray] = None,
        ambient_offsets_celsius: Optional[np.ndarray] = None,
    ):
        self.configuration = configuration
        self.policy = policy
        self.settings = settings or ExperimentSettings()
        self.thermal_model: ThermalModel = thermal_model or configuration.thermal_model
        self.controller = RuntimeReconfigurationController(
            configuration,
            migration_unit=migration_unit,
            include_migration_energy=self.settings.include_migration_energy,
        )
        num_epochs = self.settings.num_epochs
        num_units = configuration.topology.num_nodes
        self.power_modulation: Optional[np.ndarray] = None
        if power_modulation is not None:
            modulation = np.asarray(power_modulation, dtype=float)
            if modulation.shape != (num_epochs, num_units):
                raise ValueError(
                    f"power_modulation must be ({num_epochs}, {num_units}), "
                    f"got shape {modulation.shape}"
                )
            if not np.all(np.isfinite(modulation)) or modulation.min() < 0:
                raise ValueError("power_modulation must be finite and non-negative")
            self.power_modulation = modulation
        self.ambient_offsets: Optional[np.ndarray] = None
        if ambient_offsets_celsius is not None:
            offsets = np.asarray(ambient_offsets_celsius, dtype=float)
            if offsets.shape != (num_epochs,):
                raise ValueError(
                    f"ambient_offsets_celsius must have {num_epochs} entries, "
                    f"got shape {offsets.shape}"
                )
            if not np.all(np.isfinite(offsets)):
                raise ValueError("ambient offsets must be finite")
            self.ambient_offsets = offsets
        #: The chunked feedback evaluator of the most recent run (None for
        #: feedback-free policies); exposes batch/row counters for tests.
        self.feedback_plan: Optional[FeedbackPlan] = None

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Run the configured experiment and return its result."""
        self.policy.reset()
        self.controller.reset()
        with _obs_span(
            "experiment.run",
            mode=self.settings.mode,
            epochs=self.settings.num_epochs,
        ):
            if self.settings.mode == "steady":
                return self._run_steady()
            return self._run_transient()

    # ------------------------------------------------------------------
    # Shared epoch loop
    # ------------------------------------------------------------------
    def _epoch_sequence(
        self, thermal_feedback: bool
    ) -> Tuple[PowerTrace, List[Optional[MigrationCost]], List[Optional[str]]]:
        """Run the policy/controller loop and collect the epoch power trace.

        Returns the trace (one row per epoch) plus the per-epoch migration
        cost and transform name.  ``thermal_feedback`` controls whether the
        policy sees predicted steady-state temperatures; when it does, a
        :class:`FeedbackPlan` evaluates them in chunks of
        ``settings.feedback_stride`` epochs — one multi-RHS batch per chunk
        against the cached factorisation, with the epoch-0 probe folded into
        the first batch.  The loop itself is dict-free: policies receive the
        previous power row as a vector (the dict view is built lazily only
        if a policy reads it).
        """
        configuration = self.configuration
        controller = self.controller
        period_s = self.policy.period_us * 1e-6
        topology = configuration.topology

        trace = PowerTrace(topology)
        costs: List[Optional[MigrationCost]] = []
        names: List[Optional[str]] = []
        previous_power = controller.static_power_vector()

        plan: Optional[FeedbackPlan] = None
        if thermal_feedback:
            plan = FeedbackPlan(
                self.thermal_model,
                topology,
                stride=self.settings.feedback_stride,
                ambient_offsets=self.ambient_offsets,
                predictor=self.settings.feedback_predictor,
            )
            plan.prime(previous_power)
        self.feedback_plan = plan

        for epoch_index in range(self.settings.num_epochs):
            context = PolicyContext(
                epoch_index=epoch_index,
                current_thermal=(
                    plan.thermal_for(epoch_index) if plan is not None else None
                ),
                topology=topology,
                current_power_vector=previous_power if thermal_feedback else None,
            )
            transform = self.policy.decide(context)
            cost: Optional[MigrationCost] = None
            name: Optional[str] = None
            if transform is not None and transform.name != "identity":
                cost = controller.apply_migration(transform, epoch_index)
                name = transform.name
            power = controller.epoch_power_vector(period_s, cost)
            if self.power_modulation is not None:
                # Scenario hook: scale this epoch's row as it is emitted, so
                # the trace, the feedback path and the records all see the
                # modulated chip.
                power = power * self.power_modulation[epoch_index]
            trace.add_interval(period_s, power)
            costs.append(cost)
            names.append(name)

            if plan is not None:
                plan.observe(epoch_index, power)
            previous_power = power
            controller.advance_epoch()
        return trace, costs, names

    def _needs_thermal_feedback(self) -> bool:
        """Whether the policy declared it reads feedback temperatures.

        Policies opt in via :attr:`ReconfigurationPolicy.
        requires_thermal_feedback`; custom policies no longer inherit the
        feedback path silently from an isinstance check.
        """
        return bool(getattr(self.policy, "requires_thermal_feedback", False))

    # ------------------------------------------------------------------
    def _performance(self, period_cycles: int) -> PerformanceMetrics:
        total_cycles = period_cycles * self.settings.num_epochs
        return PerformanceMetrics(
            total_cycles=total_cycles,
            migration_cycles=min(self.controller.total_migration_cycles, total_cycles),
            migrations_performed=self.controller.migrations_performed,
        )

    def _records(
        self,
        trace: PowerTrace,
        costs: List[Optional[MigrationCost]],
        names: List[Optional[str]],
        epoch_metrics: List[ThermalMetrics],
    ) -> List[EpochRecord]:
        """Per-epoch records (dict views of the trace at the report edge)."""
        return [
            EpochRecord(
                epoch_index=idx,
                mapping_permutation=[],
                transform_applied=names[idx],
                migration_cycles=costs[idx].cycles if costs[idx] else 0,
                migration_energy_j=costs[idx].total_energy_j if costs[idx] else 0.0,
                thermal=epoch_metrics[idx],
                power_map=trace.power_map(idx),
            )
            for idx in range(len(trace))
        ]

    # ------------------------------------------------------------------
    def _run_steady(self) -> ExperimentResult:
        configuration = self.configuration
        thermal_model = self.thermal_model
        topology = configuration.topology
        period_cycles = configuration.block_period_cycles(self.policy.period_us)

        trace, costs, names = self._epoch_sequence(
            thermal_feedback=self._needs_thermal_feedback()
        )

        # One batch carries everything steady mode needs: the static
        # baseline, every epoch's power row, and the settled-regime average
        # (the time-mean over the final epochs — one or more full orbits of
        # the transform).  A single multi-RHS solve evaluates all of them.
        settle_count = self.settings.settled_count(len(trace))
        settled_power = trace.mean_tail_vector(settle_count)
        batch = np.vstack(
            [
                self.controller.static_power_vector()[np.newaxis, :],
                trace.powers,
                settled_power[np.newaxis, :],
            ]
        )
        temperatures = thermal_model.steady_temperatures(batch)
        if self.ambient_offsets is not None:
            # A uniform ambient shift moves every steady temperature by the
            # same amount (the conduction block conserves energy), so adding
            # the per-epoch offsets after the one batched solve is exact.
            # The settled row solved the mean tail power, so it gets the mean
            # tail offset; the baseline stays at nominal ambient.
            temperatures[1:-1] += self.ambient_offsets[:, np.newaxis]
            temperatures[-1] += float(np.mean(self.ambient_offsets[-settle_count:]))
        baseline = ThermalMetrics.from_vector(topology, temperatures[0])
        settled = ThermalMetrics.from_vector(topology, temperatures[-1])
        epoch_metrics = [
            ThermalMetrics.from_vector(topology, row) for row in temperatures[1:-1]
        ]

        return ExperimentResult(
            configuration_name=configuration.name,
            scheme_name=self.policy.name,
            period_us=self.policy.period_us,
            baseline_peak_celsius=baseline.peak_celsius,
            baseline_mean_celsius=baseline.mean_celsius,
            epochs=self._records(trace, costs, names, epoch_metrics),
            performance=self._performance(period_cycles),
            total_migration_energy_j=self.controller.total_migration_energy_j,
            settled_peak_celsius=settled.peak_celsius,
            settled_mean_celsius=settled.mean_celsius,
        )

    # ------------------------------------------------------------------
    def _run_transient(self) -> ExperimentResult:
        configuration = self.configuration
        thermal_model = self.thermal_model
        topology = configuration.topology
        period_s = self.policy.period_us * 1e-6
        period_cycles = configuration.block_period_cycles(self.policy.period_us)
        time_step = period_s / self.settings.transient_steps_per_epoch

        trace, costs, names = self._epoch_sequence(
            thermal_feedback=self._needs_thermal_feedback()
        )

        # The baseline is still a steady solve of the static power.
        baseline = ThermalMetrics.from_vector(
            topology,
            thermal_model.steady_temperatures(
                self.controller.static_power_vector()[np.newaxis, :]
            )[0],
        )

        # Start from the settled regime: steady state of the time-weighted
        # average power (equal-duration epochs reduce this to the plain mean,
        # but variable-duration traces need the weighting) at the epoch-0
        # ambient, so the transient only has to resolve the within-period
        # ripple.  The whole piecewise-constant trace then goes through one
        # transient_sequence call with state carried across epochs — no
        # per-epoch Python round-trip; the per-epoch ambient offsets enter as
        # an affine boundary term, so time-varying ambient is exact here.
        state = thermal_model.warm_state(
            trace.average_vector(),
            ambient_offset_kelvin=(
                float(self.ambient_offsets[0]) if self.ambient_offsets is not None else 0.0
            ),
        )
        result = thermal_model.transient_sequence(
            trace,
            initial_state=state,
            time_step_s=time_step,
            method=self.settings.thermal_method,
            ambient_offsets_kelvin=self.ambient_offsets,
        )

        # Per-epoch metrics come from segment reductions over the
        # concatenated series: each epoch's peak is the maximum over its
        # sample range (initial instant included, matching the per-epoch
        # reference), and its spatial metrics come from its final instant.
        if result.interval_ranges is None:
            raise ValueError(
                "the thermal model's transient_sequence must populate "
                "TransientResult.interval_ranges (one (start, stop) sample "
                "range per epoch) for the batched pipeline"
            )
        series = thermal_model.unit_series(result)
        starts = np.array([start for start, _stop in result.interval_ranges])
        ends = np.array([stop for _start, stop in result.interval_ranges])
        peak_by_epoch = np.maximum.reduceat(series.max(axis=0), starts)
        final_temps = series[:, ends - 1]
        epoch_metrics = [
            ThermalMetrics.from_vector(topology, final_temps[:, idx])
            for idx in range(len(trace))
        ]
        mean_by_epoch = np.array([metric.mean_celsius for metric in epoch_metrics])

        settle_count = self.settings.settled_count(len(trace))
        settled_peak = float(np.max(peak_by_epoch[-settle_count:]))
        settled_mean = float(np.mean(mean_by_epoch[-settle_count:]))

        return ExperimentResult(
            configuration_name=configuration.name,
            scheme_name=self.policy.name,
            period_us=self.policy.period_us,
            baseline_peak_celsius=baseline.peak_celsius,
            baseline_mean_celsius=baseline.mean_celsius,
            epochs=self._records(trace, costs, names, epoch_metrics),
            performance=self._performance(period_cycles),
            total_migration_energy_j=self.controller.total_migration_energy_j,
            settled_peak_celsius=settled_peak,
            settled_mean_celsius=settled_mean,
        )
