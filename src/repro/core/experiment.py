"""The end-to-end thermal experiment driver.

:class:`ThermalExperiment` couples a chip configuration, a reconfiguration
policy, the migration cost model and the thermal solver, and produces the
numbers the paper reports:

* **Figure 1** — reduction in peak temperature per configuration per
  migration scheme, via :meth:`ThermalExperiment.run` in ``"steady"`` mode
  (the long-run periodic regime: spatially, the die sees the time-averaged
  power of the migration orbit, plus the migration energy);
* **Section 3's period sweep** — throughput penalty and residual peak ripple
  as a function of the migration period, via ``"transient"`` mode, which
  integrates the RC network over the actual sequence of epochs starting from
  the settled regime.

The pipeline is array-native end to end: the policy/controller loop emits a
:class:`repro.power.trace.PowerTrace` (one row per epoch, row-major
coordinate index), steady mode evaluates the baseline, every epoch and the
settled-regime average with **one** multi-RHS solve against the cached
factorisation, and transient mode routes the whole piecewise-constant trace
through **one** ``transient_sequence`` call with thermal state carried across
epochs.  Dict views survive only at the edges (lazily-built policy-context
views and the per-epoch records).  Policies that declare
``requires_thermal_feedback`` (threshold/adaptive) get their temperature
estimates from a :class:`FeedbackPlan`: one multi-RHS steady batch per
``feedback_stride`` epochs instead of a dict-round-tripped solve per epoch.
Any :class:`repro.thermal.model.ThermalModel` — the
block-level :class:`repro.thermal.hotspot.HotSpotModel` or the refined
:class:`repro.thermal.grid.GridThermalModel` — can drive the experiment.

The driver is **window-native**: :meth:`ThermalExperiment.prepare` arms the
run, :meth:`ThermalExperiment.step_window` advances it by any number of
epochs (one batched steady solve or one ``transient_sequence`` call per
window, thermal state, feedback state and the settled-regime rings carried
across window boundaries in constant memory), and
:meth:`ThermalExperiment.finalize` assembles the
:class:`repro.core.metrics.ExperimentResult`.  The classic whole-horizon
:meth:`run` is literally one window — ``prepare(); step_window(num_epochs,
is_last=True); finalize()`` — so batch and streaming
(:mod:`repro.stream`) share one code path and one set of numbers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..chips.configurations import ChipConfiguration
from ..migration.plan import MIGRATION_STYLES, congestion_factor
from ..migration.unit import MigrationCost, MigrationUnit
from ..obs import counter as _obs_counter
from ..obs import span as _obs_span
from ..power.trace import PowerTrace
from ..thermal.model import ThermalModel
from .controller import RuntimeReconfigurationController
from .metrics import EpochRecord, ExperimentResult, PerformanceMetrics, ThermalMetrics
from .policy import PolicyContext, ReconfigurationPolicy

#: Policy decisions dropped because a staged migration was still unfolding.
_OBS_STALLED = _obs_counter("migration.stalled_epochs")


@dataclass
class ExperimentSettings:
    """Knobs of the experiment driver."""

    #: Number of migration periods to simulate.
    num_epochs: int = 60
    #: "steady" (time-averaged power, the Figure 1 mode) or "transient"
    #: (integrate the RC network epoch by epoch from the settled regime).
    mode: str = "steady"
    #: Include migration energy in the power maps (the paper does).
    include_migration_energy: bool = True
    #: Fraction of final epochs considered the settled regime.
    settle_fraction: float = 0.5
    #: Explicit number of settled epochs; overrides ``settle_fraction`` when
    #: set.  Choosing a multiple of the transform's orbit length (e.g. 20 or
    #: 40, which divides by 2, 4 and 5) makes the time average exact.  A
    #: streamed run with an unknown horizon *requires* an explicit settled
    #: window (here or via ``prepare(settled_capacity=...)``) because the
    #: fraction has nothing to take a fraction of.
    settle_epochs: Optional[int] = None
    #: Implicit-Euler steps per epoch in transient mode.
    transient_steps_per_epoch: int = 8
    #: Transient integration method: "euler" steps the cached factorisation,
    #: "spectral" jumps to the sampled instants through the eigenbasis.
    thermal_method: str = "euler"
    #: Feedback refresh stride *k*: policies that require thermal feedback
    #: see temperatures re-evaluated every ``k`` epochs with one multi-RHS
    #: batch per refresh (``ceil(num_epochs / k)`` steady solves in total,
    #: the epoch-0 probe included).  ``k=1`` reproduces the per-epoch
    #: feedback trajectory exactly; larger strides trade feedback freshness
    #: for solve count (see :class:`FeedbackPlan`).
    feedback_stride: int = 1
    #: What feedback policies see *between* refreshes (zero solves either
    #: way): "hold" repeats the most recently solved temperatures, "previous"
    #: answers epoch ``i``'s decision (which wants the temperatures of power
    #: row ``i-1``) with the solved row of epoch ``i - 1 -
    #: feedback_stride`` — the same orbit phase, one chunk earlier (exact
    #: for orbit-periodic workloads when the stride is a multiple of the
    #: transform orbit).
    feedback_predictor: str = "hold"
    #: How a migration unfolds: "sudden" applies the whole transform in the
    #: deciding epoch (the seed behaviour, bit-identical); "fluid" moves
    #: ~``units_per_epoch`` PEs per epoch (whole permutation cycles, so the
    #: mid-plan mapping stays a valid permutation); "batched" executes one
    #: link-disjoint phase group per epoch.  See :mod:`repro.migration.plan`.
    migration_style: str = "sudden"
    #: Per-epoch PE budget of a "fluid" plan (cycles are atomic, so a cycle
    #: longer than the budget still runs in one epoch).
    units_per_epoch: int = 2

    def __post_init__(self) -> None:
        if self.num_epochs < 1:
            raise ValueError("at least one epoch is required")
        if self.mode not in ("steady", "transient"):
            raise ValueError("mode must be 'steady' or 'transient'")
        if not 0.0 < self.settle_fraction <= 1.0:
            raise ValueError("settle_fraction must be in (0, 1]")
        if self.settle_epochs is not None and not 1 <= self.settle_epochs <= self.num_epochs:
            raise ValueError("settle_epochs must be between 1 and num_epochs")
        if self.transient_steps_per_epoch < 1:
            raise ValueError("transient_steps_per_epoch must be at least 1")
        if self.thermal_method not in ("euler", "spectral"):
            raise ValueError("thermal_method must be 'euler' or 'spectral'")
        if self.feedback_stride < 1:
            raise ValueError("feedback_stride must be at least 1")
        if self.feedback_predictor not in ("hold", "previous"):
            raise ValueError("feedback_predictor must be 'hold' or 'previous'")
        if self.migration_style not in MIGRATION_STYLES:
            raise ValueError(
                f"migration_style must be one of {MIGRATION_STYLES}, "
                f"got {self.migration_style!r}"
            )
        if self.units_per_epoch < 1:
            raise ValueError("units_per_epoch must be at least 1")

    def settled_count(self, available_epochs: int) -> int:
        """Number of final epochs that form the settled regime."""
        if self.settle_epochs is not None:
            return min(self.settle_epochs, available_epochs)
        return max(1, int(available_epochs * self.settle_fraction))


class FeedbackPlan:
    """Chunked thermal feedback for threshold/adaptive policies.

    Feedback policies read the predicted steady temperature of the previous
    epoch's power map.  The seed path solved one dict-round-tripped steady
    state per epoch *plus* a standalone probe of the static pre-experiment
    power — the last per-epoch thermal work left in the pipeline.  The plan
    replaces it with a chunked, vector-native evaluation:

    * power rows are queued as the controller emits them
      (:meth:`observe`);
    * at every ``stride``-th epoch boundary the queue is flushed through
      **one** multi-RHS :meth:`ThermalModel.steady_temperatures` batch
      against the model's cached factorisation (:meth:`thermal_for`), the
      per-epoch ambient offsets added to the solved rows — the epoch-0
      probe of the static power is just the first batch's row, not a
      standalone dict-path solve;
    * between refreshes the policy sees a **zero-solve** stand-in: the
      "hold" predictor repeats the newest solved row, the "previous"
      predictor reuses the previous batch's temperatures row-for-row (the
      decision at epoch ``i`` wants ``T(P[i-1])`` and gets the solved row
      of epoch ``i - 1 - stride`` — the same orbit phase, one chunk
      earlier; exact for orbit-periodic traces when the stride is a
      multiple of the transform orbit).

    A run of ``E`` epochs performs exactly ``ceil(E / stride)`` steady
    solves here; with ``stride=1`` every decision sees exactly what the
    seed per-epoch path produced (to solver precision), because each
    refresh then solves precisely the one previous-epoch row.

    Ambient offsets come either as a whole-horizon array
    (``ambient_offsets``, the direct-construction path) or incrementally per
    epoch window via :meth:`add_offsets` — the windowed driver feeds each
    window's offsets as it arrives, so the plan never needs the horizon up
    front and its offset map stays bounded by the refresh lookback.
    """

    #: Queue tag for the pre-experiment static power (the epoch-0 probe);
    #: it reads the epoch-0 ambient offset, like the seed probe did.
    PROBE = -1

    def __init__(
        self,
        thermal_model: ThermalModel,
        topology,
        stride: int,
        ambient_offsets: Optional[np.ndarray] = None,
        predictor: str = "hold",
    ):
        if stride < 1:
            raise ValueError("feedback stride must be at least 1")
        if predictor not in ("hold", "previous"):
            raise ValueError("feedback predictor must be 'hold' or 'previous'")
        self.thermal_model = thermal_model
        self.topology = topology
        self.stride = stride
        self.predictor = predictor
        self.ambient_offsets = ambient_offsets
        #: Number of multi-RHS feedback batches solved so far.
        self.batch_solves = 0
        #: Total power rows evaluated across those batches.
        self.rows_solved = 0
        #: Decisions served from a predictor instead of a fresh solve.
        self.predictions_served = 0
        self._pending_rows: List[np.ndarray] = []
        self._pending_epochs: List[int] = []
        #: epoch tag -> solved per-unit Celsius row (offsets applied), for
        #: the most recent batch; metrics are built lazily per consumed row.
        self._solved: dict = {}
        self._last_epoch: Optional[int] = None
        self._metrics: dict = {}
        #: absolute epoch index -> ambient offset, filled window by window
        #: via :meth:`add_offsets` and pruned past the refresh lookback.
        self._offset_map: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def prime(self, static_power: np.ndarray) -> None:
        """Queue the pre-experiment static power as the epoch-0 probe row."""
        self._pending_rows.append(np.asarray(static_power, dtype=float))
        self._pending_epochs.append(self.PROBE)

    def observe(self, epoch_index: int, power_row: np.ndarray) -> None:
        """Queue one emitted epoch power row for the next refresh."""
        self._pending_rows.append(power_row)
        self._pending_epochs.append(epoch_index)

    def add_offsets(self, start_epoch: int, offsets: Optional[np.ndarray]) -> None:
        """Register the ambient offsets of epochs ``start_epoch + i``.

        The windowed counterpart of the constructor's whole-horizon array.
        Entries older than two refresh strides before ``start_epoch`` can no
        longer be read by any future refresh (a refresh at epoch ``e`` only
        flushes rows observed since the previous one, i.e. tags ``>= e -
        stride``), so they are pruned — the map stays O(stride) over an
        unbounded stream.
        """
        if offsets is None:
            return
        values = np.asarray(offsets, dtype=float)
        for index, value in enumerate(values):
            self._offset_map[start_epoch + index] = float(value)
        cutoff = start_epoch - 2 * self.stride
        for key in [key for key in self._offset_map if key < cutoff]:
            del self._offset_map[key]

    # ------------------------------------------------------------------
    def _offset_for(self, epoch_tag: int) -> float:
        index = 0 if epoch_tag == self.PROBE else epoch_tag
        if self.ambient_offsets is not None:
            return float(self.ambient_offsets[index])
        return self._offset_map.get(index, 0.0)

    def _refresh(self) -> None:
        """Evaluate every queued row with one multi-RHS steady batch."""
        if not self._pending_rows:
            return
        batch = np.vstack(self._pending_rows)
        temperatures = self.thermal_model.steady_temperatures(batch)
        self.batch_solves += 1
        self.rows_solved += len(self._pending_rows)
        self._solved = {}
        for row, epoch_tag in enumerate(self._pending_epochs):
            self._solved[epoch_tag] = temperatures[row] + self._offset_for(epoch_tag)
        self._last_epoch = self._pending_epochs[-1]
        self._metrics = {}
        self._pending_rows = []
        self._pending_epochs = []

    def _metrics_for(self, epoch_tag: int) -> ThermalMetrics:
        metrics = self._metrics.get(epoch_tag)
        if metrics is None:
            metrics = ThermalMetrics.from_vector(self.topology, self._solved[epoch_tag])
            self._metrics[epoch_tag] = metrics
        return metrics

    def thermal_for(self, epoch_index: int) -> ThermalMetrics:
        """Feedback temperatures for the decision at ``epoch_index``.

        Refreshes (one batched solve over all rows queued since the last
        refresh) on every ``stride``-th epoch; between refreshes the
        configured predictor answers at zero solves.
        """
        if epoch_index % self.stride == 0:
            self._refresh()
        else:
            self.predictions_served += 1
            if self.predictor == "previous":
                # The decision at epoch i wants T(P[i-1]); the newest batch
                # holds the solved row of epoch i-1-stride — the same orbit
                # phase, one chunk earlier.
                proxy = epoch_index - 1 - self.stride
                if proxy in self._solved:
                    return self._metrics_for(proxy)
        if self._last_epoch is None:
            raise RuntimeError(
                "FeedbackPlan.thermal_for called before any row was queued; "
                "prime() the plan with the static power first"
            )
        return self._metrics_for(self._last_epoch)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the carried feedback state.

        Pending rows, the newest solved batch and the counters — everything
        a resumed stream needs to keep the refresh cadence and predictor
        answers bit-identical.  (The lazily-built metrics cache is derived
        state and is rebuilt on demand.)
        """
        return {
            "pending_rows": [row.tolist() for row in self._pending_rows],
            "pending_epochs": list(self._pending_epochs),
            "solved": {str(tag): row.tolist() for tag, row in self._solved.items()},
            "last_epoch": self._last_epoch,
            "batch_solves": self.batch_solves,
            "rows_solved": self.rows_solved,
            "predictions_served": self.predictions_served,
            "offsets": {str(key): value for key, value in self._offset_map.items()},
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`state_dict`."""
        self._pending_rows = [
            np.asarray(row, dtype=float) for row in state["pending_rows"]  # type: ignore[union-attr]
        ]
        self._pending_epochs = [int(tag) for tag in state["pending_epochs"]]  # type: ignore[union-attr]
        self._solved = {
            int(tag): np.asarray(row, dtype=float)
            for tag, row in state["solved"].items()  # type: ignore[union-attr]
        }
        last = state["last_epoch"]
        self._last_epoch = int(last) if last is not None else None  # type: ignore[arg-type]
        self.batch_solves = int(state["batch_solves"])  # type: ignore[arg-type]
        self.rows_solved = int(state["rows_solved"])  # type: ignore[arg-type]
        self.predictions_served = int(state["predictions_served"])  # type: ignore[arg-type]
        self._offset_map = {
            int(key): float(value) for key, value in state["offsets"].items()  # type: ignore[union-attr]
        }
        self._metrics = {}


@dataclass
class WindowOutcome:
    """Everything one stepped window produced (window-local views).

    ``epoch_metrics``/``peak_by_epoch``/``mean_by_epoch`` are indexed by the
    window-local epoch (global index ``start_epoch + i``); ``baseline`` is
    populated only by the first window of a run, ``settled`` only by a
    window stepped with ``is_last=True`` in steady mode (transient settled
    statistics live on the experiment and surface in
    :meth:`ThermalExperiment.finalize`).
    """

    start_epoch: int
    num_epochs: int
    trace: PowerTrace
    costs: List[Optional[MigrationCost]]
    names: List[Optional[str]]
    epoch_metrics: List[ThermalMetrics]
    peak_by_epoch: np.ndarray
    mean_by_epoch: np.ndarray
    baseline: Optional[ThermalMetrics] = None
    settled: Optional[ThermalMetrics] = None


class ThermalExperiment:
    """Runs one (configuration, policy) experiment.

    ``thermal_model`` overrides the configuration's default block-level model
    with any other :class:`repro.thermal.model.ThermalModel` (e.g. a
    :class:`repro.thermal.grid.GridThermalModel` for the resolution
    ablation); the batched pipeline is identical either way.

    ``power_modulation`` and ``ambient_offsets_celsius`` are the scenario
    hooks (see :mod:`repro.scenarios`): the modulation matrix scales each
    epoch's power row as the controller emits it (so feedback policies see
    the modulated chip), and the ambient offsets shift each epoch's ambient
    boundary.  Both modes are exact.  In steady mode the RC network's
    conduction block conserves energy, so a uniform ambient change moves
    every steady temperature by exactly that amount — the per-epoch offsets
    are added after the one batched solve.  In transient mode the ambient
    forcing ``G_amb * T_amb(t)`` is affine in the RHS, so the offsets ride
    into the single ``transient_sequence`` call as a per-interval boundary
    term (and the warm start uses the epoch-0 ambient): the RC network
    actually integrates the time-varying ambient, at no extra solves.  The
    static baseline is always reported at the nominal ambient with
    unmodulated load.

    Besides the whole-horizon :meth:`run`, the experiment exposes the
    windowed lifecycle it is built from: :meth:`prepare` /
    :meth:`step_window` / :meth:`finalize`, with :meth:`state_dict` /
    :meth:`restore_state` snapshotting the carried state between windows for
    checkpoint/resume (see :mod:`repro.stream`).
    """

    def __init__(
        self,
        configuration: ChipConfiguration,
        policy: ReconfigurationPolicy,
        settings: Optional[ExperimentSettings] = None,
        migration_unit: Optional[MigrationUnit] = None,
        thermal_model: Optional[ThermalModel] = None,
        power_modulation: Optional[np.ndarray] = None,
        ambient_offsets_celsius: Optional[np.ndarray] = None,
        period_scale: Optional[np.ndarray] = None,
        noc_model=None,
        noc_rates: Optional[np.ndarray] = None,
    ):
        self.configuration = configuration
        self.policy = policy
        self.settings = settings or ExperimentSettings()
        self.thermal_model: ThermalModel = thermal_model or configuration.thermal_model
        self.controller = RuntimeReconfigurationController(
            configuration,
            migration_unit=migration_unit,
            include_migration_energy=self.settings.include_migration_energy,
        )
        num_epochs = self.settings.num_epochs
        num_units = configuration.topology.num_nodes
        self.power_modulation: Optional[np.ndarray] = None
        if power_modulation is not None:
            modulation = np.asarray(power_modulation, dtype=float)
            if modulation.shape != (num_epochs, num_units):
                raise ValueError(
                    f"power_modulation must be ({num_epochs}, {num_units}), "
                    f"got shape {modulation.shape}"
                )
            if not np.all(np.isfinite(modulation)) or modulation.min() < 0:
                raise ValueError("power_modulation must be finite and non-negative")
            self.power_modulation = modulation
        self.ambient_offsets: Optional[np.ndarray] = None
        if ambient_offsets_celsius is not None:
            offsets = np.asarray(ambient_offsets_celsius, dtype=float)
            if offsets.shape != (num_epochs,):
                raise ValueError(
                    f"ambient_offsets_celsius must have {num_epochs} entries, "
                    f"got shape {offsets.shape}"
                )
            if not np.all(np.isfinite(offsets)):
                raise ValueError("ambient offsets must be finite")
            self.ambient_offsets = offsets
        #: Per-epoch migration-period multipliers (the scenario ``period``
        #: channel): epoch ``i`` lasts ``period_us * period_scale[i]``.
        #: Power rows, energy amortisation and the performance cycle count
        #: all follow the scaled epoch length; None keeps the fixed period.
        self.period_scale: Optional[np.ndarray] = None
        if period_scale is not None:
            scale = np.asarray(period_scale, dtype=float)
            if scale.shape != (num_epochs,):
                raise ValueError(
                    f"period_scale must have {num_epochs} entries, "
                    f"got shape {scale.shape}"
                )
            if not np.all(np.isfinite(scale)) or scale.min() <= 0:
                raise ValueError("period_scale must be finite and positive")
            self.period_scale = scale
        #: Optional NoC pricing hooks for staged migrations: the analytic
        #: cost model (:class:`repro.scenarios.noc_cost.NocCostModel`) and
        #: per-epoch injection rates.  When both are present, each executed
        #: plan stage's transfer cycles are inflated by the epoch's
        #: congestion factor.
        self.noc_model = noc_model
        self.noc_rates: Optional[np.ndarray] = None
        if noc_rates is not None:
            rates = np.asarray(noc_rates, dtype=float)
            if rates.shape != (num_epochs,):
                raise ValueError(
                    f"noc_rates must have {num_epochs} entries, "
                    f"got shape {rates.shape}"
                )
            if not np.all(np.isfinite(rates)) or rates.min() < 0:
                raise ValueError("noc_rates must be finite and non-negative")
            self.noc_rates = rates
        #: The chunked feedback evaluator of the most recent run (None for
        #: feedback-free policies); exposes batch/row counters for tests.
        self.feedback_plan: Optional[FeedbackPlan] = None
        self._active = False

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether a prepared run is in flight (between prepare and finalize)."""
        return self._active

    @property
    def next_epoch(self) -> int:
        """Global index of the next epoch a stepped window would start at."""
        if not self._active:
            raise RuntimeError("next_epoch is only defined for a prepared run")
        return self._next_epoch

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Run the configured experiment and return its result.

        The batch path is one window of the streaming lifecycle: prepare,
        step the whole horizon as a single window (so steady mode is still
        exactly one multi-RHS solve and transient mode one
        ``transient_sequence`` call), finalize.
        """
        with _obs_span(
            "experiment.run",
            mode=self.settings.mode,
            epochs=self.settings.num_epochs,
        ):
            self.prepare(total_epochs=self.settings.num_epochs, collect_records=True)
            self.step_window(
                self.settings.num_epochs,
                power_modulation=self.power_modulation,
                ambient_offsets=self.ambient_offsets,
                period_scale=self.period_scale,
                noc_rates=self.noc_rates,
                is_last=True,
            )
            return self.finalize()

    # ------------------------------------------------------------------
    # Windowed lifecycle
    # ------------------------------------------------------------------
    def prepare(
        self,
        total_epochs: Optional[int] = None,
        settled_capacity: Optional[int] = None,
        collect_records: bool = False,
        warm_power: Optional[np.ndarray] = None,
    ) -> None:
        """Arm a fresh run: reset policy/controller, initialise carried state.

        ``total_epochs`` sizes the settled-regime window from the settings
        when the horizon is known (the batch path); an unbounded stream
        instead gives ``settled_capacity`` explicitly (or sets
        ``settings.settle_epochs``).  ``collect_records`` keeps the
        per-epoch :class:`EpochRecord` list growing across windows — batch
        semantics; streaming leaves it off so memory stays constant.
        ``warm_power`` overrides the transient warm-start power (by default
        the first window's time-weighted average, which for a single
        whole-horizon window is exactly the batch warm start).
        """
        self.policy.reset()
        self.controller.reset()
        self._init_stream_state(
            total_epochs=total_epochs,
            settled_capacity=settled_capacity,
            collect_records=collect_records,
            warm_power=warm_power,
            thermal_feedback=self._needs_thermal_feedback(),
        )

    def _init_stream_state(
        self,
        total_epochs: Optional[int],
        settled_capacity: Optional[int],
        collect_records: bool,
        warm_power: Optional[np.ndarray],
        thermal_feedback: bool,
    ) -> None:
        if total_epochs is not None:
            capacity = self.settings.settled_count(total_epochs)
        elif settled_capacity is not None:
            if settled_capacity < 1:
                raise ValueError("settled_capacity must be at least 1")
            capacity = settled_capacity
        elif self.settings.settle_epochs is not None:
            capacity = self.settings.settle_epochs
        else:
            raise ValueError(
                "streaming with an unknown horizon needs an explicit settled "
                "window: set settings.settle_epochs or pass "
                "prepare(settled_capacity=...) — settle_fraction has nothing "
                "to take a fraction of"
            )
        self._settled_capacity = capacity
        self._thermal_feedback = thermal_feedback
        self._collect_records = collect_records
        self._records_acc: List[EpochRecord] = []
        self._next_epoch = 0
        self._previous_power = self.controller.static_power_vector()
        self._baseline_peak: Optional[float] = None
        self._baseline_mean: Optional[float] = None
        self._settled_peak: Optional[float] = None
        self._settled_mean: Optional[float] = None
        self._thermal_state: Optional[np.ndarray] = None
        self._warm_started = False
        self._warm_power = (
            np.asarray(warm_power, dtype=float) if warm_power is not None else None
        )
        self._had_offsets = False
        # Constant-memory settled-regime state: steady mode remembers the
        # last `capacity` power rows (+ their ambient offsets) so the settled
        # mean can ride the final window's batch; transient mode only needs
        # the per-epoch (peak, mean) scalars.
        self._power_ring: Deque[np.ndarray] = deque(maxlen=capacity)
        self._offset_ring: Deque[float] = deque(maxlen=capacity)
        self._peak_ring: Deque[float] = deque(maxlen=capacity)
        self._mean_ring: Deque[float] = deque(maxlen=capacity)
        period_s = self.policy.period_us * 1e-6
        self._period_cycles = self.configuration.block_period_cycles(
            self.policy.period_us
        )
        self._time_step = period_s / self.settings.transient_steps_per_epoch
        # Workload cycles actually run, accumulated per epoch so a per-epoch
        # period schedule (the scenario ``period`` channel) is accounted
        # exactly; with a fixed period this equals the legacy
        # ``period_cycles * epochs_run`` product to the integer.
        self._cycles_run = 0
        plan: Optional[FeedbackPlan] = None
        if thermal_feedback:
            plan = FeedbackPlan(
                self.thermal_model,
                self.configuration.topology,
                stride=self.settings.feedback_stride,
                predictor=self.settings.feedback_predictor,
            )
            plan.prime(self._previous_power)
        self.feedback_plan = plan
        self._active = True

    def step_window(
        self,
        num_epochs: int,
        power_modulation: Optional[np.ndarray] = None,
        ambient_offsets: Optional[np.ndarray] = None,
        *,
        period_scale: Optional[np.ndarray] = None,
        noc_rates: Optional[np.ndarray] = None,
        is_last: bool = False,
    ) -> WindowOutcome:
        """Advance the run by ``num_epochs`` epochs as one batched window.

        Runs the policy/controller loop over the window, then evaluates it
        with exactly one multi-RHS steady solve (steady mode; the static
        baseline rides the first window's batch and the settled-regime
        average rides the last's) or one ``transient_sequence`` call
        (transient mode; thermal state carried across window boundaries).
        ``power_modulation`` is ``(num_epochs, num_units)`` and
        ``ambient_offsets``, ``period_scale`` (per-epoch migration-period
        multipliers) and ``noc_rates`` (per-epoch NoC injection rates used
        to congestion-price staged migrations) ``(num_epochs,)``, all
        window-local.  ``is_last`` folds the settled-regime evaluation into
        this window's batch; a stream that simply stops computes it in
        :meth:`finalize` instead (one extra solve in steady mode).
        """
        if not self._active:
            raise RuntimeError("call prepare() before step_window()")
        if num_epochs < 1:
            raise ValueError("a window must contain at least one epoch")
        num_units = self.configuration.topology.num_nodes
        modulation: Optional[np.ndarray] = None
        if power_modulation is not None:
            modulation = np.asarray(power_modulation, dtype=float)
            if modulation.shape != (num_epochs, num_units):
                raise ValueError(
                    f"window power_modulation must be ({num_epochs}, {num_units}), "
                    f"got shape {modulation.shape}"
                )
            if not np.all(np.isfinite(modulation)) or modulation.min() < 0:
                raise ValueError("power_modulation must be finite and non-negative")
        offsets: Optional[np.ndarray] = None
        if ambient_offsets is not None:
            offsets = np.asarray(ambient_offsets, dtype=float)
            if offsets.shape != (num_epochs,):
                raise ValueError(
                    f"window ambient_offsets must have {num_epochs} entries, "
                    f"got shape {offsets.shape}"
                )
            if not np.all(np.isfinite(offsets)):
                raise ValueError("ambient offsets must be finite")
        scale: Optional[np.ndarray] = None
        if period_scale is not None:
            scale = np.asarray(period_scale, dtype=float)
            if scale.shape != (num_epochs,):
                raise ValueError(
                    f"window period_scale must have {num_epochs} entries, "
                    f"got shape {scale.shape}"
                )
            if not np.all(np.isfinite(scale)) or scale.min() <= 0:
                raise ValueError("period_scale must be finite and positive")
        rates: Optional[np.ndarray] = None
        if noc_rates is not None:
            rates = np.asarray(noc_rates, dtype=float)
            if rates.shape != (num_epochs,):
                raise ValueError(
                    f"window noc_rates must have {num_epochs} entries, "
                    f"got shape {rates.shape}"
                )
            if not np.all(np.isfinite(rates)) or rates.min() < 0:
                raise ValueError("noc_rates must be finite and non-negative")

        start_epoch = self._next_epoch
        if self.feedback_plan is not None:
            self.feedback_plan.add_offsets(start_epoch, offsets)
        trace, costs, names = self._loop_window(
            num_epochs, modulation, offsets, scale, rates
        )
        if offsets is not None:
            self._had_offsets = True
        if self.settings.mode == "steady":
            powers = trace.powers
            for index in range(len(trace)):
                self._power_ring.append(np.array(powers[index]))
                self._offset_ring.append(
                    float(offsets[index]) if offsets is not None else 0.0
                )
            outcome = self._step_steady(trace, costs, names, offsets, start_epoch, is_last)
        else:
            outcome = self._step_transient(
                trace, costs, names, offsets, start_epoch, is_last
            )
        if self._collect_records:
            self._records_acc.extend(
                self._records(trace, costs, names, outcome.epoch_metrics, start_epoch)
            )
        return outcome

    def finalize(self) -> ExperimentResult:
        """Assemble the :class:`ExperimentResult` of the stepped windows.

        If no window was stepped with ``is_last=True`` (a stream that simply
        stopped), the settled-regime statistics are computed here from the
        carried rings — at the cost of one extra steady solve in steady
        mode; transient mode already has the per-epoch scalars.
        """
        if not self._active:
            raise RuntimeError("call prepare() and step_window() before finalize()")
        if self._next_epoch == 0:
            raise RuntimeError("finalize() needs at least one stepped window")
        if self._settled_peak is None:
            self._compute_settled_late()
        result = ExperimentResult(
            configuration_name=self.configuration.name,
            scheme_name=self.policy.name,
            period_us=self.policy.period_us,
            baseline_peak_celsius=self._baseline_peak,
            baseline_mean_celsius=self._baseline_mean,
            epochs=self._records_acc,
            performance=self._performance(self._next_epoch),
            total_migration_energy_j=self.controller.total_migration_energy_j,
            settled_peak_celsius=self._settled_peak,
            settled_mean_celsius=self._settled_mean,
        )
        self._active = False
        return result

    def _compute_settled_late(self) -> None:
        """Settled statistics for a run that never stepped an ``is_last`` window."""
        count = min(self._settled_capacity, self._next_epoch)
        if self.settings.mode == "steady":
            settled_power = np.vstack(list(self._power_ring)[-count:]).mean(axis=0)
            values = self.thermal_model.steady_temperatures(
                settled_power[np.newaxis, :]
            )[0]
            if self._had_offsets:
                values = values + float(
                    np.mean(np.array(list(self._offset_ring)[-count:], dtype=float))
                )
            settled = ThermalMetrics.from_vector(self.configuration.topology, values)
            self._settled_peak = settled.peak_celsius
            self._settled_mean = settled.mean_celsius
        else:
            self._settled_peak = float(
                np.max(np.array(list(self._peak_ring)[-count:], dtype=float))
            )
            self._settled_mean = float(
                np.mean(np.array(list(self._mean_ring)[-count:], dtype=float))
            )

    # ------------------------------------------------------------------
    # Shared epoch loop
    # ------------------------------------------------------------------
    def _loop_window(
        self,
        num_epochs: int,
        power_modulation: Optional[np.ndarray],
        ambient_offsets: Optional[np.ndarray],
        period_scale: Optional[np.ndarray] = None,
        noc_rates: Optional[np.ndarray] = None,
    ) -> Tuple[PowerTrace, List[Optional[MigrationCost]], List[Optional[str]]]:
        """Run the policy/controller loop for one window of epochs.

        Epoch indices are **global** (``self._next_epoch + local``), so
        policies, the feedback plan's refresh cadence and the migration
        records behave identically regardless of how the horizon is
        windowed.  The loop itself is dict-free: policies receive the
        previous power row as a vector (the dict view is built lazily only
        if a policy reads it).

        With ``migration_style != "sudden"`` a policy decision is lowered
        into a :class:`~repro.migration.plan.MigrationPlan` and one stage
        executes per epoch (priced under the epoch's NoC load when
        ``noc_rates`` is given); while the plan unfolds the policy is told
        via ``migration_in_progress`` and any transform it still returns is
        dropped and counted as a stalled epoch.  The sudden default takes
        the legacy one-shot path untouched, bit for bit.  The cost list
        then holds :class:`~repro.core.controller.StageCost` entries, which
        expose the same ``cycles`` / ``total_energy_j`` /
        ``energy_per_unit_j`` surface as :class:`MigrationCost`.
        """
        configuration = self.configuration
        controller = self.controller
        base_period_us = self.policy.period_us
        period_s = base_period_us * 1e-6
        topology = configuration.topology
        thermal_feedback = self._thermal_feedback
        plan = self.feedback_plan
        style = self.settings.migration_style
        staged = style != "sudden"

        trace = PowerTrace(topology)
        costs: List[Optional[MigrationCost]] = []
        names: List[Optional[str]] = []
        previous_power = self._previous_power

        for local_index in range(num_epochs):
            epoch_index = self._next_epoch + local_index
            if period_scale is not None:
                period_us = base_period_us * float(period_scale[local_index])
                period_s = period_us * 1e-6
                self._cycles_run += configuration.block_period_cycles(period_us)
            else:
                self._cycles_run += self._period_cycles
            in_progress = staged and controller.migration_in_progress
            context = PolicyContext(
                epoch_index=epoch_index,
                current_thermal=(
                    plan.thermal_for(epoch_index) if plan is not None else None
                ),
                topology=topology,
                current_power_vector=previous_power if thermal_feedback else None,
                migration_in_progress=in_progress,
            )
            transform = self.policy.decide(context)
            wants = transform is not None and transform.name != "identity"
            cost: Optional[MigrationCost] = None
            name: Optional[str] = None
            if in_progress:
                if wants:
                    _OBS_STALLED.add()
                rate = (
                    float(noc_rates[local_index])
                    if noc_rates is not None
                    else None
                )
                stage = controller.advance_plan(
                    epoch_index, congestion_factor(self.noc_model, rate)
                )
                if stage is not None:
                    cost = stage
                    name = stage.transform_name
            elif wants:
                if staged:
                    controller.begin_plan(
                        transform,
                        style=style,
                        units_per_epoch=self.settings.units_per_epoch,
                    )
                    rate = (
                        float(noc_rates[local_index])
                        if noc_rates is not None
                        else None
                    )
                    cost = controller.advance_plan(
                        epoch_index, congestion_factor(self.noc_model, rate)
                    )
                    name = transform.name
                else:
                    cost = controller.apply_migration(transform, epoch_index)
                    name = transform.name
            power = controller.epoch_power_vector(period_s, cost)
            if power_modulation is not None:
                # Scenario hook: scale this epoch's row as it is emitted, so
                # the trace, the feedback path and the records all see the
                # modulated chip.
                power = power * power_modulation[local_index]
            trace.add_interval(period_s, power)
            costs.append(cost)
            names.append(name)

            if plan is not None:
                plan.observe(epoch_index, power)
            previous_power = power
            controller.advance_epoch()
        self._previous_power = previous_power
        self._next_epoch += num_epochs
        return trace, costs, names

    def _epoch_sequence(
        self, thermal_feedback: bool
    ) -> Tuple[PowerTrace, List[Optional[MigrationCost]], List[Optional[str]]]:
        """Run the whole-horizon policy/controller loop (test/diagnostic hook).

        Initialises the windowed state without resetting the policy or
        controller (the historical contract) and runs one horizon-sized
        window, returning the trace plus per-epoch migration costs and
        transform names.
        """
        self._init_stream_state(
            total_epochs=self.settings.num_epochs,
            settled_capacity=None,
            collect_records=False,
            warm_power=None,
            thermal_feedback=thermal_feedback,
        )
        if self.feedback_plan is not None:
            self.feedback_plan.add_offsets(0, self.ambient_offsets)
        return self._loop_window(
            self.settings.num_epochs,
            self.power_modulation,
            self.ambient_offsets,
            self.period_scale,
            self.noc_rates,
        )

    def _needs_thermal_feedback(self) -> bool:
        """Whether the policy declared it reads feedback temperatures.

        Policies opt in via :attr:`ReconfigurationPolicy.
        requires_thermal_feedback`; custom policies no longer inherit the
        feedback path silently from an isinstance check.
        """
        return bool(getattr(self.policy, "requires_thermal_feedback", False))

    # ------------------------------------------------------------------
    def _performance(self, epochs_run: int) -> PerformanceMetrics:
        # Cycles are accumulated per epoch so a scenario ``period`` schedule
        # is accounted exactly; with the fixed default period the accumulator
        # equals the legacy ``period_cycles * epochs_run`` product.
        total_cycles = self._cycles_run
        return PerformanceMetrics(
            total_cycles=total_cycles,
            migration_cycles=min(self.controller.total_migration_cycles, total_cycles),
            migrations_performed=self.controller.migrations_performed,
        )

    def _records(
        self,
        trace: PowerTrace,
        costs: List[Optional[MigrationCost]],
        names: List[Optional[str]],
        epoch_metrics: List[ThermalMetrics],
        start_epoch: int = 0,
    ) -> List[EpochRecord]:
        """Per-epoch records (dict views of the trace at the report edge)."""
        return [
            EpochRecord(
                epoch_index=start_epoch + idx,
                mapping_permutation=[],
                transform_applied=names[idx],
                migration_cycles=costs[idx].cycles if costs[idx] else 0,
                migration_energy_j=costs[idx].total_energy_j if costs[idx] else 0.0,
                thermal=epoch_metrics[idx],
                power_map=trace.power_map(idx),
            )
            for idx in range(len(trace))
        ]

    # ------------------------------------------------------------------
    def _step_steady(
        self,
        trace: PowerTrace,
        costs: List[Optional[MigrationCost]],
        names: List[Optional[str]],
        offsets: Optional[np.ndarray],
        start_epoch: int,
        is_last: bool,
    ) -> WindowOutcome:
        """Evaluate one steady-mode window with a single multi-RHS solve.

        One batch carries everything the window needs: the static baseline
        (first window only), every epoch's power row, and the settled-regime
        average (last window only — the time-mean over the final epochs, one
        or more full orbits of the transform).  With a single horizon-sized
        window this is exactly the classic batch layout.
        """
        topology = self.configuration.topology
        is_first = start_epoch == 0
        parts: List[np.ndarray] = []
        if is_first:
            parts.append(self.controller.static_power_vector()[np.newaxis, :])
        parts.append(trace.powers)
        settled_offset: Optional[float] = None
        if is_last:
            count = min(self._settled_capacity, self._next_epoch)
            if count <= len(trace):
                settled_power = trace.mean_tail_vector(count)
            else:
                settled_power = np.vstack(list(self._power_ring)[-count:]).mean(axis=0)
            parts.append(settled_power[np.newaxis, :])
            if self._had_offsets:
                settled_offset = float(
                    np.mean(np.array(list(self._offset_ring)[-count:], dtype=float))
                )
        batch = np.vstack(parts)
        temperatures = self.thermal_model.steady_temperatures(batch)
        base = 1 if is_first else 0
        stop = base + len(trace)
        if offsets is not None:
            # A uniform ambient shift moves every steady temperature by the
            # same amount (the conduction block conserves energy), so adding
            # the per-epoch offsets after the one batched solve is exact.
            # The settled row solved the mean tail power, so it gets the mean
            # tail offset; the baseline stays at nominal ambient.
            temperatures[base:stop] += offsets[:, np.newaxis]
        if settled_offset is not None:
            temperatures[-1] += settled_offset
        baseline: Optional[ThermalMetrics] = None
        if is_first:
            baseline = ThermalMetrics.from_vector(topology, temperatures[0])
            self._baseline_peak = baseline.peak_celsius
            self._baseline_mean = baseline.mean_celsius
        settled: Optional[ThermalMetrics] = None
        if is_last:
            settled = ThermalMetrics.from_vector(topology, temperatures[-1])
            self._settled_peak = settled.peak_celsius
            self._settled_mean = settled.mean_celsius
        epoch_metrics = [
            ThermalMetrics.from_vector(topology, row) for row in temperatures[base:stop]
        ]
        return WindowOutcome(
            start_epoch=start_epoch,
            num_epochs=len(trace),
            trace=trace,
            costs=costs,
            names=names,
            epoch_metrics=epoch_metrics,
            peak_by_epoch=np.array([m.peak_celsius for m in epoch_metrics]),
            mean_by_epoch=np.array([m.mean_celsius for m in epoch_metrics]),
            baseline=baseline,
            settled=settled,
        )

    def _step_transient(
        self,
        trace: PowerTrace,
        costs: List[Optional[MigrationCost]],
        names: List[Optional[str]],
        offsets: Optional[np.ndarray],
        start_epoch: int,
        is_last: bool,
    ) -> WindowOutcome:
        """Integrate one transient-mode window with a single sequence call.

        The first window pays the batch path's fixed costs — the static
        baseline steady solve and the settled-regime warm start (steady
        state of the warm power at the first epoch's ambient) — then the
        window's piecewise-constant trace goes through one
        ``transient_sequence`` call.  Subsequent windows chain
        ``final_state_kelvin``, which is exactly the state the batch path
        would have carried, so windowing does not change the trajectory.
        """
        thermal_model = self.thermal_model
        topology = self.configuration.topology
        baseline: Optional[ThermalMetrics] = None
        if not self._warm_started:
            # The baseline is still a steady solve of the static power.
            baseline = ThermalMetrics.from_vector(
                topology,
                thermal_model.steady_temperatures(
                    self.controller.static_power_vector()[np.newaxis, :]
                )[0],
            )
            self._baseline_peak = baseline.peak_celsius
            self._baseline_mean = baseline.mean_celsius
            # Start from the settled regime: steady state of the time-weighted
            # average power (the first window's, or an explicit warm_power
            # override — identical to the batch warm start when the first
            # window spans the horizon) at the first epoch's ambient, so the
            # transient only has to resolve the within-period ripple.
            warm = (
                self._warm_power
                if self._warm_power is not None
                else trace.average_vector()
            )
            self._thermal_state = thermal_model.warm_state(
                warm,
                ambient_offset_kelvin=(
                    float(offsets[0]) if offsets is not None else 0.0
                ),
            )
            self._warm_started = True
        result = thermal_model.transient_sequence(
            trace,
            initial_state=self._thermal_state,
            time_step_s=self._time_step,
            method=self.settings.thermal_method,
            ambient_offsets_kelvin=offsets,
        )
        self._thermal_state = np.asarray(result.final_state_kelvin, dtype=float)

        # Per-epoch metrics come from segment reductions over the
        # concatenated series: each epoch's peak is the maximum over its
        # sample range (initial instant included, matching the per-epoch
        # reference), and its spatial metrics come from its final instant.
        if result.interval_ranges is None:
            raise ValueError(
                "the thermal model's transient_sequence must populate "
                "TransientResult.interval_ranges (one (start, stop) sample "
                "range per epoch) for the batched pipeline"
            )
        series = thermal_model.unit_series(result)
        starts = np.array([start for start, _stop in result.interval_ranges])
        ends = np.array([stop for _start, stop in result.interval_ranges])
        peak_by_epoch = np.maximum.reduceat(series.max(axis=0), starts)
        final_temps = series[:, ends - 1]
        epoch_metrics = [
            ThermalMetrics.from_vector(topology, final_temps[:, idx])
            for idx in range(len(trace))
        ]
        mean_by_epoch = np.array([metric.mean_celsius for metric in epoch_metrics])
        for peak, mean in zip(peak_by_epoch, mean_by_epoch):
            self._peak_ring.append(float(peak))
            self._mean_ring.append(float(mean))
        if is_last:
            count = min(self._settled_capacity, self._next_epoch)
            self._settled_peak = float(
                np.max(np.array(list(self._peak_ring)[-count:], dtype=float))
            )
            self._settled_mean = float(
                np.mean(np.array(list(self._mean_ring)[-count:], dtype=float))
            )
        return WindowOutcome(
            start_epoch=start_epoch,
            num_epochs=len(trace),
            trace=trace,
            costs=costs,
            names=names,
            epoch_metrics=epoch_metrics,
            peak_by_epoch=np.asarray(peak_by_epoch, dtype=float),
            mean_by_epoch=mean_by_epoch,
            baseline=baseline,
            settled=None,
        )

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of all state carried between windows.

        Covers the experiment's own stream state (epoch cursor, previous
        power, thermal state, settled rings, baseline/settled statistics),
        the controller (mapping permutation, migration totals, I/O
        translator) and the policy/feedback-plan state.  Restoring this onto
        a freshly ``prepare()``-ed experiment of the identical configuration
        resumes the stream bit-identically (floats round-trip JSON exactly).
        Per-epoch records are deliberately not captured — checkpointable
        runs stream with ``collect_records=False``.
        """
        if not self._active:
            raise RuntimeError("state_dict() needs an active prepared run")
        return {
            "next_epoch": self._next_epoch,
            "cycles_run": self._cycles_run,
            "previous_power": self._previous_power.tolist(),
            "baseline_peak": self._baseline_peak,
            "baseline_mean": self._baseline_mean,
            "settled_peak": self._settled_peak,
            "settled_mean": self._settled_mean,
            "settled_capacity": self._settled_capacity,
            "had_offsets": self._had_offsets,
            "warm_started": self._warm_started,
            "thermal_state": (
                self._thermal_state.tolist() if self._thermal_state is not None else None
            ),
            "power_ring": [row.tolist() for row in self._power_ring],
            "offset_ring": list(self._offset_ring),
            "peak_ring": list(self._peak_ring),
            "mean_ring": list(self._mean_ring),
            "controller": self.controller.state_dict(),
            "policy": self.policy.state_dict(),
            "feedback": (
                self.feedback_plan.state_dict()
                if self.feedback_plan is not None
                else None
            ),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`state_dict`; call after :meth:`prepare`."""
        if not self._active:
            raise RuntimeError("prepare() the experiment before restore_state()")
        capacity = int(state["settled_capacity"])  # type: ignore[arg-type]
        self._settled_capacity = capacity
        self._next_epoch = int(state["next_epoch"])  # type: ignore[arg-type]
        # Old checkpoints (pre period-schedule) lack the accumulator; the
        # legacy product is exact for them because their period was fixed.
        self._cycles_run = int(
            state.get("cycles_run", self._period_cycles * self._next_epoch)  # type: ignore[arg-type]
        )
        self._previous_power = np.asarray(state["previous_power"], dtype=float)
        self._baseline_peak = state["baseline_peak"]  # type: ignore[assignment]
        self._baseline_mean = state["baseline_mean"]  # type: ignore[assignment]
        self._settled_peak = state["settled_peak"]  # type: ignore[assignment]
        self._settled_mean = state["settled_mean"]  # type: ignore[assignment]
        self._had_offsets = bool(state["had_offsets"])
        self._warm_started = bool(state["warm_started"])
        thermal_state = state["thermal_state"]
        self._thermal_state = (
            np.asarray(thermal_state, dtype=float) if thermal_state is not None else None
        )
        self._power_ring = deque(
            (np.asarray(row, dtype=float) for row in state["power_ring"]),  # type: ignore[union-attr]
            maxlen=capacity,
        )
        self._offset_ring = deque(
            (float(value) for value in state["offset_ring"]), maxlen=capacity  # type: ignore[union-attr]
        )
        self._peak_ring = deque(
            (float(value) for value in state["peak_ring"]), maxlen=capacity  # type: ignore[union-attr]
        )
        self._mean_ring = deque(
            (float(value) for value in state["mean_ring"]), maxlen=capacity  # type: ignore[union-attr]
        )
        self.controller.restore_state(state["controller"])  # type: ignore[arg-type]
        self.policy.restore_state(state["policy"])  # type: ignore[arg-type]
        feedback_state = state["feedback"]
        if self.feedback_plan is not None and feedback_state is not None:
            self.feedback_plan.restore_state(feedback_state)  # type: ignore[arg-type]
